"""Temporal stream model: events, stream elements, and temporal databases.

This package implements the logical/physical stream model of Section III of
the paper.  A *logical* stream is a temporal database (:class:`~repro.temporal.tdb.TDB`):
a multiset of events, each an interval-stamped payload ``<p, Vs, Ve)``.  A
*physical* stream is a sequence of stream elements (:mod:`repro.temporal.elements`)
that can be *reconstituted* into a TDB instance.

Two physically different streams are logically equivalent when their
reconstituted TDBs are equal; the LMerge operator (:mod:`repro.lmerge`)
consumes several such streams and produces one output compatible with all of
them.
"""

from repro.temporal.time import (
    INFINITY,
    MINUS_INFINITY,
    Timestamp,
    is_finite,
    validate_timestamp,
)
from repro.temporal.event import Event, FreezeStatus, freeze_status
from repro.temporal.elements import (
    Adjust,
    Close,
    Element,
    Insert,
    Open,
    Stable,
    element_sort_key,
)
from repro.temporal.tdb import TDB, reconstitute, reconstitute_prefix
from repro.temporal.dialects import (
    elements_to_open_close,
    open_close_to_elements,
)

__all__ = [
    "INFINITY",
    "MINUS_INFINITY",
    "Timestamp",
    "is_finite",
    "validate_timestamp",
    "Event",
    "FreezeStatus",
    "freeze_status",
    "Element",
    "Insert",
    "Adjust",
    "Stable",
    "Open",
    "Close",
    "element_sort_key",
    "TDB",
    "reconstitute",
    "reconstitute_prefix",
    "open_close_to_elements",
    "elements_to_open_close",
]
