"""Incremental stream-contract validation.

:func:`repro.temporal.tdb.reconstitute` with ``strict=True`` validates a
stream but keeps the full TDB.  :class:`StreamContractChecker` validates
incrementally with state proportional to the *live* (not yet fully
frozen) region only — suitable for long-running pipelines and for
guarding LMerge inputs in production:

* no ``insert`` behind the stable point;
* no ``adjust`` naming an event absent from the live region, nor one
  whose ``Vold``/``Ve`` violates the stable point;
* ``stable`` regressions are flagged (legal but suspicious) via a
  counter rather than an error.

The checker optionally enforces the ``(Vs, payload)`` key property, so it
can certify a stream for the R2/R3 algorithms at runtime.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.structures.in2t import _KeyFloor
from repro.structures.rbtree import RedBlackTree
from repro.structures.sizing import PayloadKey
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.tdb import StreamViolationError
from repro.temporal.time import MINUS_INFINITY, Timestamp

_KEY_FLOOR = _KeyFloor()


class StreamContractChecker:
    """Validates a physical stream element-by-element.

    ``check(element)`` raises :class:`StreamViolationError` on a contract
    violation and returns the element otherwise (so it drops into
    pipelines as a pass-through).
    """

    def __init__(self, enforce_key: bool = False):
        self.enforce_key = enforce_key
        self.stable_point: Timestamp = MINUS_INFINITY
        #: (Vs, PayloadKey) -> Counter of live Ve values for that key.
        self._live = RedBlackTree()
        self.elements_checked = 0
        self.stable_regressions = 0

    @staticmethod
    def _key(vs, payload) -> tuple:
        return (vs, PayloadKey(payload))

    # ------------------------------------------------------------------

    def check(self, element: Element) -> Element:
        """Validate one element; raises on violation."""
        self.elements_checked += 1
        if isinstance(element, Insert):
            self._check_insert(element)
        elif isinstance(element, Adjust):
            self._check_adjust(element)
        elif isinstance(element, Stable):
            self._check_stable(element)
        else:
            raise TypeError(f"not a stream element: {element!r}")
        return element

    def check_all(self, elements) -> None:
        for element in elements:
            self.check(element)

    # ------------------------------------------------------------------

    def _check_insert(self, element: Insert) -> None:
        if element.vs < self.stable_point:
            raise StreamViolationError(
                f"{element} inserts behind stable point {self.stable_point}"
            )
        key = self._key(element.vs, element.payload)
        versions = self._live.get(key)
        if versions is None:
            versions = Counter()
            self._live.insert(key, versions)
        elif self.enforce_key:
            raise StreamViolationError(
                f"{element} duplicates key ({element.vs}, "
                f"{element.payload!r}) in a keyed stream"
            )
        versions[element.ve] += 1

    def _check_adjust(self, element: Adjust) -> None:
        if element.v_old < self.stable_point or element.ve < self.stable_point:
            raise StreamViolationError(
                f"{element} adjusts behind stable point {self.stable_point}"
            )
        key = self._key(element.vs, element.payload)
        versions = self._live.get(key)
        if versions is None or versions[element.v_old] == 0:
            raise StreamViolationError(
                f"{element} names an event not currently live"
            )
        versions[element.v_old] -= 1
        if not element.is_cancel:
            versions[element.ve] += 1
        elif not +versions:
            self._live.delete(key)

    def _check_stable(self, element: Stable) -> None:
        if element.vc <= self.stable_point:
            self.stable_regressions += 1
            return
        self.stable_point = element.vc
        # Retire fully frozen keys: every live version ends before vc.
        frozen: List[tuple] = []
        for key, versions in self._live.items_below((element.vc, _KEY_FLOOR)):
            if all(ve < element.vc for ve in +versions):
                frozen.append(key)
        for key in frozen:
            self._live.delete(key)

    # ------------------------------------------------------------------

    @property
    def live_keys(self) -> int:
        return len(self._live)


def validate_stream(
    elements, enforce_key: bool = False
) -> StreamContractChecker:
    """Validate a whole element sequence; returns the checker (for its
    statistics) or raises on the first violation."""
    checker = StreamContractChecker(enforce_key=enforce_key)
    checker.check_all(elements)
    return checker
