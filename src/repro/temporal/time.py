"""Application-time timestamps.

The paper's temporal model uses half-open validity intervals ``[Vs, Ve)``
where ``Ve`` may be ``+infinity``.  We represent timestamps as plain numbers
(``int`` or ``float``); ``float('inf')`` stands for the open end.  Keeping
timestamps as numbers (rather than a wrapper class) keeps the hot paths of
the LMerge algorithms allocation-free.
"""

from __future__ import annotations

import math
from typing import Union

#: A point in application time.  ``int`` for generated workloads (ticks),
#: ``float`` where infinity or fractional seconds are needed.
Timestamp = Union[int, float]

#: The open end of an unbounded validity interval (``Ve = +inf``).
INFINITY: float = math.inf

#: Sentinel smaller than every valid timestamp; initial value of the
#: ``MaxStable`` / ``MaxVs`` trackers in the LMerge algorithms.
MINUS_INFINITY: float = -math.inf


def is_finite(t: Timestamp) -> bool:
    """Return True when *t* is a concrete point in time (not +/-infinity)."""
    return t != INFINITY and t != MINUS_INFINITY


def validate_timestamp(t: Timestamp, name: str = "timestamp") -> Timestamp:
    """Validate that *t* is a usable timestamp and return it.

    Raises :class:`TypeError` for non-numeric values and :class:`ValueError`
    for NaN, which would silently poison every ordered comparison in the
    merge indexes.
    """
    if isinstance(t, bool) or not isinstance(t, (int, float)):
        raise TypeError(f"{name} must be int or float, got {type(t).__name__}")
    if isinstance(t, float) and math.isnan(t):
        raise ValueError(f"{name} may not be NaN")
    return t


def validate_interval(vs: Timestamp, ve: Timestamp) -> None:
    """Validate a half-open validity interval ``[vs, ve)``.

    ``vs`` must be finite and ``ve`` must not precede ``vs``.  ``ve == vs``
    is permitted only transiently (it encodes event removal in ``adjust``
    elements), so interval validation for *events* is stricter and lives in
    :class:`repro.temporal.event.Event`.
    """
    validate_timestamp(vs, "Vs")
    validate_timestamp(ve, "Ve")
    if not is_finite(vs):
        raise ValueError(f"Vs must be finite, got {vs}")
    if ve < vs:
        raise ValueError(f"interval end {ve} precedes start {vs}")
