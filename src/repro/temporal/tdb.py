"""Temporal database (TDB) reconstitution.

A TDB instance is a multiset of events.  The reconstitution function
``tdb(S, i)`` (Section III-A) interprets a physical-stream prefix ``S[i]``
as a TDB.  Two stream prefixes are *equivalent* when they reconstitute to
equal TDBs.

:class:`TDB` is the executable reference semantics: every LMerge algorithm
in this repository is tested against it (feed inputs and output through
``reconstitute`` and compare).  It favours clarity over speed — the fast
structures live in :mod:`repro.structures`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.temporal.elements import (
    Adjust,
    Close,
    Element,
    Insert,
    OCElement,
    Open,
    Stable,
)
from repro.temporal.event import Event, FreezeStatus, Payload, freeze_status
from repro.temporal.time import INFINITY, MINUS_INFINITY, Timestamp


class StreamViolationError(ValueError):
    """A stream element violated the stream contract.

    Examples: an ``adjust`` naming an event absent from the TDB, or an
    ``insert`` behind the stable point.
    """


class TDB:
    """A temporal database: a multiset of :class:`Event` values.

    Tracks the stable point (largest ``stable(Vc)`` applied) so freeze
    status can be queried.  ``strict=True`` (the default) raises
    :class:`StreamViolationError` on contract violations; ``strict=False``
    drops violating elements, mirroring how a defensive operator would
    behave on a buggy input.
    """

    def __init__(self, events: Optional[Iterable[Event]] = None, strict: bool = True):
        self._events: Counter = Counter()
        self.stable_point: Timestamp = MINUS_INFINITY
        self.strict = strict
        if events is not None:
            for event in events:
                self._events[event] += 1

    # ------------------------------------------------------------------
    # Multiset container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._events.values())

    def __iter__(self) -> Iterator[Event]:
        for event, count in self._events.items():
            for _ in range(count):
                yield event

    def __contains__(self, event: Event) -> bool:
        return self._events[event] > 0

    def count(self, event: Event) -> int:
        """Multiplicity of *event* in the multiset."""
        return self._events[event]

    def distinct_events(self) -> Iterator[Event]:
        """Iterate distinct events (ignoring multiplicity)."""
        return iter(+self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TDB):
            return NotImplemented
        # Counter equality treats zero-count keys as absent via unary +.
        return +self._events == +other._events

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("TDB instances are mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover
        items = ", ".join(str(e) for e in sorted(+self._events))
        return f"TDB({{{items}}}, stable={self.stable_point})"

    def copy(self) -> "TDB":
        """Return a deep copy (events are immutable, so counts suffice)."""
        clone = TDB(strict=self.strict)
        clone._events = Counter(self._events)
        clone.stable_point = self.stable_point
        return clone

    # ------------------------------------------------------------------
    # Element application
    # ------------------------------------------------------------------

    def apply(self, element: Element) -> None:
        """Apply one StreamInsight-model element to this TDB."""
        if isinstance(element, Insert):
            self._apply_insert(element)
        elif isinstance(element, Adjust):
            self._apply_adjust(element)
        elif isinstance(element, Stable):
            self._apply_stable(element)
        else:
            raise TypeError(f"not a stream element: {element!r}")

    def apply_all(self, elements: Iterable[Element]) -> "TDB":
        """Apply a sequence of elements; returns self for chaining."""
        for element in elements:
            self.apply(element)
        return self

    def _violation(self, message: str) -> None:
        if self.strict:
            raise StreamViolationError(message)

    def _apply_insert(self, element: Insert) -> None:
        if element.vs < self.stable_point:
            self._violation(
                f"{element} inserts behind stable point {self.stable_point}"
            )
            return
        self._events[element.to_event()] += 1

    def _apply_adjust(self, element: Adjust) -> None:
        if element.v_old < self.stable_point or element.ve < self.stable_point:
            self._violation(
                f"{element} adjusts behind stable point {self.stable_point}"
            )
            return
        old = Event(element.vs, element.payload, element.v_old)
        if self._events[old] <= 0:
            self._violation(f"{element} names an event absent from the TDB")
            return
        self._events[old] -= 1
        if self._events[old] == 0:
            del self._events[old]
        if not element.is_cancel:
            self._events[Event(element.vs, element.payload, element.ve)] += 1

    def _apply_stable(self, element: Stable) -> None:
        # stable() elements are monotone; a regression is a no-op, matching
        # the "if (t <= MaxStable) return" guard in every paper algorithm.
        if element.vc > self.stable_point:
            self.stable_point = element.vc

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events_for_key(self, vs: Timestamp, payload: Payload) -> List[Event]:
        """All events with the given ``(Vs, payload)``, with multiplicity."""
        result: List[Event] = []
        for event, count in self._events.items():
            if event.vs == vs and event.payload == payload:
                result.extend([event] * count)
        return result

    def status_of(self, event: Event) -> FreezeStatus:
        """Freeze status of *event* relative to this TDB's stable point."""
        return freeze_status(event, self.stable_point)

    def events_with_status(self, status: FreezeStatus) -> List[Event]:
        """Distinct events currently classified as *status*."""
        return [e for e in self.distinct_events() if self.status_of(e) is status]

    def snapshot(self, t: Timestamp) -> Counter:
        """The multiset of payloads active at instant *t* (a TDB snapshot)."""
        active: Counter = Counter()
        for event, count in self._events.items():
            if event.active_at(t):
                active[event.payload] += count
        return active

    def max_ve(self) -> Timestamp:
        """Largest finite Ve, or ``-inf`` when empty / all-infinite."""
        finite = [e.ve for e in self._events if e.ve != INFINITY]
        return max(finite) if finite else MINUS_INFINITY

    def key_is_unique(self) -> bool:
        """True when ``(Vs, payload)`` is a key of this instance (R2/R3)."""
        seen: Set[Tuple[Timestamp, Payload]] = set()
        for event, count in self._events.items():
            if count > 1 or event.key in seen:
                return False
            seen.add(event.key)
        return True


def reconstitute(elements: Iterable[Element], strict: bool = True) -> TDB:
    """``tdb(S)``: reconstitute a full element sequence into a TDB."""
    return TDB(strict=strict).apply_all(elements)


def reconstitute_prefix(
    elements: Sequence[Element], length: int, strict: bool = True
) -> TDB:
    """``tdb(S, i)``: reconstitute the length-*length* prefix of *elements*."""
    if length < 0 or length > len(elements):
        raise IndexError(f"prefix length {length} out of range")
    return reconstitute(elements[:length], strict=strict)


def reconstitute_open_close(elements: Iterable[OCElement]) -> TDB:
    """Reconstitute an Example-3 open/close stream into a TDB.

    At most one event per payload is active at a time; a ``close`` for a
    payload whose event already closed *revises* the previous close (see
    stream ``W[6]`` in Example 3).
    """
    open_times: Dict[Payload, Timestamp] = {}
    closed: Dict[Payload, Tuple[Timestamp, Timestamp]] = {}
    for element in elements:
        if isinstance(element, Open):
            if element.payload in open_times:
                raise StreamViolationError(
                    f"open for already-active payload {element.payload!r}"
                )
            open_times[element.payload] = element.vs
        elif isinstance(element, Close):
            if element.payload in open_times:
                vs = open_times.pop(element.payload)
                closed[element.payload] = (vs, element.ve)
            elif element.payload in closed:
                vs, _ = closed[element.payload]
                closed[element.payload] = (vs, element.ve)
            else:
                raise StreamViolationError(
                    f"close for never-opened payload {element.payload!r}"
                )
        else:
            raise TypeError(f"not an open/close element: {element!r}")
    events = [Event(vs, p) for p, vs in open_times.items()]
    events.extend(Event(vs, p, ve) for p, (vs, ve) in closed.items())
    return TDB(events)
