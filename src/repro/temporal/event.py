"""TDB events and their freeze status.

An event is a payload with a half-open validity interval ``[Vs, Ve)``
(Section III-A).  Freeze status (Section III-C) is defined relative to the
latest ``stable(Vc)`` element seen on a stream:

* *fully frozen* (FF): ``Ve < Vc`` — no future ``adjust`` may alter it, so it
  is in every future version of the TDB;
* *half frozen* (HF): ``Vs < Vc <= Ve`` — some event ``<p, Vs, V>`` will be
  in the TDB henceforth, but its end time may still move (not below ``Vc``);
* *unfrozen* (UF): ``Vc <= Vs`` — the event may still be altered arbitrarily
  or removed entirely.
"""

from __future__ import annotations

import enum
from typing import Any, Tuple

from repro.temporal.time import INFINITY, Timestamp, is_finite, validate_timestamp

#: Payloads are arbitrary hashable values (tuples model relational tuples).
Payload = Any


class FreezeStatus(enum.Enum):
    """Freeze status of an event relative to a stable point."""

    UNFROZEN = "UF"
    HALF_FROZEN = "HF"
    FULLY_FROZEN = "FF"


class Event:
    """A TDB event ``<payload, Vs, Ve)`` with half-open lifetime ``[Vs, Ve)``.

    Events are immutable ``__slots__`` value objects; "modifying" an event
    (as an ``adjust`` element does) produces a new :class:`Event`.  The
    ordering is ``(Vs, payload, Ve)``, matching the key order of the merge
    indexes.  Construction skips validation unless ``validate=True`` —
    events are built per insert on the merge hot path, always from
    already-checked elements.
    """

    __slots__ = ("vs", "payload", "ve")

    def __init__(
        self,
        vs: Timestamp,
        payload: Payload,
        ve: Timestamp = INFINITY,
        *,
        validate: bool = False,
    ):
        _set = object.__setattr__
        _set(self, "vs", vs)
        _set(self, "payload", payload)
        _set(self, "ve", ve)
        if validate:
            validate_timestamp(vs, "Vs")
            validate_timestamp(ve, "Ve")
            if not is_finite(vs):
                raise ValueError(f"event Vs must be finite, got {vs}")
            if ve <= vs:
                raise ValueError(
                    f"event lifetime must be non-empty: [{vs}, {ve})"
                )

    def __setattr__(self, name, value):
        raise AttributeError(f"Event is immutable; cannot set {name!r}")

    def __delattr__(self, name):
        raise AttributeError(f"Event is immutable; cannot delete {name!r}")

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return (
            self.vs == other.vs
            and self.ve == other.ve
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((Event, self.vs, self.payload, self.ve))

    def _tuple(self) -> Tuple[Timestamp, Payload, Timestamp]:
        return (self.vs, self.payload, self.ve)

    def __lt__(self, other: "Event") -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return self._tuple() < other._tuple()

    def __le__(self, other: "Event") -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return self._tuple() <= other._tuple()

    def __gt__(self, other: "Event") -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return self._tuple() > other._tuple()

    def __ge__(self, other: "Event") -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return self._tuple() >= other._tuple()

    def __repr__(self) -> str:
        return f"Event(vs={self.vs!r}, payload={self.payload!r}, ve={self.ve!r})"

    # -- queries -----------------------------------------------------------

    @property
    def key(self) -> Tuple[Timestamp, Payload]:
        """The ``(Vs, payload)`` pair; a TDB key under restrictions R2/R3."""
        return (self.vs, self.payload)

    def with_end(self, ve: Timestamp) -> "Event":
        """Return a copy of this event with validity end *ve*."""
        return Event(self.vs, self.payload, ve)

    def active_at(self, t: Timestamp) -> bool:
        """Return True when *t* falls inside the validity interval."""
        return self.vs <= t < self.ve

    def overlaps(self, start: Timestamp, end: Timestamp) -> bool:
        """Return True when the lifetime intersects ``[start, end)``."""
        return self.vs < end and start < self.ve

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        end = "inf" if self.ve == INFINITY else self.ve
        return f"<{self.payload!r}, [{self.vs}, {end})>"


def freeze_status(event: Event, stable_point: Timestamp) -> FreezeStatus:
    """Classify *event* as UF / HF / FF relative to *stable_point*.

    *stable_point* is the largest ``Vc`` such that ``stable(Vc)`` has been
    seen (``-inf`` if none has).
    """
    if event.ve < stable_point:
        return FreezeStatus.FULLY_FROZEN
    if event.vs < stable_point:
        return FreezeStatus.HALF_FROZEN
    return FreezeStatus.UNFROZEN
