"""Stream-dialect converters.

Section III presents LMerge "in a way that applies to many DSMSs" and
Example 3 introduces the open/close dialect (I-/D-streams in STREAM and
Oracle CEP, positive/negative tuples in Nile).  These converters bridge
that dialect and the StreamInsight element algebra the algorithms here
speak, so LMerge can be applied to open/close sources:

* :func:`open_close_to_elements` — ``open(p, Vs)`` becomes
  ``insert(p, Vs, +inf)``; ``close(p, Ve)`` becomes an adjust of the open
  (or previously closed) event's end time;
* :func:`elements_to_open_close` — the reverse, defined for streams whose
  events never overlap per payload (the dialect's own precondition).

Round-tripping preserves the logical TDB; tests assert this with
hypothesis over generated histories.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.temporal.elements import (
    Adjust,
    Close,
    Element,
    Insert,
    OCElement,
    Open,
    Stable,
)
from repro.temporal.event import Payload
from repro.temporal.tdb import StreamViolationError
from repro.temporal.time import INFINITY, Timestamp


def open_close_to_elements(elements: Iterable[OCElement]) -> List[Element]:
    """Translate an Example-3 stream into insert/adjust elements.

    ``open`` starts an event with unknown end (``Ve = +inf``); ``close``
    adjusts it down to the reported end; a repeated ``close`` for the same
    payload revises the previous one (stream ``W[6]``'s behaviour).
    """
    result: List[Element] = []
    #: payload -> (Vs, current Ve) of its latest event.
    state: Dict[Payload, tuple] = {}
    for element in elements:
        if isinstance(element, Open):
            current = state.get(element.payload)
            if current is not None and current[1] == INFINITY:
                raise StreamViolationError(
                    f"open for already-active payload {element.payload!r}"
                )
            state[element.payload] = (element.vs, INFINITY)
            result.append(Insert(element.payload, element.vs, INFINITY))
        elif isinstance(element, Close):
            current = state.get(element.payload)
            if current is None:
                raise StreamViolationError(
                    f"close for never-opened payload {element.payload!r}"
                )
            vs, old_ve = current
            result.append(Adjust(element.payload, vs, old_ve, element.ve))
            state[element.payload] = (vs, element.ve)
        else:
            raise TypeError(f"not an open/close element: {element!r}")
    return result


def elements_to_open_close(elements: Iterable[Element]) -> List[OCElement]:
    """Translate insert/adjust/stable elements into the open/close dialect.

    Requires the dialect's precondition: at most one event active per
    payload at a time (violations raise).  ``insert`` with a finite end
    becomes ``open`` + ``close``; an end-time adjust becomes a (revising)
    ``close``; a cancel cannot be represented and raises.  ``stable``
    elements carry no dialect counterpart and are dropped (open/close
    systems use separate heartbeats).
    """
    result: List[OCElement] = []
    active: Dict[Payload, Timestamp] = {}  # payload -> Vs of open event
    for element in elements:
        if isinstance(element, Stable):
            continue
        if isinstance(element, Insert):
            if element.payload in active:
                raise StreamViolationError(
                    f"second concurrent event for payload {element.payload!r}"
                )
            result.append(Open(element.payload, element.vs))
            if element.ve == INFINITY:
                active[element.payload] = element.vs
            else:
                result.append(Close(element.payload, element.ve))
                active[element.payload] = element.vs
        elif isinstance(element, Adjust):
            if element.payload not in active:
                raise StreamViolationError(
                    f"adjust for unknown payload {element.payload!r}"
                )
            if element.is_cancel:
                raise StreamViolationError(
                    "the open/close dialect cannot express event removal"
                )
            result.append(Close(element.payload, element.ve))
        else:
            raise TypeError(f"not a stream element: {element!r}")
    return result
