"""Physical stream elements.

The primary element algebra is StreamInsight's (Example 5 of the paper):

* ``insert(p, Vs, Ve)`` — add event ``<p, Vs, Ve)`` to the TDB;
* ``adjust(p, Vs, Vold, Ve)`` — change event ``<p, Vs, Vold)`` to
  ``<p, Vs, Ve)``; if ``Ve == Vs`` the event is removed;
* ``stable(Vc)`` — punctuation: the TDB before ``Vc`` is now stable (no
  future insert with ``Vs < Vc``, no adjust with ``Vold < Vc`` or
  ``Ve < Vc``).

We also provide the simpler ``open``/``close`` algebra of Example 3 (the
I-stream/D-stream or positive/negative-tuple model), used by the theory
module to demonstrate compatibility in a second stream dialect.

Elements are immutable ``__slots__`` value objects.  Millions of them
flow through the merge hot paths, so construction validates nothing by
default; pass ``validate=True`` at trust boundaries (stream file parsing,
tests, hand-built fixtures) to get the full contract checks.  Internal
producers — generators, operators, the merges themselves — only build
elements from already-valid elements, so the checks would be pure
overhead there.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.temporal.event import Event, Payload
from repro.temporal.time import (
    INFINITY,
    MINUS_INFINITY,
    Timestamp,
    is_finite,
    validate_timestamp,
)


class Insert:
    """``insert(p, Vs, Ve)``: add an event with lifetime ``[Vs, Ve)``."""

    __slots__ = ("payload", "vs", "ve")

    def __init__(
        self,
        payload: Payload,
        vs: Timestamp,
        ve: Timestamp = INFINITY,
        *,
        validate: bool = False,
    ):
        _set = object.__setattr__
        _set(self, "payload", payload)
        _set(self, "vs", vs)
        _set(self, "ve", ve)
        if validate:
            validate_timestamp(vs, "Vs")
            validate_timestamp(ve, "Ve")
            if not is_finite(vs):
                raise ValueError(f"insert Vs must be finite, got {vs}")
            if ve <= vs:
                raise ValueError(
                    f"insert lifetime must be non-empty: [{vs}, {ve})"
                )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Insert:
            return NotImplemented
        return (
            self.vs == other.vs
            and self.ve == other.ve
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((Insert, self.payload, self.vs, self.ve))

    def __repr__(self) -> str:
        return f"Insert(payload={self.payload!r}, vs={self.vs!r}, ve={self.ve!r})"

    def __reduce__(self):
        return (Insert, (self.payload, self.vs, self.ve))

    @property
    def key(self) -> Tuple[Timestamp, Payload]:
        return (self.vs, self.payload)

    def to_event(self) -> Event:
        return Event(self.vs, self.payload, self.ve)

    def __str__(self) -> str:  # pragma: no cover
        end = "inf" if self.ve == INFINITY else self.ve
        return f"insert({self.payload!r}, {self.vs}, {end})"


class Adjust:
    """``adjust(p, Vs, Vold, Ve)``: retime ``<p,Vs,Vold)`` to end at ``Ve``.

    ``Ve == Vs`` removes the event from the TDB entirely (a *cancel*).
    """

    __slots__ = ("payload", "vs", "v_old", "ve")

    def __init__(
        self,
        payload: Payload,
        vs: Timestamp,
        v_old: Timestamp,
        ve: Timestamp,
        *,
        validate: bool = False,
    ):
        _set = object.__setattr__
        _set(self, "payload", payload)
        _set(self, "vs", vs)
        _set(self, "v_old", v_old)
        _set(self, "ve", ve)
        if validate:
            validate_timestamp(vs, "Vs")
            validate_timestamp(v_old, "Vold")
            validate_timestamp(ve, "Ve")
            if not is_finite(vs):
                raise ValueError(f"adjust Vs must be finite, got {vs}")
            if v_old <= vs:
                raise ValueError(
                    f"adjust Vold must follow Vs: Vs={vs}, Vold={v_old}"
                )
            if ve < vs:
                raise ValueError(
                    f"adjust Ve may not precede Vs: Vs={vs}, Ve={ve}"
                )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Adjust:
            return NotImplemented
        return (
            self.vs == other.vs
            and self.v_old == other.v_old
            and self.ve == other.ve
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((Adjust, self.payload, self.vs, self.v_old, self.ve))

    def __repr__(self) -> str:
        return (
            f"Adjust(payload={self.payload!r}, vs={self.vs!r}, "
            f"v_old={self.v_old!r}, ve={self.ve!r})"
        )

    def __reduce__(self):
        return (Adjust, (self.payload, self.vs, self.v_old, self.ve))

    @property
    def key(self) -> Tuple[Timestamp, Payload]:
        return (self.vs, self.payload)

    @property
    def is_cancel(self) -> bool:
        """True when this adjust removes the event (``Ve == Vs``)."""
        return self.ve == self.vs

    def __str__(self) -> str:  # pragma: no cover
        old = "inf" if self.v_old == INFINITY else self.v_old
        end = "inf" if self.ve == INFINITY else self.ve
        return f"adjust({self.payload!r}, {self.vs}, {old}, {end})"


class Stable:
    """``stable(Vc)``: the portion of the TDB before ``Vc`` is stable.

    Equivalent to StreamInsight CTIs / heartbeats / punctuation.  ``Vc`` may
    be ``+inf``, which finalizes the whole stream.
    """

    __slots__ = ("vc",)

    def __init__(self, vc: Timestamp, *, validate: bool = False):
        object.__setattr__(self, "vc", vc)
        if validate:
            validate_timestamp(vc, "Vc")
            if vc == MINUS_INFINITY:
                raise ValueError("stable(-inf) is meaningless")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Stable:
            return NotImplemented
        return self.vc == other.vc

    def __hash__(self) -> int:
        return hash((Stable, self.vc))

    def __repr__(self) -> str:
        return f"Stable(vc={self.vc!r})"

    def __reduce__(self):
        return (Stable, (self.vc,))

    def __str__(self) -> str:  # pragma: no cover
        at = "inf" if self.vc == INFINITY else self.vc
        return f"stable({at})"


#: A StreamInsight-model physical stream element.
Element = Union[Insert, Adjust, Stable]

#: Columnar kind codes — the one-byte element discriminator used by the
#: struct-of-arrays batches (:mod:`repro.engine.columnar`) and their
#: binary wire encoding.  Stable across versions: they are part of the
#: wire format.
KIND_INSERT = 0
KIND_ADJUST = 1
KIND_STABLE = 2

_KIND_BY_CLASS = {Insert: KIND_INSERT, Adjust: KIND_ADJUST, Stable: KIND_STABLE}


def kind_of(element: Element) -> int:
    """The columnar kind code of *element* (raises for non-elements)."""
    try:
        return _KIND_BY_CLASS[element.__class__]
    except KeyError:
        raise TypeError(f"not a stream element: {element!r}")


class Open:
    """``open(p, Vs)``: an event with payload *p* starts at ``Vs``.

    Example 3's simple dialect: an I-stream / positive tuple.  At most one
    event per payload may be active at a time.
    """

    __slots__ = ("payload", "vs")

    def __init__(self, payload: Payload, vs: Timestamp, *, validate: bool = False):
        _set = object.__setattr__
        _set(self, "payload", payload)
        _set(self, "vs", vs)
        if validate:
            validate_timestamp(vs, "Vs")
            if not is_finite(vs):
                raise ValueError(f"open Vs must be finite, got {vs}")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Open:
            return NotImplemented
        return self.vs == other.vs and self.payload == other.payload

    def __hash__(self) -> int:
        return hash((Open, self.payload, self.vs))

    def __repr__(self) -> str:
        return f"Open(payload={self.payload!r}, vs={self.vs!r})"

    def __reduce__(self):
        return (Open, (self.payload, self.vs))


class Close:
    """``close(p, Ve)``: the active event for payload *p* ends at ``Ve``.

    A later ``close`` for the same payload *revises* the earlier one (see
    stream ``W`` in Example 3).
    """

    __slots__ = ("payload", "ve")

    def __init__(self, payload: Payload, ve: Timestamp, *, validate: bool = False):
        _set = object.__setattr__
        _set(self, "payload", payload)
        _set(self, "ve", ve)
        if validate:
            validate_timestamp(ve, "Ve")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Close:
            return NotImplemented
        return self.ve == other.ve and self.payload == other.payload

    def __hash__(self) -> int:
        return hash((Close, self.payload, self.ve))

    def __repr__(self) -> str:
        return f"Close(payload={self.payload!r}, ve={self.ve!r})"

    def __reduce__(self):
        return (Close, (self.payload, self.ve))


#: An Example-3 dialect element.
OCElement = Union[Open, Close]


def _frozen_setattr(self, name, value):
    raise AttributeError(
        f"{self.__class__.__name__} elements are immutable; "
        f"cannot set {name!r}"
    )


def _frozen_delattr(self, name):
    raise AttributeError(
        f"{self.__class__.__name__} elements are immutable; "
        f"cannot delete {name!r}"
    )


for _cls in (Insert, Adjust, Stable, Open, Close):
    _cls.__setattr__ = _frozen_setattr  # type: ignore
    _cls.__delattr__ = _frozen_delattr  # type: ignore
del _cls


def element_sort_key(element: Element) -> Tuple[Timestamp, int]:
    """A deterministic ordering key for StreamInsight-model elements.

    Orders by primary timestamp, with punctuation after data at the same
    instant so that a ``stable(t)`` never precedes an ``insert`` at ``t``
    that it would have frozen.  Used by the Cleanse operator and by tests
    that canonicalize streams.
    """
    cls = element.__class__
    if cls is Insert or cls is Adjust:
        return (element.vs, 0 if cls is Insert else 1)  # type: ignore[union-attr]
    if cls is Stable:
        return (element.vc, 2)  # type: ignore[union-attr]
    raise TypeError(f"not a stream element: {element!r}")
