"""Physical stream elements.

The primary element algebra is StreamInsight's (Example 5 of the paper):

* ``insert(p, Vs, Ve)`` — add event ``<p, Vs, Ve)`` to the TDB;
* ``adjust(p, Vs, Vold, Ve)`` — change event ``<p, Vs, Vold)`` to
  ``<p, Vs, Ve)``; if ``Ve == Vs`` the event is removed;
* ``stable(Vc)`` — punctuation: the TDB before ``Vc`` is now stable (no
  future insert with ``Vs < Vc``, no adjust with ``Vold < Vc`` or
  ``Ve < Vc``).

We also provide the simpler ``open``/``close`` algebra of Example 3 (the
I-stream/D-stream or positive/negative-tuple model), used by the theory
module to demonstrate compatibility in a second stream dialect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.temporal.event import Event, Payload
from repro.temporal.time import (
    INFINITY,
    Timestamp,
    is_finite,
    validate_timestamp,
)


@dataclass(frozen=True)
class Insert:
    """``insert(p, Vs, Ve)``: add an event with lifetime ``[Vs, Ve)``."""

    payload: Payload
    vs: Timestamp
    ve: Timestamp = INFINITY

    def __post_init__(self) -> None:
        validate_timestamp(self.vs, "Vs")
        validate_timestamp(self.ve, "Ve")
        if not is_finite(self.vs):
            raise ValueError(f"insert Vs must be finite, got {self.vs}")
        if self.ve <= self.vs:
            raise ValueError(
                f"insert lifetime must be non-empty: [{self.vs}, {self.ve})"
            )

    @property
    def key(self) -> Tuple[Timestamp, Payload]:
        return (self.vs, self.payload)

    def to_event(self) -> Event:
        return Event(self.vs, self.payload, self.ve)

    def __str__(self) -> str:  # pragma: no cover
        end = "inf" if self.ve == INFINITY else self.ve
        return f"insert({self.payload!r}, {self.vs}, {end})"


@dataclass(frozen=True)
class Adjust:
    """``adjust(p, Vs, Vold, Ve)``: retime ``<p,Vs,Vold)`` to end at ``Ve``.

    ``Ve == Vs`` removes the event from the TDB entirely (a *cancel*).
    """

    payload: Payload
    vs: Timestamp
    v_old: Timestamp
    ve: Timestamp

    def __post_init__(self) -> None:
        validate_timestamp(self.vs, "Vs")
        validate_timestamp(self.v_old, "Vold")
        validate_timestamp(self.ve, "Ve")
        if not is_finite(self.vs):
            raise ValueError(f"adjust Vs must be finite, got {self.vs}")
        if self.v_old <= self.vs:
            raise ValueError(
                f"adjust Vold must follow Vs: Vs={self.vs}, Vold={self.v_old}"
            )
        if self.ve < self.vs:
            raise ValueError(
                f"adjust Ve may not precede Vs: Vs={self.vs}, Ve={self.ve}"
            )

    @property
    def key(self) -> Tuple[Timestamp, Payload]:
        return (self.vs, self.payload)

    @property
    def is_cancel(self) -> bool:
        """True when this adjust removes the event (``Ve == Vs``)."""
        return self.ve == self.vs

    def __str__(self) -> str:  # pragma: no cover
        old = "inf" if self.v_old == INFINITY else self.v_old
        end = "inf" if self.ve == INFINITY else self.ve
        return f"adjust({self.payload!r}, {self.vs}, {old}, {end})"


@dataclass(frozen=True)
class Stable:
    """``stable(Vc)``: the portion of the TDB before ``Vc`` is stable.

    Equivalent to StreamInsight CTIs / heartbeats / punctuation.  ``Vc`` may
    be ``+inf``, which finalizes the whole stream.
    """

    vc: Timestamp

    def __post_init__(self) -> None:
        validate_timestamp(self.vc, "Vc")
        if self.vc == -INFINITY:
            raise ValueError("stable(-inf) is meaningless")

    def __str__(self) -> str:  # pragma: no cover
        at = "inf" if self.vc == INFINITY else self.vc
        return f"stable({at})"


#: A StreamInsight-model physical stream element.
Element = Union[Insert, Adjust, Stable]


@dataclass(frozen=True)
class Open:
    """``open(p, Vs)``: an event with payload *p* starts at ``Vs``.

    Example 3's simple dialect: an I-stream / positive tuple.  At most one
    event per payload may be active at a time.
    """

    payload: Payload
    vs: Timestamp

    def __post_init__(self) -> None:
        validate_timestamp(self.vs, "Vs")
        if not is_finite(self.vs):
            raise ValueError(f"open Vs must be finite, got {self.vs}")


@dataclass(frozen=True)
class Close:
    """``close(p, Ve)``: the active event for payload *p* ends at ``Ve``.

    A later ``close`` for the same payload *revises* the earlier one (see
    stream ``W`` in Example 3).
    """

    payload: Payload
    ve: Timestamp

    def __post_init__(self) -> None:
        validate_timestamp(self.ve, "Ve")


#: An Example-3 dialect element.
OCElement = Union[Open, Close]


def element_sort_key(element: Element) -> Tuple[Timestamp, int]:
    """A deterministic ordering key for StreamInsight-model elements.

    Orders by primary timestamp, with punctuation after data at the same
    instant so that a ``stable(t)`` never precedes an ``insert`` at ``t``
    that it would have frozen.  Used by the Cleanse operator and by tests
    that canonicalize streams.
    """
    if isinstance(element, Insert):
        return (element.vs, 0)
    if isinstance(element, Adjust):
        return (element.vs, 1)
    if isinstance(element, Stable):
        return (element.vc, 2)
    raise TypeError(f"not a stream element: {element!r}")
