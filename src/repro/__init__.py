"""repro — Physically Independent Stream Merging.

A from-scratch reproduction of *Physically Independent Stream Merging*
(Chandramouli, Maier, Goldstein; ICDE 2012): the **LMerge** operator
family over a temporal mini-DSMS.

Quickstart::

    from repro import (
        GeneratorConfig, StreamGenerator, diverge, LMergeR3,
    )

    ref = StreamGenerator(GeneratorConfig(count=10_000, seed=1)).generate()
    inputs = [diverge(ref, seed=i, speculate_fraction=0.3) for i in range(3)]
    merge = LMergeR3()
    merged = merge.merge(inputs)
    assert merged.tdb() == ref.tdb()      # one clean logical stream

See :mod:`repro.lmerge` for the algorithm family, :mod:`repro.engine` for
query plans and simulation, and :mod:`repro.ha` for high availability,
jumpstart, and cutover built on LMerge.
"""

from repro.temporal import (
    INFINITY,
    Adjust,
    Event,
    FreezeStatus,
    Insert,
    Stable,
    TDB,
    reconstitute,
)
from repro.streams import (
    GeneratorConfig,
    PhysicalStream,
    Restriction,
    StreamGenerator,
    StreamProperties,
    classify,
    diverge,
    measure_properties,
)
from repro.lmerge import (
    FeedbackSignal,
    LMergeR0,
    LMergeR1,
    LMergeR2,
    LMergeR3,
    LMergeR3Naive,
    LMergeR4,
    MergeStats,
    OutputPolicy,
    algorithm_for,
    create_lmerge,
)
from repro.engine import Query
from repro.ha import Checkpoint, ReplicatedDeployment, checkpoint_of, replay_stream
from repro.obs import (
    LMergeObserver,
    MetricRegistry,
    RingTracer,
    RunReport,
    prometheus_text,
)

__version__ = "1.0.0"

__all__ = [
    "INFINITY",
    "Insert",
    "Adjust",
    "Stable",
    "Event",
    "FreezeStatus",
    "TDB",
    "reconstitute",
    "PhysicalStream",
    "StreamProperties",
    "Restriction",
    "classify",
    "measure_properties",
    "GeneratorConfig",
    "StreamGenerator",
    "diverge",
    "LMergeR0",
    "LMergeR1",
    "LMergeR2",
    "LMergeR3",
    "LMergeR3Naive",
    "LMergeR4",
    "MergeStats",
    "OutputPolicy",
    "FeedbackSignal",
    "algorithm_for",
    "create_lmerge",
    "Query",
    "Checkpoint",
    "checkpoint_of",
    "replay_stream",
    "ReplicatedDeployment",
    "MetricRegistry",
    "RingTracer",
    "LMergeObserver",
    "RunReport",
    "prometheus_text",
    "__version__",
]
