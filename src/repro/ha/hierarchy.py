"""Hierarchical LMerge: query-fragment-level resiliency (Section II).

"As LMerge is a composable operator, we can also achieve resiliency on a
query-fragment level by deploying a hierarchy of LMerge operators — one
for each replicated query fragment."

:class:`ReplicatedFragment` wraps one query fragment replicated n ways:
each replica is an operator pipeline, all replicas feed one LMerge, and
the LMerge's output is itself an operator output that the next fragment's
replicas consume.  A chain of such fragments tolerates n-1 failures *per
fragment* independently — failing one replica of every fragment
simultaneously still yields a correct end-to-end stream, which a single
top-level merge of full-plan replicas cannot do.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.engine.operator import CollectorSink, Operator
from repro.engine.query import infer_properties
from repro.lmerge.base import LMergeBase
from repro.lmerge.selector import create_lmerge
from repro.streams.properties import StreamProperties

#: Builds one replica of a fragment: returns the (head, tail) operators.
FragmentBuilder = Callable[[int], Operator]


class _MergeOutput(Operator):
    """Presents an LMerge's output as an ordinary operator output."""

    kind = "lmerge"

    def __init__(self, merge: LMergeBase, properties: StreamProperties):
        super().__init__(merge.name)
        self.merge = merge
        self._properties = properties
        merge._sink = self.emit  # forward merge output downstream

    def derive_properties(self, input_properties):
        return self._properties


class ReplicatedFragment:
    """One fragment of a query, replicated and merged.

    ``builder(replica_index)`` constructs a fresh single-input/
    single-output operator pipeline (returning its head operator; the
    tail is found by following single subscriptions).  All replicas'
    outputs feed an LMerge selected from the fragment's inferred output
    properties.
    """

    def __init__(
        self,
        builder: FragmentBuilder,
        replicas: int,
        name: str = "fragment",
    ):
        if replicas < 1:
            raise ValueError("a fragment needs at least one replica")
        self.name = name
        self.heads: List[Operator] = []
        tails: List[Operator] = []
        for index in range(replicas):
            head = builder(index)
            self.heads.append(head)
            tails.append(_pipeline_tail(head))
        properties = [infer_properties(tail) for tail in tails]
        self.merge = create_lmerge(properties, name=f"{name}.lmerge")
        merged_properties = properties[0]
        for item in properties[1:]:
            merged_properties = merged_properties.meet(item)
        self.output = _MergeOutput(self.merge, merged_properties)
        for stream_id, tail in enumerate(tails):
            self.merge.attach(stream_id)
            tail.subscribe(_FragmentAdapter(self.merge, stream_id))

    def fail_replica(self, index: int) -> None:
        """Detach replica *index* from this fragment's merge."""
        self.merge.detach(index)

    def broadcast(self, element, exclude: Sequence[int] = ()) -> None:
        """Feed *element* to every (non-excluded) replica head."""
        for index, head in enumerate(self.heads):
            if index not in exclude:
                head.receive(element, 0)


class _FragmentAdapter(Operator):
    kind = "lmerge-adapter"

    def __init__(self, merge: LMergeBase, stream_id: int):
        super().__init__(f"{merge.name}[{stream_id}]")
        self.merge = merge
        self.stream_id = stream_id

    def receive(self, element, port: int = 0) -> None:
        self.elements_in += 1
        if self.merge.is_attached(self.stream_id):
            self.merge.process(element, self.stream_id)
        # A failed replica's residual output is dropped on the floor.

    def receive_batch(self, elements, port: int = 0) -> None:
        # Batched delivery (e.g. from a QueuedEdge drain slice) rides the
        # merge's batched hot path.
        self.elements_in += len(elements)
        if self.merge.is_attached(self.stream_id):
            self.merge.process_batch(elements, self.stream_id)


def _pipeline_tail(head: Operator) -> Operator:
    tail = head
    while tail.subscribers:
        if len(tail.subscribers) != 1:
            raise ValueError("fragment pipelines must be linear")
        tail = tail.subscribers[0][0]
    return tail


class FragmentChain:
    """A linear query split into replicated fragments with one LMerge
    per fragment boundary."""

    def __init__(
        self,
        builders: Sequence[FragmentBuilder],
        replicas: int,
        name: str = "chain",
    ):
        if not builders:
            raise ValueError("a chain needs at least one fragment")
        self.fragments: List[ReplicatedFragment] = []
        previous: Optional[ReplicatedFragment] = None
        for index, builder in enumerate(builders):
            fragment = ReplicatedFragment(
                builder, replicas, name=f"{name}.f{index}"
            )
            if previous is not None:
                # The previous fragment's merged output drives every
                # replica of this fragment.
                for head in fragment.heads:
                    previous.output.subscribe(head)
            self.fragments.append(fragment)
            previous = fragment
        self.sink = CollectorSink(name=f"{name}.out")
        self.fragments[-1].output.subscribe(self.sink)

    def feed(self, elements) -> None:
        """Push source elements into every replica of the first fragment."""
        first = self.fragments[0]
        for element in elements:
            first.broadcast(element)

    def fail(self, fragment_index: int, replica_index: int) -> None:
        """Fail one replica of one fragment."""
        self.fragments[fragment_index].fail_replica(replica_index)

    @property
    def output(self):
        return self.sink.stream
