"""Query cutover through LMerge (Section II, application 5).

Switch a consumer from a running plan to a newly instantiated (possibly
different) plan without the application noticing: attach the new plan's
output as a second LMerge input, drive both until the newcomer is *joined*
(the output stable point passed its guarantee), then detach the old plan.
The consumer sees one uninterrupted logical stream throughout.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lmerge.base import LMergeBase, StreamId
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Element
from repro.temporal.time import Timestamp


def cutover(
    lmerge: LMergeBase,
    old_id: StreamId,
    old_tail: Iterator[Element],
    new_id: StreamId,
    new_stream: PhysicalStream,
    guarantee_from: Timestamp,
) -> Tuple[int, int]:
    """Cut the merge over from *old_id* to *new_id*.

    *old_tail* yields the old plan's remaining elements (consumed only as
    long as the old plan is still needed); *new_stream* is the new plan's
    output, correct for every event with ``Ve >= guarantee_from``.

    Returns ``(old_elements_consumed, new_elements_consumed)``.  On
    return, *old_id* is detached and *new_id* is the sole driver.
    """
    lmerge.attach(new_id, guarantee_from=guarantee_from)
    old_used = 0
    new_used = 0
    # Interleave both plans until the newcomer can stand alone.
    for element in new_stream:
        lmerge.process(element, new_id)
        new_used += 1
        if lmerge.is_joined(new_id):
            break
        try:
            old_element = next(old_tail)
        except StopIteration:
            continue
        lmerge.process(old_element, old_id)
        old_used += 1
    if not lmerge.is_joined(new_id):
        raise RuntimeError(
            f"new plan never reached its guarantee point {guarantee_from}; "
            f"output stable is {lmerge.max_stable}"
        )
    lmerge.detach(old_id)
    # The remainder of the new stream drives the output alone.
    remaining = new_stream[new_used:]
    for element in remaining:
        lmerge.process(element, new_id)
        new_used += 1
    return old_used, new_used
