"""Replicated deployments with failure injection (Section II, app 1).

``ReplicatedDeployment`` feeds *n* physically divergent copies of a
logical stream into one LMerge, element by element (round-robin), while a
failure schedule detaches and re-attaches replicas mid-run.  Recovery
modes model the artifacts Section I-B.4 warns about:

* ``PAUSE``  — the replica was merely unreachable; on re-attach it resumes
  where it stopped (delayed, no loss);
* ``GAP``    — the replica lost its backlog; it resumes *past* the
  elements produced while it was down (missing elements);
* ``REWIND`` — the replica restarted and reprocesses recent input,
  re-producing elements the merge has already seen (duplicates).

The deliverable guarantee (the paper's HA claim): the merged output is
logically correct as long as, at every instant, at least one replica that
has seen the relevant history is attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.lmerge.base import LMergeBase
from repro.streams.stream import PhysicalStream


class RecoveryMode(enum.Enum):
    PAUSE = "pause"
    GAP = "gap"
    REWIND = "rewind"


@dataclass
class FailureEvent:
    """One detach/re-attach episode for a replica.

    The replica detaches when it has delivered ``fail_after`` elements and
    re-attaches after ``down_for`` global scheduling rounds (never, when
    None).  ``rewind`` is how many elements to replay in REWIND mode.
    """

    replica: int
    fail_after: int
    down_for: Optional[int] = None
    mode: RecoveryMode = RecoveryMode.PAUSE
    rewind: int = 0

    def __post_init__(self) -> None:
        if self.fail_after < 0:
            raise ValueError("fail_after must be non-negative")
        if self.down_for is not None and self.down_for < 1:
            raise ValueError("down_for must be positive when given")
        if self.rewind < 0:
            raise ValueError("rewind must be non-negative")


class ReplicatedDeployment:
    """Drives replicas into an LMerge under a failure schedule."""

    def __init__(
        self,
        lmerge: LMergeBase,
        replicas: List[PhysicalStream],
        failures: Optional[List[FailureEvent]] = None,
    ):
        self.lmerge = lmerge
        self.replicas = replicas
        self.failures = sorted(
            failures or [], key=lambda f: (f.replica, f.fail_after)
        )
        for event in self.failures:
            if not 0 <= event.replica < len(replicas):
                raise ValueError(f"failure names unknown replica {event.replica}")
        self.detach_count = 0
        self.reattach_count = 0

    def run(self) -> PhysicalStream:
        """Execute the full schedule; returns the merged output stream."""
        cursors = [0] * len(self.replicas)
        down_until: Dict[int, Optional[int]] = {}
        pending: List[FailureEvent] = list(self.failures)
        for replica_id in range(len(self.replicas)):
            self.lmerge.attach(replica_id)
        round_number = 0
        while True:
            progressed = False
            for replica_id, stream in enumerate(self.replicas):
                if replica_id in down_until:
                    recovery_round = down_until[replica_id]
                    if recovery_round is None or round_number < recovery_round:
                        continue
                    self._reattach(replica_id, cursors, down_until)
                if cursors[replica_id] >= len(stream):
                    continue
                failure = self._failure_due(pending, replica_id, cursors[replica_id])
                if failure is not None:
                    pending.remove(failure)
                    self._detach(replica_id, failure, cursors, down_until, round_number)
                    continue
                element = stream[cursors[replica_id]]
                cursors[replica_id] += 1
                self.lmerge.process(element, replica_id)
                progressed = True
            round_number += 1
            if not progressed and not self._any_recovery_pending(
                down_until, round_number, cursors
            ):
                break
        return self.lmerge.output

    # ------------------------------------------------------------------

    @staticmethod
    def _failure_due(
        pending: List[FailureEvent], replica_id: int, cursor: int
    ) -> Optional[FailureEvent]:
        for event in pending:
            if event.replica == replica_id and cursor >= event.fail_after:
                return event
        return None

    def _detach(
        self,
        replica_id: int,
        failure: FailureEvent,
        cursors: List[int],
        down_until: Dict[int, Optional[int]],
        round_number: int,
    ) -> None:
        self.lmerge.detach(replica_id)
        self.detach_count += 1
        if failure.down_for is None:
            down_until[replica_id] = None
        else:
            down_until[replica_id] = round_number + failure.down_for
        if failure.mode is RecoveryMode.GAP and failure.down_for is not None:
            # Lose the backlog it would have delivered while down.
            cursors[replica_id] = min(
                len(self.replicas[replica_id]),
                cursors[replica_id] + failure.down_for,
            )
        elif failure.mode is RecoveryMode.REWIND:
            cursors[replica_id] = max(0, cursors[replica_id] - failure.rewind)

    def _reattach(
        self,
        replica_id: int,
        cursors: List[int],
        down_until: Dict[int, Optional[int]],
    ) -> None:
        del down_until[replica_id]
        # The replica re-joins guaranteeing correctness from the merge's
        # current stable point onward (Section V-B).
        self.lmerge.attach(replica_id, guarantee_from=self.lmerge.max_stable)
        self.reattach_count += 1

    @staticmethod
    def _any_recovery_pending(
        down_until: Dict[int, Optional[int]],
        round_number: int,
        cursors: List[int],
    ) -> bool:
        return any(
            recovery is not None and recovery >= round_number
            for recovery in down_until.values()
        )
