"""Checkpoints and query jumpstart (Section II, application 4).

Stream queries hold long-lived elements in state; spinning a replica up
from only the live stream can take arbitrarily long (or be impossible).  A
checkpoint captures, at a stable point *t*, every event still relevant at
or after *t*; replaying it ahead of the live tail "seeds" the new replica,
and LMerge absorbs the seam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Element, Insert, Stable
from repro.temporal.event import Event
from repro.temporal.tdb import TDB
from repro.temporal.time import Timestamp


@dataclass(frozen=True)
class Checkpoint:
    """State of a logical stream at stable point ``as_of``.

    ``events`` are exactly those with ``Ve >= as_of`` — events already
    ended before ``as_of`` can never affect output at or after it.
    """

    as_of: Timestamp
    events: Tuple[Event, ...]

    def __len__(self) -> int:
        return len(self.events)


def checkpoint_of(tdb: TDB, as_of: Timestamp) -> Checkpoint:
    """Capture a checkpoint from a reconstituted TDB.

    *as_of* may not exceed the TDB's stable point: unfrozen regions are
    still in flux and must come from the live stream instead.
    """
    if as_of > tdb.stable_point:
        raise ValueError(
            f"checkpoint point {as_of} is beyond the stable point "
            f"{tdb.stable_point}"
        )
    survivors = tuple(
        sorted(event for event in tdb if event.ve >= as_of)
    )
    return Checkpoint(as_of, survivors)


def replay_stream(
    checkpoint: Checkpoint, live_tail: Iterable[Element]
) -> PhysicalStream:
    """Build the physical stream a jumpstarted replica presents to LMerge.

    The checkpointed events are replayed as inserts, a ``stable``
    announces that history up to the checkpoint is complete, and the live
    tail follows.  The replica attaches to LMerge with
    ``guarantee_from=checkpoint.as_of`` — it is correct for every event
    with ``Ve >= as_of`` (Section V-B's joining contract).
    """
    elements: List[Element] = [
        Insert(event.payload, event.vs, event.ve) for event in checkpoint.events
    ]
    elements.append(Stable(checkpoint.as_of))
    elements.extend(live_tail)
    return PhysicalStream(elements, name=f"jumpstart@{checkpoint.as_of}")
