"""High availability, jumpstart, and cutover on top of LMerge (Section II).

* :mod:`repro.ha.replica` — replicated deployments with failure injection:
  n copies of a plan feed one LMerge; replicas detach (fail) and re-attach
  (recover), possibly with gaps or duplicated history;
* :mod:`repro.ha.checkpoint` — TDB checkpoints and the query-jumpstart
  replay stream (seed a fresh replica's state so it joins quickly);
* :mod:`repro.ha.cutover` — switching a consumer from one plan to another
  through LMerge without the application noticing.
"""

from repro.ha.checkpoint import Checkpoint, checkpoint_of, replay_stream
from repro.ha.replica import FailureEvent, ReplicatedDeployment
from repro.ha.cutover import cutover
from repro.ha.hierarchy import FragmentChain, ReplicatedFragment

__all__ = [
    "Checkpoint",
    "checkpoint_of",
    "replay_stream",
    "FailureEvent",
    "ReplicatedDeployment",
    "cutover",
    "ReplicatedFragment",
    "FragmentChain",
]
