"""Output-policy knobs for the general LMerge algorithms (Section V-A).

Compatibility (Section III-D) leaves freedom in *when* the output reflects
input activity.  Two decision points in Algorithm R3 are marked in the
paper (locations 1 and 2); this module names the choices:

* **location 1 — adjust propagation**: the paper's default never forwards
  incoming adjusts, issuing corrective adjusts only when a stable() forces
  the output into line (:attr:`AdjustPropagation.LAZY`; this is what makes
  Theorem 1's non-chattiness bound hold).  :attr:`AdjustPropagation.EAGER`
  reflects every incoming adjust immediately — chattier, lower latency for
  listeners that care about revisions.
* **location 2 — insert propagation**: the paper's default emits the first
  insert seen for a key (:attr:`InsertPropagation.FIRST`).  Alternatives:
  only follow the *leading* input (largest stable point); wait until the
  key is half frozen on some input (never emits an event that later needs
  full deletion, at a latency cost); or wait for a quorum fraction of
  inputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AdjustPropagation(enum.Enum):
    """When incoming adjust() elements reach the output."""

    #: Defer; reconcile only at stable() boundaries (paper default).
    LAZY = "lazy"
    #: Forward every incoming adjust for the followed value immediately.
    EAGER = "eager"


class InsertPropagation(enum.Enum):
    """When a newly seen event is placed on the output."""

    #: Emit the first insert seen for each key (paper default).
    FIRST = "first"
    #: Emit only inserts arriving from the current leading stream.
    LEADING = "leading"
    #: Emit a key only once it is half frozen on some input.
    HALF_FROZEN = "half_frozen"
    #: Emit once a fraction of attached inputs have produced the key.
    QUORUM = "quorum"


@dataclass(frozen=True)
class OutputPolicy:
    """A complete policy choice for LMerge R3/R4.

    ``OutputPolicy()`` is the paper's evaluated configuration: maximally
    responsive inserts, non-chatty adjusts, stable point tracking the
    maximum input stable point.
    """

    insert: InsertPropagation = InsertPropagation.FIRST
    adjust: AdjustPropagation = AdjustPropagation.LAZY
    #: Quorum fraction (only read when ``insert == QUORUM``).
    quorum_fraction: float = 0.5
    #: Hold the output stable point this far behind the inputs' maximum.
    #: Section V-A's closing observation: "there might be cases where
    #: lagging a bit behind the maximum would avoid some adjust()
    #: elements" — events inside the lag window can still be reconciled
    #: without ever emitting a correction.  Costs freshness (downstream
    #: learns about stability later) and memory (nodes retire later).
    stable_lag: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in (0, 1]")
        if self.stable_lag < 0:
            raise ValueError("stable_lag must be non-negative")

    def quorum_needed(self, attached_inputs: int) -> int:
        """Inputs that must have produced a key before it is emitted."""
        import math

        return max(1, math.ceil(self.quorum_fraction * attached_inputs))


#: The paper's default policy (Algorithm R3/R4 as printed).
DEFAULT_POLICY = OutputPolicy()

#: Conservative policy: an output event always has half-frozen support, so
#: no output event is ever fully deleted (Section V-A alternative).
CONSERVATIVE_POLICY = OutputPolicy(insert=InsertPropagation.HALF_FROZEN)

#: Chatty policy: every revision is visible downstream as soon as possible.
EAGER_POLICY = OutputPolicy(adjust=AdjustPropagation.EAGER)
