"""LMerge for case R0 (Algorithm R0).

Inputs contain only insert() and stable() elements with *strictly
increasing* Vs — deterministic order, no duplicate timestamps (e.g. the
output of a windowed aggregate over an in-order stream).  Two scalars
suffice: the maximum Vs and the maximum stable() timestamp seen across all
inputs.  O(1) time per element, O(1) space.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.lmerge.base import LMergeBase, StreamId, _InputState
from repro.streams.properties import Restriction
from repro.temporal.elements import Adjust, Insert
from repro.temporal.time import MINUS_INFINITY, Timestamp


class LMergeR0(LMergeBase):
    """Constant-state merge for strictly increasing insert-only inputs."""

    algorithm = "LMR0"
    restriction = Restriction.R0
    supports_adjust = False

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._max_vs: Timestamp = MINUS_INFINITY

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        # Algorithm R0, lines 3-5: output iff the element advances MaxVs.
        if element.vs > self._max_vs:
            self._max_vs = element.vs
            self._output_insert(element.payload, element.vs, element.ve)

    def _insert_batch(
        self,
        run: Sequence[Insert],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        # Fast path: one MaxVs register in a local, survivors collected
        # and emitted in one extend.  Input elements are re-emitted as-is
        # (an insert the filter passes is value-equal to what
        # _output_insert would construct).
        self.stats.inserts_in += len(run)
        max_vs = self._max_vs
        out: List[Insert] = []
        for element in run:
            if element.vs > max_vs:
                max_vs = element.vs
                out.append(element)
        if out:
            self._max_vs = max_vs
            self.stats.inserts_out += len(out)
            self._emit_batch(out)

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        raise AssertionError("unreachable: supports_adjust is False")

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        # Lines 9-11: stables are redundant under R0 (the stable point
        # rides MaxVs) but are forwarded to signal progress through lulls.
        if t > self.max_stable:
            self._output_stable(t)

    def memory_bytes(self) -> int:
        return 16  # MaxVs + MaxStable

    def _snapshot_extra(self) -> dict:
        return {"max_vs": self._max_vs}

    def _restore_extra(self, extra: dict) -> None:
        self._max_vs = extra["max_vs"]
