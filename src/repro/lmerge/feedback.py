"""Feedback signals for fast-forwarding lagging plans (Section V-D).

When LMerge combines alternative plans, the slower plan's work is mostly
wasted — LMerge ignores its output.  A feedback signal tells a plan that
elements before time *t* are no longer of interest, letting its operators
skip work, purge state, and propagate the signal further upstream (along
the lines of feedback punctuation [8]).

:class:`repro.lmerge.base.LMergeBase` raises a signal toward every input
whose stable point trails a freshly emitted output stable; the
:class:`FeedbackPolicy` here decides *whether* a given lag is worth
signalling (signalling has a cost: upstream operators must re-examine
state), and the engine's operators implement the receiving side
(``on_feedback``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.temporal.time import Timestamp


@dataclass(frozen=True)
class FeedbackSignal:
    """"Elements with Ve earlier than *horizon* are no longer of interest."

    Operators receiving the signal may drop queued elements and purge state
    strictly before *horizon*, but must retain enough information to
    produce output at or after *horizon*.
    """

    horizon: Timestamp

    def covers(self, t: Timestamp) -> bool:
        """True when work concerning time *t* can be skipped."""
        return t < self.horizon


@dataclass(frozen=True)
class FeedbackPolicy:
    """When is an input's lag worth a fast-forward signal?

    ``min_lag`` is the hysteresis: signal only when the input's stable
    point trails the output's by more than this much.  Zero reproduces the
    always-signal behaviour used in the paper's Figure 10 experiment.
    """

    min_lag: float = 0.0

    def should_signal(
        self, output_stable: Timestamp, input_stable: Timestamp
    ) -> bool:
        return output_stable - input_stable > self.min_lag
