"""The trivial counting merge — the strawman of Section I.

"This problem has a trivial solution if all the input streams present the
same elements in exactly the same order — just keep a count on each
input, and let the output follow the stream with the largest count."

:class:`CountingMerge` implements exactly that.  It is correct only under
the strongest possible assumptions (identical element sequences), and —
the paper's point in Section I-B.4 — it breaks under failures: a stream
that detaches and re-attaches with a *gap* silently desynchronizes the
counts, making the merge emit duplicates or drop elements.  Tests
demonstrate both behaviours; the LMerge family exists because of them.
"""

from __future__ import annotations

from typing import Dict

from repro.lmerge.base import LMergeBase, StreamId
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import Timestamp


class CountingMerge(LMergeBase):
    """Follow the input with the largest element count.

    Every element (of any kind) increments its input's counter; an
    element is forwarded iff its input's count moves strictly past the
    maximum count seen so far across all inputs.  With identical input
    sequences this forwards each element exactly once.
    """

    algorithm = "COUNT"
    supports_adjust = True

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._counts: Dict[StreamId, int] = {}
        self._emitted = 0

    def _on_attach(self, stream_id: StreamId) -> None:
        self._counts[stream_id] = 0

    def _on_detach(self, stream_id: StreamId) -> None:
        self._counts.pop(stream_id, None)

    def _bump(self, stream_id: StreamId) -> bool:
        self._counts[stream_id] += 1
        if self._counts[stream_id] > self._emitted:
            self._emitted = self._counts[stream_id]
            return True
        return False

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        if self._bump(stream_id):
            self._output_insert(element.payload, element.vs, element.ve)

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        if self._bump(stream_id):
            self._output_adjust(
                element.payload, element.vs, element.v_old, element.ve
            )

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        # No content-based guard anywhere: the counting merge trusts
        # *position*, not content.  That trust is exactly its flaw.
        if self._bump(stream_id):
            self.stats.stables_out += 1
            if t > self.max_stable:
                self.max_stable = t
            self._emit(Stable(t))

    def memory_bytes(self) -> int:
        return 8 + 8 * len(self._counts)
