"""Compile-time LMerge algorithm selection (Section IV-G).

Given the (inferred, stipulated, or measured) properties of the input
streams, pick the cheapest correct algorithm.  The mapping follows the
paper's examples:

1. ordered source streams merged directly -> properties say R0/R1;
2. a Cleanse operator upstream enforces order -> at least R1;
3. in-order stream into a windowed aggregate -> strictly increasing, R0;
4. in-order stream into Top-k -> duplicate timestamps in rank order, R1;
5. grouped aggregation over an ordered stream -> same-Vs order differs
   across replicas but keyed, R2;
6. grouped aggregation over a *disordered* stream -> R3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Type, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.lmerge.shard import ShardedLMerge

from repro.lmerge.base import LMergeBase
from repro.lmerge.policies import DEFAULT_POLICY, OutputPolicy
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.streams.properties import Restriction, StreamProperties, classify

_ALGORITHMS: Dict[Restriction, Type[LMergeBase]] = {
    Restriction.R0: LMergeR0,
    Restriction.R1: LMergeR1,
    Restriction.R2: LMergeR2,
    Restriction.R3: LMergeR3,
    Restriction.R4: LMergeR4,
}


def algorithm_for(
    spec: Union[Restriction, StreamProperties, Iterable[StreamProperties]],
) -> Type[LMergeBase]:
    """The cheapest LMerge class valid for *spec*.

    *spec* may be an explicit :class:`Restriction`, one
    :class:`StreamProperties`, or the per-input property sets (their meet
    is used — all inputs must satisfy the chosen restriction).
    """
    if isinstance(spec, Restriction):
        return _ALGORITHMS[spec]
    if isinstance(spec, StreamProperties):
        return _ALGORITHMS[classify(spec)]
    properties = list(spec)
    if not properties:
        raise ValueError("no stream properties supplied")
    merged = properties[0]
    for item in properties[1:]:
        merged = merged.meet(item)
    return _ALGORITHMS[classify(merged)]


def restriction_of(merge: object) -> Restriction:
    """The restriction a concrete merge (or merge class) runs under.

    Works for :class:`LMergeBase` subclasses/instances and for
    :class:`~repro.lmerge.shard.ShardedLMerge` wrappers, which carry their
    inner algorithm's restriction.  Raises :class:`TypeError` for objects
    that declare none — the static analyzer refuses to certify those.
    """
    restriction = getattr(merge, "restriction", None)
    if restriction is None:
        raise TypeError(f"{merge!r} declares no LMerge restriction")
    return Restriction(restriction)


def create_lmerge(
    spec: Union[Restriction, StreamProperties, Iterable[StreamProperties]],
    policy: Optional[OutputPolicy] = None,
    shards: int = 1,
    backend: str = "thread",
    **kwargs,
) -> "Union[LMergeBase, ShardedLMerge]":
    """Instantiate the algorithm :func:`algorithm_for` selects.

    *policy* is honoured by the R3/R4 algorithms and ignored (with a
    ValueError if explicitly set) by R0-R2, which have no policy freedom.

    With ``shards > 1`` the selected algorithm is wrapped in an N-shard
    partition-parallel plan (see :func:`repro.lmerge.shard.shard`) running
    on *backend* workers; the returned object mirrors the LMergeBase
    driving surface.
    """
    cls = algorithm_for(spec)
    if policy is not None and policy != DEFAULT_POLICY:
        if cls not in (LMergeR3, LMergeR4):
            raise ValueError(
                f"{cls.algorithm} admits no output-policy choices"
            )
    if cls in (LMergeR3,):
        kwargs = dict(kwargs, policy=policy or DEFAULT_POLICY)
    if shards > 1:
        from repro.lmerge.shard import shard as make_sharded

        return make_sharded(cls, shards, backend=backend, **kwargs)
    return cls(**kwargs)
