"""LMerge for case R2 (Algorithm R2).

Insert-only inputs with non-decreasing Vs where elements sharing a Vs may
arrive in *different orders* on different inputs (e.g. grouped aggregation
over an ordered stream), and ``(Vs, payload)`` is a key of any prefix TDB.
A hash table indexes, by payload, the elements already output at the
current MaxVs; advancing MaxVs clears it.

O(s) time per insert, O(g * p) space (g = events at the current Vs, p =
payload size).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lmerge.base import LMergeBase, StreamId, _InputState
from repro.streams.properties import Restriction
from repro.structures.sizing import HASH_ENTRY_OVERHEAD, payload_bytes
from repro.temporal.elements import Adjust, Insert
from repro.temporal.event import Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp


class LMergeR2(LMergeBase):
    """Current-Vs hash merge for nondeterministic same-Vs order."""

    algorithm = "LMR2"
    restriction = Restriction.R2
    supports_adjust = False

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._max_vs: Timestamp = MINUS_INFINITY
        # Payloads already output at the current MaxVs.  Values are the
        # payload's accounted size, so memory_bytes() is O(1).
        self._hash: Dict[Payload, int] = {}
        self._hash_bytes = 0

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        # Algorithm R2, lines 4-10.
        if element.vs < self._max_vs:
            return
        if element.vs > self._max_vs:
            self._hash.clear()
            self._hash_bytes = 0
            self._max_vs = element.vs
        if element.payload not in self._hash:
            size = payload_bytes(element.payload)
            self._hash[element.payload] = size
            self._hash_bytes += size
            self._output_insert(element.payload, element.vs, element.ve)

    def _insert_batch(
        self,
        run: Sequence[Insert],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        # Fast path: hash/bytes/MaxVs in locals, one bulk emit.
        self.stats.inserts_in += len(run)
        seen = self._hash
        max_vs = self._max_vs
        hash_bytes = self._hash_bytes
        out: List[Insert] = []
        for element in run:
            vs = element.vs
            if vs < max_vs:
                continue
            if vs > max_vs:
                seen.clear()
                hash_bytes = 0
                max_vs = vs
            payload = element.payload
            if payload not in seen:
                size = payload_bytes(payload)
                seen[payload] = size
                hash_bytes += size
                out.append(element)
        self._max_vs = max_vs
        self._hash_bytes = hash_bytes
        if out:
            self.stats.inserts_out += len(out)
            self._emit_batch(out)

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        raise AssertionError("unreachable: supports_adjust is False")

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        if t > self.max_stable:
            self._output_stable(t)

    def memory_bytes(self) -> int:
        return 16 + self._hash_bytes + len(self._hash) * HASH_ENTRY_OVERHEAD

    def _snapshot_extra(self) -> dict:
        return {
            "max_vs": self._max_vs,
            "hash": dict(self._hash),
            "hash_bytes": self._hash_bytes,
        }

    def _restore_extra(self, extra: dict) -> None:
        self._max_vs = extra["max_vs"]
        self._hash = dict(extra["hash"])
        self._hash_bytes = extra["hash_bytes"]
