"""Common machinery for every LMerge algorithm.

Responsibilities shared across R0-R4:

* input-stream lifecycle — dynamic attach/detach with the joining protocol
  of Section V-B (a joining stream supplies a timestamp *t* from which it
  guarantees the correct TDB; it counts as fully joined once the output
  stable point reaches *t*);
* output emission with statistics (the chattiness metric of Section VI-B
  is ``stats.adjusts_out``);
* feedback signalling hooks (Section V-D);
* the offline ``merge`` driver used by tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.event import Event, Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp

StreamId = Hashable
#: Callback receiving each output element as it is emitted.
Sink = Callable[[Element], None]
#: Callback receiving feedback signals ("not interested before t").
FeedbackListener = Callable[["StreamId", Timestamp], None]


class UnsupportedElementError(TypeError):
    """An element kind the configured restriction forbids (e.g. adjust
    under R0-R2)."""


class InputStateError(RuntimeError):
    """An element arrived from a stream that is not attached."""


@dataclass
class MergeStats:
    """Element counts in and out; the basis of the paper's metrics."""

    inserts_in: int = 0
    adjusts_in: int = 0
    stables_in: int = 0
    inserts_out: int = 0
    adjusts_out: int = 0
    stables_out: int = 0

    @property
    def elements_in(self) -> int:
        return self.inserts_in + self.adjusts_in + self.stables_in

    @property
    def elements_out(self) -> int:
        return self.inserts_out + self.adjusts_out + self.stables_out

    @property
    def chattiness(self) -> int:
        """Output-size metric of Section VI-B: adjust() elements emitted."""
        return self.adjusts_out


@dataclass
class _InputState:
    """Lifecycle bookkeeping for one attached input."""

    stream_id: StreamId
    #: Timestamp from which this input guarantees a correct TDB.
    guarantee_from: Timestamp = MINUS_INFINITY
    #: Largest stable() received from this input.
    last_stable: Timestamp = MINUS_INFINITY
    leaving: bool = False


class LMergeBase:
    """Abstract LMerge operator.

    Subclasses implement ``_insert``, ``_adjust``, and ``_stable``; the
    base class handles dispatch, statistics, input lifecycle, and output.
    """

    #: Human-readable algorithm name (set by subclasses, e.g. "LMR3+").
    algorithm = "LM?"
    #: Whether the algorithm accepts adjust() elements.
    supports_adjust = True

    def __init__(self, sink: Optional[Sink] = None, name: str = "lmerge"):
        self.name = name
        self.stats = MergeStats()
        self.output = PhysicalStream(name=f"{name}.out")
        self._sink = sink
        self._inputs: Dict[StreamId, _InputState] = {}
        self._feedback_listeners: List[FeedbackListener] = []
        #: Largest stable() emitted on the output.
        self.max_stable: Timestamp = MINUS_INFINITY

    # ------------------------------------------------------------------
    # Input lifecycle (Section V-B)
    # ------------------------------------------------------------------

    def attach(
        self, stream_id: StreamId, guarantee_from: Timestamp = MINUS_INFINITY
    ) -> None:
        """Attach an input stream.

        *guarantee_from* is the joining timestamp *t*: the stream promises
        to deliver the correct TDB for every event with ``Ve >= t``.  The
        stream is *joined* (able to sustain the output alone) once the
        output stable point reaches *t* — see :meth:`is_joined`.
        """
        if stream_id in self._inputs:
            raise InputStateError(f"stream {stream_id!r} already attached")
        self._inputs[stream_id] = _InputState(stream_id, guarantee_from)
        self._on_attach(stream_id)

    def detach(self, stream_id: StreamId) -> None:
        """Detach an input stream; its pending state is discarded.

        Safe at any time: the compatibility rules guarantee the output can
        continue from the remaining inputs (detaching the *last* input
        simply freezes progress until another attaches).
        """
        state = self._inputs.pop(stream_id, None)
        if state is None:
            raise InputStateError(f"stream {stream_id!r} is not attached")
        self._on_detach(stream_id)

    def is_attached(self, stream_id: StreamId) -> bool:
        return stream_id in self._inputs

    def is_joined(self, stream_id: StreamId) -> bool:
        """True when *stream_id* alone could sustain the output.

        Per Section V-B: the joining stream's guarantee point has been
        passed by the output stable point, so simultaneous failure of all
        other inputs is tolerable.
        """
        state = self._inputs.get(stream_id)
        if state is None:
            return False
        return self.max_stable >= state.guarantee_from

    @property
    def input_ids(self) -> Tuple[StreamId, ...]:
        return tuple(self._inputs)

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    def input_stable(self, stream_id: StreamId) -> Timestamp:
        """The largest stable() received from *stream_id*."""
        return self._inputs[stream_id].last_stable

    def guarantee_of(self, stream_id: StreamId) -> Timestamp:
        """The joining guarantee point of *stream_id* (Section V-B).

        The stream vouches for every event with ``Ve >= guarantee``;
        missing elements before it carry no information.
        """
        return self._inputs[stream_id].guarantee_from

    def leading_stream(self) -> Optional[StreamId]:
        """The input with the largest stable point (Section V-A), if any."""
        best: Optional[StreamId] = None
        best_stable = MINUS_INFINITY
        for stream_id, state in self._inputs.items():
            if state.last_stable > best_stable:
                best_stable = state.last_stable
                best = stream_id
        return best

    def _on_attach(self, stream_id: StreamId) -> None:
        """Subclass hook: initialize per-input state."""

    def _on_detach(self, stream_id: StreamId) -> None:
        """Subclass hook: drop per-input state."""

    # ------------------------------------------------------------------
    # Element processing
    # ------------------------------------------------------------------

    def process(self, element: Element, stream_id: StreamId) -> None:
        """Feed one element from one input through the merge."""
        state = self._inputs.get(stream_id)
        if state is None:
            raise InputStateError(
                f"element from unattached stream {stream_id!r}: {element}"
            )
        if isinstance(element, Insert):
            self.stats.inserts_in += 1
            self._insert(element, stream_id)
        elif isinstance(element, Adjust):
            self.stats.adjusts_in += 1
            if not self.supports_adjust:
                raise UnsupportedElementError(
                    f"{self.algorithm} does not support adjust(): {element}"
                )
            self._adjust(element, stream_id)
        elif isinstance(element, Stable):
            self.stats.stables_in += 1
            if element.vc > state.last_stable:
                state.last_stable = element.vc
            if self.is_joined(stream_id):
                self._stable(element.vc, stream_id)
            # A still-joining stream (Section V-B) may deliver data but
            # not drive the output frontier: its punctuation does not
            # vouch for history it may have missed before its guarantee
            # point.  Its stables are tracked (for leading-stream and
            # feedback purposes) but not forwarded.
        else:
            raise TypeError(f"not a stream element: {element!r}")

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        raise NotImplementedError

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        raise NotImplementedError

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Output emission
    # ------------------------------------------------------------------

    def _emit(self, element: Element) -> None:
        self.output.append(element)
        if self._sink is not None:
            self._sink(element)

    def _output_insert(self, payload: Payload, vs: Timestamp, ve: Timestamp) -> None:
        self.stats.inserts_out += 1
        self._emit(Insert(payload, vs, ve))

    def _output_adjust(
        self, payload: Payload, vs: Timestamp, v_old: Timestamp, ve: Timestamp
    ) -> None:
        self.stats.adjusts_out += 1
        self._emit(Adjust(payload, vs, v_old, ve))

    def _output_stable(self, t: Timestamp) -> None:
        self.stats.stables_out += 1
        self.max_stable = t
        self._emit(Stable(t))
        self._signal_feedback(t)

    # ------------------------------------------------------------------
    # Feedback (Section V-D)
    # ------------------------------------------------------------------

    def add_feedback_listener(self, listener: FeedbackListener) -> None:
        """Register a callback invoked as ``listener(stream_id, t)`` when
        the merge decides elements before *t* from *stream_id* are no
        longer of interest."""
        self._feedback_listeners.append(listener)

    def _signal_feedback(self, t: Timestamp) -> None:
        """Fan a "fast-forward to *t*" signal to every lagging input.

        Called after the output stable point advances to *t*: any input
        whose own stable point trails the output cannot contribute events
        before *t* to the output any more, so its upstream work before *t*
        is wasted (Section V-D).
        """
        if not self._feedback_listeners:
            return
        for stream_id, state in self._inputs.items():
            if state.last_stable < t:
                for listener in self._feedback_listeners:
                    listener(stream_id, t)

    # ------------------------------------------------------------------
    # State accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate bytes of merge state (see :mod:`repro.structures.sizing`)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Offline driver
    # ------------------------------------------------------------------

    def merge(
        self,
        streams: Iterable[PhysicalStream],
        schedule: str = "round_robin",
        seed: int = 0,
    ) -> PhysicalStream:
        """Merge complete physical streams offline and return the output.

        ``schedule`` interleaves the inputs: ``"round_robin"`` alternates
        element-by-element, ``"sequential"`` drains each stream in turn
        (the worst case for buffering), ``"random"`` interleaves by a
        seeded coin.  All inputs are attached as ids ``0..n-1``.
        """
        streams = list(streams)
        for index in range(len(streams)):
            if not self.is_attached(index):
                self.attach(index)
        for element, stream_id in interleave(streams, schedule, seed):
            self.process(element, stream_id)
        return self.output


def interleave(
    streams: List[PhysicalStream], schedule: str = "round_robin", seed: int = 0
) -> Iterable[Tuple[Element, int]]:
    """Yield ``(element, stream_id)`` pairs per the named schedule."""
    import random as _random

    if schedule == "sequential":
        for stream_id, stream in enumerate(streams):
            for element in stream:
                yield element, stream_id
        return
    positions = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    rng = _random.Random(seed)
    turn = 0
    while remaining:
        if schedule == "round_robin":
            stream_id = turn % len(streams)
            turn += 1
            if positions[stream_id] >= len(streams[stream_id]):
                continue
        elif schedule == "random":
            live = [
                i for i in range(len(streams)) if positions[i] < len(streams[i])
            ]
            stream_id = rng.choice(live)
        else:
            raise ValueError(f"unknown schedule {schedule!r}")
        element = streams[stream_id][positions[stream_id]]
        positions[stream_id] += 1
        remaining -= 1
        yield element, stream_id
