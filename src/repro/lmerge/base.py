"""Common machinery for every LMerge algorithm.

Responsibilities shared across R0-R4:

* input-stream lifecycle — dynamic attach/detach with the joining protocol
  of Section V-B (a joining stream supplies a timestamp *t* from which it
  guarantees the correct TDB; it counts as fully joined once the output
  stable point reaches *t*);
* output emission with statistics (the chattiness metric of Section VI-B
  is ``stats.adjusts_out``);
* feedback signalling hooks (Section V-D);
* the offline ``merge`` driver used by tests and benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.trace import NULL_TRACER
from repro.streams.properties import Restriction
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import (
    KIND_INSERT,
    KIND_STABLE,
    Adjust,
    Element,
    Insert,
    Stable,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.engine.columnar import ColumnBatch
    from repro.lmerge.reclaim import ReclamationPolicy
from repro.temporal.event import Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp

StreamId = Hashable
#: Callback receiving each output element as it is emitted.
Sink = Callable[[Element], None]
#: Callback receiving feedback signals ("not interested before t").
FeedbackListener = Callable[["StreamId", Timestamp], None]


class UnsupportedElementError(TypeError):
    """An element kind the configured restriction forbids (e.g. adjust
    under R0-R2)."""


class InputStateError(RuntimeError):
    """An element arrived from a stream that is not attached."""


@dataclass
class MergeStats:
    """Element counts in and out; the basis of the paper's metrics."""

    inserts_in: int = 0
    adjusts_in: int = 0
    stables_in: int = 0
    inserts_out: int = 0
    adjusts_out: int = 0
    stables_out: int = 0
    #: Worker shutdowns that had to be escalated past ``join()`` to
    #: ``terminate()``/``kill()`` (see ``ParallelRuntime.close``); 0 on a
    #: clean run.
    escalations: int = 0

    @property
    def elements_in(self) -> int:
        return self.inserts_in + self.adjusts_in + self.stables_in

    @property
    def elements_out(self) -> int:
        return self.inserts_out + self.adjusts_out + self.stables_out

    @property
    def chattiness(self) -> int:
        """Output-size metric of Section VI-B: adjust() elements emitted."""
        return self.adjusts_out

    def merge(self, other: "MergeStats") -> "MergeStats":
        """Accumulate *other* into this record (returns ``self``).

        Lets a sharded plan fold per-shard statistics into one report —
        every field is a count, so aggregation is plain addition.
        """
        self.inserts_in += other.inserts_in
        self.adjusts_in += other.adjusts_in
        self.stables_in += other.stables_in
        self.inserts_out += other.inserts_out
        self.adjusts_out += other.adjusts_out
        self.stables_out += other.stables_out
        self.escalations += other.escalations
        return self

    def __add__(self, other: "MergeStats") -> "MergeStats":
        if not isinstance(other, MergeStats):
            return NotImplemented
        return MergeStats(
            inserts_in=self.inserts_in + other.inserts_in,
            adjusts_in=self.adjusts_in + other.adjusts_in,
            stables_in=self.stables_in + other.stables_in,
            inserts_out=self.inserts_out + other.inserts_out,
            adjusts_out=self.adjusts_out + other.adjusts_out,
            stables_out=self.stables_out + other.stables_out,
            escalations=self.escalations + other.escalations,
        )

    def __radd__(self, other) -> "MergeStats":
        if other == 0:  # so sum(per_shard_stats) works
            return MergeStats().merge(self)
        return self.__add__(other)

    def as_dict(self) -> Dict[str, int]:
        """The six counts plus the derived totals, JSON-ready (the shape
        embedded in :class:`repro.obs.export.RunReport`)."""
        return {
            "inserts_in": self.inserts_in,
            "adjusts_in": self.adjusts_in,
            "stables_in": self.stables_in,
            "inserts_out": self.inserts_out,
            "adjusts_out": self.adjusts_out,
            "stables_out": self.stables_out,
            "escalations": self.escalations,
            "elements_in": self.elements_in,
            "elements_out": self.elements_out,
            "chattiness": self.chattiness,
        }

    def to_state(self) -> Dict[str, int]:
        """The raw counter fields as a plain dict (snapshot payload)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_state(cls, state: Dict[str, int]) -> "MergeStats":
        return cls(**state)


@dataclass
class _InputState:
    """Lifecycle bookkeeping for one attached input."""

    stream_id: StreamId
    #: Timestamp from which this input guarantees a correct TDB.
    guarantee_from: Timestamp = MINUS_INFINITY
    #: Largest stable() received from this input.
    last_stable: Timestamp = MINUS_INFINITY
    leaving: bool = False


class LMergeBase:
    """Abstract LMerge operator.

    Subclasses implement ``_insert``, ``_adjust``, and ``_stable``; the
    base class handles dispatch, statistics, input lifecycle, and output.
    """

    #: Human-readable algorithm name (set by subclasses, e.g. "LMR3+").
    algorithm = "LM?"
    #: The input restriction (``Restriction.R0`` … ``R4``) this algorithm
    #: assumes, set by subclasses.  ``None`` on the abstract base.
    restriction: "Optional[Restriction]" = None
    #: Whether the algorithm accepts adjust() elements.
    supports_adjust = True
    #: Observability tracer (class default: the shared no-op).  Hot paths
    #: guard on ``tracer.enabled`` once per :meth:`process` /
    #: :meth:`process_batch` call; assign a
    #: :class:`repro.obs.trace.RingTracer` (or call :meth:`set_tracer`)
    #: to record per-call spans.
    tracer = NULL_TRACER

    def __init__(
        self,
        sink: Optional[Sink] = None,
        name: str = "lmerge",
        reclamation: "Optional[ReclamationPolicy]" = None,
    ):
        self.name = name
        self.stats = MergeStats()
        #: Bounded-state opt-in (PR 8).  ``None`` keeps the seed
        #: retain-everything behaviour; R0-R2 hold O(1) state and ignore
        #: it.  See :mod:`repro.lmerge.reclaim` for the semantics traded.
        self.reclamation = reclamation
        #: Settled nodes bulk-retired by CTI-driven pruning.
        self.pruned_nodes = 0
        #: Cold-run spill (attached lazily by R3/R4 when the policy asks).
        self._spiller = None
        self.output = PhysicalStream(name=f"{name}.out")
        self._sink = sink
        self._inputs: Dict[StreamId, _InputState] = {}
        self._feedback_listeners: List[FeedbackListener] = []
        #: Operator-graph bridges feeding this merge (adapters register
        #: themselves here so the static analyzer can traverse *through*
        #: the merge and see every replica of a plan from any root).
        self.input_adapters: List[object] = []
        #: Largest stable() emitted on the output.
        self.max_stable: Timestamp = MINUS_INFINITY
        # Incrementally maintained leading-stream cache (Section V-A).
        # Updated whenever an input's stable point advances; rescanned only
        # when the current leader detaches.  Replaces the O(inputs) scan
        # that the LEADING insert policy used to pay per insert.
        self._leader: Optional[StreamId] = None
        self._leader_stable: Timestamp = MINUS_INFINITY
        # Batched dispatch: element class -> handler for a run of
        # consecutive same-class elements.  No isinstance chain on the
        # batched hot path; subclasses override the handlers to install
        # fast paths (see process_batch).
        self._batch_dispatch: Dict[type, Callable] = {
            Insert: self._insert_batch,
            Adjust: self._adjust_batch,
            Stable: self._stable_batch,
        }

    def set_tracer(self, tracer) -> "LMergeBase":
        """Install an observability tracer on this merge (chainable)."""
        self.tracer = tracer
        return self

    # ------------------------------------------------------------------
    # Input lifecycle (Section V-B)
    # ------------------------------------------------------------------

    def attach(
        self, stream_id: StreamId, guarantee_from: Timestamp = MINUS_INFINITY
    ) -> None:
        """Attach an input stream.

        *guarantee_from* is the joining timestamp *t*: the stream promises
        to deliver the correct TDB for every event with ``Ve >= t``.  The
        stream is *joined* (able to sustain the output alone) once the
        output stable point reaches *t* — see :meth:`is_joined`.
        """
        if stream_id in self._inputs:
            raise InputStateError(f"stream {stream_id!r} already attached")
        self._inputs[stream_id] = _InputState(stream_id, guarantee_from)
        self._on_attach(stream_id)

    def detach(self, stream_id: StreamId) -> None:
        """Detach an input stream; its pending state is discarded.

        Safe at any time: the compatibility rules guarantee the output can
        continue from the remaining inputs (detaching the *last* input
        simply freezes progress until another attaches).
        """
        state = self._inputs.pop(stream_id, None)
        if state is None:
            raise InputStateError(f"stream {stream_id!r} is not attached")
        if stream_id == self._leader:
            self._rescan_leader()
        self._on_detach(stream_id)

    def is_attached(self, stream_id: StreamId) -> bool:
        return stream_id in self._inputs

    def is_joined(self, stream_id: StreamId) -> bool:
        """True when *stream_id* alone could sustain the output.

        Per Section V-B: the joining stream's guarantee point has been
        passed by the output stable point, so simultaneous failure of all
        other inputs is tolerable.
        """
        state = self._inputs.get(stream_id)
        if state is None:
            return False
        return self.max_stable >= state.guarantee_from

    @property
    def input_ids(self) -> Tuple[StreamId, ...]:
        return tuple(self._inputs)

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    def input_stable(self, stream_id: StreamId) -> Timestamp:
        """The largest stable() received from *stream_id*."""
        return self._inputs[stream_id].last_stable

    def guarantee_of(self, stream_id: StreamId) -> Timestamp:
        """The joining guarantee point of *stream_id* (Section V-B).

        The stream vouches for every event with ``Ve >= guarantee``;
        missing elements before it carry no information.
        """
        return self._inputs[stream_id].guarantee_from

    def leading_stream(self) -> Optional[StreamId]:
        """The input with the largest stable point (Section V-A), if any.

        O(1): served from a cache maintained as punctuation arrives.  On a
        tie the first input to *reach* the leading stable point keeps the
        lead (equally valid under Section V-A — any maximal input may
        lead).
        """
        return self._leader

    def _note_stable(self, state: _InputState, stream_id: StreamId, vc: Timestamp) -> None:
        """Record punctuation from *stream_id*, maintaining the leader cache."""
        if vc > state.last_stable:
            state.last_stable = vc
            if vc > self._leader_stable:
                self._leader_stable = vc
                self._leader = stream_id

    def _rescan_leader(self) -> None:
        """Recompute the leader cache (only needed when the leader detaches)."""
        best: Optional[StreamId] = None
        best_stable = MINUS_INFINITY
        for stream_id, state in self._inputs.items():
            if state.last_stable > best_stable:
                best_stable = state.last_stable
                best = stream_id
        self._leader = best
        self._leader_stable = best_stable

    def _on_attach(self, stream_id: StreamId) -> None:
        """Subclass hook: initialize per-input state."""

    def _on_detach(self, stream_id: StreamId) -> None:
        """Subclass hook: drop per-input state."""

    # ------------------------------------------------------------------
    # Element processing
    # ------------------------------------------------------------------

    def process(self, element: Element, stream_id: StreamId) -> None:
        """Feed one element from one input through the merge."""
        state = self._inputs.get(stream_id)
        if state is None:
            raise InputStateError(
                f"element from unattached stream {stream_id!r}: {element}"
            )
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                "process", self.name,
                stream=str(stream_id), cls=element.__class__.__name__,
            )
        if isinstance(element, Insert):
            self.stats.inserts_in += 1
            self._insert(element, stream_id)
        elif isinstance(element, Adjust):
            self.stats.adjusts_in += 1
            if not self.supports_adjust:
                raise UnsupportedElementError(
                    f"{self.algorithm} does not support adjust(): {element}"
                )
            self._adjust(element, stream_id)
        elif isinstance(element, Stable):
            self.stats.stables_in += 1
            self._note_stable(state, stream_id, element.vc)
            if self.is_joined(stream_id):
                self._stable(element.vc, stream_id)
            # A still-joining stream (Section V-B) may deliver data but
            # not drive the output frontier: its punctuation does not
            # vouch for history it may have missed before its guarantee
            # point.  Its stables are tracked (for leading-stream and
            # feedback purposes) but not forwarded.
        else:
            raise TypeError(f"not a stream element: {element!r}")

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        raise NotImplementedError

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        raise NotImplementedError

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batched element processing
    # ------------------------------------------------------------------

    def process_batch(
        self,
        elements: Sequence[Element],
        stream_id: StreamId,
        *,
        coalesce_stables: bool = False,
    ) -> None:
        """Feed a slice of consecutive elements from one input.

        Semantically equivalent to calling :meth:`process` element by
        element, but amortizes the per-element overhead: elements are
        grouped into runs of the same class and dispatched through a
        type-keyed table (no ``isinstance`` chain), statistics are updated
        once per run, and subclasses install run-level fast paths
        (:meth:`_insert_batch` overrides in R0-R4).

        With ``coalesce_stables=True``, a run of consecutive ``stable()``
        elements triggers a *single* frontier advance to the run's maximum
        ``Vc`` (one reconciliation scan instead of one per stable).  The
        output is then logically equivalent to — but no longer
        element-for-element identical with — the per-element path: the
        intermediate punctuation is absorbed.  Leave it off where exact
        physical equality matters (it is asserted by the batch-equivalence
        property tests); turn it on for throughput.
        """
        state = self._inputs.get(stream_id)
        if state is None:
            raise InputStateError(
                f"batch from unattached stream {stream_id!r}"
            )
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            out_before = len(self.output)
        dispatch = self._batch_dispatch
        i = 0
        n = len(elements)
        while i < n:
            cls = elements[i].__class__
            j = i + 1
            while j < n and elements[j].__class__ is cls:
                j += 1
            handler = dispatch.get(cls)
            if handler is None:
                raise TypeError(f"not a stream element: {elements[i]!r}")
            handler(elements[i:j], stream_id, state, coalesce_stables)
            i = j
        if traced:
            tracer.record(
                "process_batch", self.name,
                stream=str(stream_id), n=n,
                out=len(self.output) - out_before,
                stable=self.max_stable,
            )

    def _insert_batch(
        self,
        run: Sequence[Insert],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        """Process a run of consecutive inserts; subclasses override with
        loop-hoisted fast paths."""
        self.stats.inserts_in += len(run)
        _insert = self._insert
        for element in run:
            _insert(element, stream_id)

    def _adjust_batch(
        self,
        run: Sequence[Adjust],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        """Process a run of consecutive adjusts."""
        if not self.supports_adjust:
            # Mirror the per-element path: the offending element is
            # counted, then rejected.
            self.stats.adjusts_in += 1
            raise UnsupportedElementError(
                f"{self.algorithm} does not support adjust(): {run[0]}"
            )
        self.stats.adjusts_in += len(run)
        _adjust = self._adjust
        for element in run:
            _adjust(element, stream_id)

    def _stable_batch(
        self,
        run: Sequence[Stable],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        """Process a run of consecutive stables, optionally coalesced.

        Coalescing is safe because no data element separates the run: the
        merge state reconciled at the run's maximum ``Vc`` is exactly the
        state every intermediate stable would have seen, so a single
        ``_stable`` call at the maximum freezes the same events to the
        same end times (see docs/ALGORITHMS.md, "Batched execution").
        """
        self.stats.stables_in += len(run)
        if coalesce_stables:
            vc = run[0].vc
            for element in run:
                if element.vc > vc:
                    vc = element.vc
            self._note_stable(state, stream_id, vc)
            if self.max_stable >= state.guarantee_from:
                self._stable(vc, stream_id)
            # A still-joining stream's punctuation is tracked but not
            # forwarded (same rule as the per-element path).
            return
        guarantee = state.guarantee_from
        _stable = self._stable
        for element in run:
            self._note_stable(state, stream_id, element.vc)
            if self.max_stable >= guarantee:
                _stable(element.vc, stream_id)

    # ------------------------------------------------------------------
    # Columnar element processing
    # ------------------------------------------------------------------

    def process_columns(
        self,
        batch: "ColumnBatch",
        stream_id: StreamId,
        *,
        coalesce_stables: bool = False,
    ) -> None:
        """Feed a :class:`~repro.engine.columnar.ColumnBatch` slice.

        The columnar counterpart of :meth:`process_batch`: runs of
        same-kind rows are found with C-level scans over the kind column
        and dispatched to ``_insert_columns``/``_adjust_columns``/
        ``_stable_columns``.  The default handlers materialize the run
        and delegate to the batched object path, so every variant
        accepts columns; LMR1 and LMR3+ override ``_insert_columns``
        with loop-hoisted fast paths that walk the columns directly and
        materialize only the rows they emit.  Output equivalence with
        :meth:`process_batch` over ``batch.to_elements()`` is asserted
        by the columnar property tests.

        Adaptive dispatch: a batch whose rows already exist as element
        objects (in-process ``from_elements`` envelopes on the serial
        and thread backends) goes straight to :meth:`process_batch` —
        the object fast path is cheaper when there is nothing to
        materialize.  The column walk is the win where it avoids
        building objects: wire-decoded batches on the process backend.
        """
        if batch.has_materialized_elements:
            return self.process_batch(
                batch.to_elements(),
                stream_id,
                coalesce_stables=coalesce_stables,
            )
        state = self._inputs.get(stream_id)
        if state is None:
            raise InputStateError(
                f"batch from unattached stream {stream_id!r}"
            )
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            out_before = len(self.output)
        insert_columns = self._insert_columns
        adjust_columns = self._adjust_columns
        stable_columns = self._stable_columns
        for kind, start, stop in batch.runs():
            if kind == KIND_INSERT:
                insert_columns(batch, start, stop, stream_id, state)
            elif kind == KIND_STABLE:
                stable_columns(
                    batch, start, stop, stream_id, state, coalesce_stables
                )
            else:
                adjust_columns(batch, start, stop, stream_id, state)
        if traced:
            tracer.record(
                "process_columns", self.name,
                stream=str(stream_id), n=len(batch),
                out=len(self.output) - out_before,
                stable=self.max_stable,
            )

    def _insert_columns(
        self,
        batch: "ColumnBatch",
        start: int,
        stop: int,
        stream_id: StreamId,
        state: _InputState,
    ) -> None:
        """Process an insert run from columns; the default materializes
        the run once and reuses the batched object fast path."""
        self._insert_batch(
            batch.elements_slice(start, stop), stream_id, state, False
        )

    def _adjust_columns(
        self,
        batch: "ColumnBatch",
        start: int,
        stop: int,
        stream_id: StreamId,
        state: _InputState,
    ) -> None:
        """Process an adjust run from columns (materialize + delegate)."""
        self._adjust_batch(
            batch.elements_slice(start, stop), stream_id, state, False
        )

    def _stable_columns(
        self,
        batch: "ColumnBatch",
        start: int,
        stop: int,
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        """Process a stable run directly from the Vc column.

        Fully columnar for every variant: punctuation carries no payload,
        so no element objects are needed at all.  Mirrors
        :meth:`_stable_batch` (including the coalescing rule and the
        still-joining suppression) over ``batch.vs[start:stop]``.
        """
        count = stop - start
        self.stats.stables_in += count
        vcs = batch.vs
        if coalesce_stables:
            vc = vcs[start]
            for i in range(start + 1, stop):
                if vcs[i] > vc:
                    vc = vcs[i]
            self._note_stable(state, stream_id, vc)
            if self.max_stable >= state.guarantee_from:
                self._stable(vc, stream_id)
            return
        guarantee = state.guarantee_from
        _stable = self._stable
        _note = self._note_stable
        for i in range(start, stop):
            vc = vcs[i]
            _note(state, stream_id, vc)
            if self.max_stable >= guarantee:
                _stable(vc, stream_id)

    # ------------------------------------------------------------------
    # Output emission
    # ------------------------------------------------------------------

    def _emit(self, element: Element) -> None:
        self.output.append(element)
        if self._sink is not None:
            self._sink(element)

    def _emit_batch(self, elements: Sequence[Element]) -> None:
        """Emit several elements at once (one list extend, not n appends).

        Used by the batched fast paths; callers update the output
        statistics themselves.
        """
        if not elements:
            return
        self.output.extend(elements)
        sink = self._sink
        if sink is not None:
            for element in elements:
                sink(element)

    def _output_insert(self, payload: Payload, vs: Timestamp, ve: Timestamp) -> None:
        self.stats.inserts_out += 1
        self._emit(Insert(payload, vs, ve))

    def _output_adjust(
        self, payload: Payload, vs: Timestamp, v_old: Timestamp, ve: Timestamp
    ) -> None:
        self.stats.adjusts_out += 1
        self._emit(Adjust(payload, vs, v_old, ve))

    def _output_stable(self, t: Timestamp) -> None:
        self.stats.stables_out += 1
        self.max_stable = t
        if self.tracer.enabled:
            self.tracer.record("stable_out", self.name, t=t)
        self._emit(Stable(t))
        self._signal_feedback(t)

    # ------------------------------------------------------------------
    # Feedback (Section V-D)
    # ------------------------------------------------------------------

    def add_feedback_listener(self, listener: FeedbackListener) -> None:
        """Register a callback invoked as ``listener(stream_id, t)`` when
        the merge decides elements before *t* from *stream_id* are no
        longer of interest."""
        self._feedback_listeners.append(listener)

    def _signal_feedback(self, t: Timestamp) -> None:
        """Fan a "fast-forward to *t*" signal to every lagging input.

        Called after the output stable point advances to *t*: any input
        whose own stable point trails the output cannot contribute events
        before *t* to the output any more, so its upstream work before *t*
        is wasted (Section V-D).
        """
        if not self._feedback_listeners:
            return
        for stream_id, state in self._inputs.items():
            if state.last_stable < t:
                for listener in self._feedback_listeners:
                    listener(stream_id, t)

    # ------------------------------------------------------------------
    # State accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate bytes of merge state (see :mod:`repro.structures.sizing`)."""
        raise NotImplementedError

    @property
    def index_nodes(self) -> int:
        """Resident index nodes (0 for the O(1)-state variants R0-R2)."""
        return 0

    @property
    def index_bytes(self) -> int:
        """Resident index bytes; same estimate as :meth:`memory_bytes`."""
        try:
            return self.memory_bytes()
        except NotImplementedError:  # pragma: no cover - abstract base
            return 0

    @property
    def spilled_runs(self) -> int:
        spiller = self._spiller
        return spiller.spilled_runs_total if spiller is not None else 0

    @property
    def faulted_runs(self) -> int:
        spiller = self._spiller
        return spiller.faulted_runs_total if spiller is not None else 0

    @property
    def dropped_runs(self) -> int:
        spiller = self._spiller
        return spiller.dropped_runs_total if spiller is not None else 0

    @property
    def spilled_nodes(self) -> int:
        spiller = self._spiller
        return spiller.spilled_nodes if spiller is not None else 0

    def _setup_spill(self, index) -> None:
        """Attach a :class:`~repro.structures.spill.RunSpill` per the
        reclamation policy (no-op unless ``reclamation.spill``)."""
        rec = self.reclamation
        if rec is None or not rec.spill:
            return
        from repro.structures.spill import RunSpill  # lazy: optional path

        self._spiller = RunSpill(
            run_width=rec.run_width,
            hot_runs=rec.hot_runs,
            prefix=self.name,
            directory=rec.store_dir,
        )
        index.enable_spill(self._spiller)

    # ------------------------------------------------------------------
    # Durable state (snapshot/restore; see repro.resilience)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture this merge's full operator state as plain, picklable
        data.

        The snapshot covers everything :meth:`restore_state` needs to
        resume processing mid-stream with identical behaviour: the input
        roster (guarantee/stable/leaving per input), the output frontier,
        the leader cache, the statistics, and the variant's own state via
        :meth:`_snapshot_extra` (scalars for R0-R2, full index contents
        for R3/R4).  Past output *elements* are deliberately excluded —
        replay is deterministic, so recovery re-derives them (see
        docs/RESILIENCE.md).
        """
        return {
            "algorithm": self.algorithm,
            "max_stable": self.max_stable,
            "inputs": {
                stream_id: (state.guarantee_from, state.last_stable, state.leaving)
                for stream_id, state in self._inputs.items()
            },
            "leader": self._leader,
            "leader_stable": self._leader_stable,
            "stats": self.stats.to_state(),
            "extra": self._snapshot_extra(),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Restore the state captured by :meth:`snapshot_state`.

        Must be called on a freshly constructed instance of the *same*
        variant (same constructor arguments); raises ``ValueError`` on an
        algorithm mismatch.
        """
        if snapshot["algorithm"] != self.algorithm:
            raise ValueError(
                f"snapshot is from {snapshot['algorithm']!r}, "
                f"cannot restore into {self.algorithm!r}"
            )
        self._inputs.clear()
        for stream_id, (guarantee, last_stable, leaving) in snapshot[
            "inputs"
        ].items():
            self._inputs[stream_id] = _InputState(
                stream_id, guarantee, last_stable, leaving
            )
            # Give the variant its per-input state (R1 counters); the
            # snapshot's extra payload overwrites the values below.
            self._on_attach(stream_id)
        self.max_stable = snapshot["max_stable"]
        self._leader = snapshot["leader"]
        self._leader_stable = snapshot["leader_stable"]
        self.stats = MergeStats.from_state(snapshot["stats"])
        self._restore_extra(snapshot["extra"])

    def _snapshot_extra(self) -> dict:
        """Subclass hook: the variant's own state, as picklable data."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Subclass hook: restore what :meth:`_snapshot_extra` captured."""

    # ------------------------------------------------------------------
    # Offline driver
    # ------------------------------------------------------------------

    def merge(
        self,
        streams: Iterable[PhysicalStream],
        schedule: str = "round_robin",
        seed: int = 0,
    ) -> PhysicalStream:
        """Merge complete physical streams offline and return the output.

        ``schedule`` interleaves the inputs: ``"round_robin"`` alternates
        element-by-element, ``"sequential"`` drains each stream in turn
        (the worst case for buffering), ``"random"`` interleaves by a
        seeded coin.  All inputs are attached as ids ``0..n-1``.
        """
        streams = list(streams)
        for index in range(len(streams)):
            if not self.is_attached(index):
                self.attach(index)
        for element, stream_id in interleave(streams, schedule, seed):
            self.process(element, stream_id)
        return self.output

    def merge_batched(
        self,
        streams: Iterable[PhysicalStream],
        schedule: str = "round_robin",
        seed: int = 0,
        batch_size: int = 64,
        coalesce_stables: bool = False,
    ) -> PhysicalStream:
        """Batched counterpart of :meth:`merge`.

        Feeds the same interleaving as :meth:`merge` (chunked into runs of
        up to *batch_size* consecutive elements per stream) through
        :meth:`process_batch`.  With ``coalesce_stables=False`` the output
        is element-for-element identical to :meth:`merge`.
        """
        streams = list(streams)
        for index in range(len(streams)):
            if not self.is_attached(index):
                self.attach(index)
        for chunk, stream_id in interleave_batches(
            streams, schedule, seed, batch_size
        ):
            self.process_batch(
                chunk, stream_id, coalesce_stables=coalesce_stables
            )
        return self.output


def interleave(
    streams: List[PhysicalStream], schedule: str = "round_robin", seed: int = 0
) -> Iterable[Tuple[Element, int]]:
    """Yield ``(element, stream_id)`` pairs per the named schedule."""
    if schedule == "sequential":
        for stream_id, stream in enumerate(streams):
            for element in stream:
                yield element, stream_id
        return
    lengths = [len(s) for s in streams]
    positions = [0] * len(streams)
    remaining = sum(lengths)
    rng = random.Random(seed)
    turn = 0
    while remaining:
        if schedule == "round_robin":
            stream_id = turn % len(streams)
            turn += 1
            if positions[stream_id] >= lengths[stream_id]:
                continue
        elif schedule == "random":
            live = [i for i in range(len(streams)) if positions[i] < lengths[i]]
            stream_id = rng.choice(live)
        else:
            raise ValueError(f"unknown schedule {schedule!r}")
        element = streams[stream_id][positions[stream_id]]
        positions[stream_id] += 1
        remaining -= 1
        yield element, stream_id


def interleave_batches(
    streams: List[PhysicalStream],
    schedule: str = "round_robin",
    seed: int = 0,
    batch_size: int = 64,
) -> Iterable[Tuple[List[Element], int]]:
    """Yield ``(elements, stream_id)`` chunks per the named schedule.

    Flattening the chunks reproduces exactly the per-element order of
    :func:`interleave` with the same schedule and seed *for the
    "sequential" schedule*; for "round_robin" and "random" the chunks are
    a coarser-grained interleaving (each turn hands over up to
    *batch_size* consecutive elements instead of one), which is itself a
    valid interleaving of the same inputs — the order within each stream
    is preserved.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    materialized = [list(s) for s in streams]
    if schedule == "sequential":
        for stream_id, elements in enumerate(materialized):
            for start in range(0, len(elements), batch_size):
                yield elements[start : start + batch_size], stream_id
        return
    lengths = [len(elements) for elements in materialized]
    positions = [0] * len(materialized)
    remaining = sum(lengths)
    rng = random.Random(seed)
    turn = 0
    while remaining:
        if schedule == "round_robin":
            stream_id = turn % len(materialized)
            turn += 1
            if positions[stream_id] >= lengths[stream_id]:
                continue
        elif schedule == "random":
            live = [
                i for i in range(len(materialized)) if positions[i] < lengths[i]
            ]
            stream_id = rng.choice(live)
        else:
            raise ValueError(f"unknown schedule {schedule!r}")
        start = positions[stream_id]
        chunk = materialized[stream_id][start : start + batch_size]
        positions[stream_id] = start + len(chunk)
        remaining -= len(chunk)
        yield chunk, stream_id
