"""LMerge for case R3 (Algorithm R3) — the paper's LMR3+.

Inputs may contain inserts, adjusts, and stables in any order (subject only
to stable() semantics); ``(Vs, payload)`` is a key of any prefix TDB.  State
is the two-tier in2t index: a red-black tree over live ``(Vs, payload)``
keys, each node holding the shared event payload and a per-stream hash of
current Ve values (plus the output's Ve under the OUTPUT sentinel).

The default policy matches the printed algorithm: emit the first insert
seen for a key immediately (location 2), never forward incoming adjusts,
and reconcile the output only when a stable() would otherwise freeze a
divergence (location 1) — which is what bounds chattiness (Theorem 1).
Alternative policies from Section V-A are selectable via
:class:`~repro.lmerge.policies.OutputPolicy`.

Complexities (Table IV): insert/adjust O(lg w); stable O(c lg w + h);
space O(w (p + s)).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lmerge.base import LMergeBase, StreamId, _InputState
from repro.streams.properties import Restriction
from repro.lmerge.policies import (
    DEFAULT_POLICY,
    AdjustPropagation,
    InsertPropagation,
    OutputPolicy,
)
from repro.structures.in2t import In2T, In2TNode, OUTPUT
from repro.temporal.elements import Adjust, Insert
from repro.temporal.time import INFINITY, Timestamp


class LMergeR3(LMergeBase):
    """General merge over the shared two-tier index (LMR3+)."""

    algorithm = "LMR3+"
    restriction = Restriction.R3
    supports_adjust = True

    def __init__(self, policy: OutputPolicy = DEFAULT_POLICY, **kwargs):
        super().__init__(**kwargs)
        self.policy = policy
        self._index = In2T()
        #: Inserts dropped because their key was already frozen out
        #: (the cheap path that speeds up merging lagging streams, Fig. 5).
        self.dropped_frozen = 0
        #: Nodes visited by stable() reconciliation scans (the per-stable
        #: cost that grows with punctuation frequency, Fig. 6).  With
        #: reclamation enabled, resolved spilled runs are not scanned and
        #: do not count here.
        self.stable_scan_nodes = 0
        self._setup_spill(self._index)

    # ------------------------------------------------------------------
    # Insert (Algorithm R3, lines 3-10)
    # ------------------------------------------------------------------

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        node = self._index.find(element.vs, element.payload)
        if node is None:
            if element.vs < self.max_stable:
                # The key was frozen and its node retired; this input is
                # merely behind (Section V-C: already output, or dropped).
                self.dropped_frozen += 1
                return
            node = self._index.add(element.to_event())
            node.add_entry(stream_id, element.ve)
            if self._emit_now(node, stream_id):
                self._place_on_output(node, element.ve)
        else:
            node.add_entry(stream_id, element.ve)
            if node.get_entry(OUTPUT) is None and self._emit_now(node, stream_id):
                self._place_on_output(node, element.ve)

    def _emit_now(self, node: In2TNode, stream_id: StreamId) -> bool:
        """Location-2 policy: should this key be placed on the output?"""
        insert_policy = self.policy.insert
        if insert_policy is InsertPropagation.FIRST:
            return True
        if insert_policy is InsertPropagation.LEADING:
            return stream_id == self.leading_stream()
        if insert_policy is InsertPropagation.HALF_FROZEN:
            return False  # emitted when a stable() half-freezes the key
        # QUORUM: count distinct inputs that have produced the key.
        produced = sum(1 for key in node.entries if key is not OUTPUT)
        return produced >= self.policy.quorum_needed(self.num_inputs)

    def _place_on_output(self, node: In2TNode, ve: Timestamp) -> None:
        self._output_insert(node.payload, node.vs, ve)
        node.add_entry(OUTPUT, ve)

    def _insert_batch(
        self,
        run: Sequence[Insert],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        # Fast path over the per-element _insert: a single tree descent
        # per element (find_or_add) instead of find + add, the default
        # FIRST policy short-circuited out of the loop, hash entries
        # written directly, and survivors emitted in one extend.  Frozen
        # keys (Vs < MaxStable) must not be materialized, so they take
        # the find-only branch.  An emitted input element is value-equal
        # to the Insert _place_on_output would build.
        self.stats.inserts_in += len(run)
        index = self._index
        find = index.find
        find_or_add = index.find_or_add
        max_stable = self.max_stable
        emit_first = self.policy.insert is InsertPropagation.FIRST
        emit_now = self._emit_now
        output_key = OUTPUT
        dropped = 0
        out: List[Insert] = []
        emit = out.append
        for element in run:
            vs = element.vs
            if vs < max_stable:
                node = find(vs, element.payload)
                if node is None:
                    dropped += 1
                    continue
            else:
                node, _ = find_or_add(element)
            ve = element.ve
            entries = node.entries
            entries[stream_id] = ve
            if output_key not in entries and (
                emit_first or emit_now(node, stream_id)
            ):
                emit(element)
                entries[output_key] = ve
        if dropped:
            self.dropped_frozen += dropped
        if out:
            self.stats.inserts_out += len(out)
            self._emit_batch(out)

    def _insert_columns(
        self,
        batch,
        start: int,
        stop: int,
        stream_id: StreamId,
        state: _InputState,
    ) -> None:
        # Columnar fast path: the single-descent discipline of
        # _insert_batch applied straight to the Vs/Ve columns and the
        # payload list — no Insert object exists for a row unless it is
        # emitted, and emission materializes survivors through the
        # batch's boundary converter in one pass.
        self.stats.inserts_in += stop - start
        index = self._index
        find = index.find
        find_or_add_key = index.find_or_add_key
        max_stable = self.max_stable
        emit_first = self.policy.insert is InsertPropagation.FIRST
        emit_now = self._emit_now
        output_key = OUTPUT
        vs_col = batch.vs
        ve_col = batch.ve
        payloads = batch.payloads
        dropped = 0
        emit_rows: List[int] = []
        keep = emit_rows.append
        for i in range(start, stop):
            vs = vs_col[i]
            payload = payloads[i]
            if vs < max_stable:
                node = find(vs, payload)
                if node is None:
                    dropped += 1
                    continue
            else:
                node = find_or_add_key(vs, payload, ve_col[i])
            ve = ve_col[i]
            entries = node.entries
            entries[stream_id] = ve
            if output_key not in entries and (
                emit_first or emit_now(node, stream_id)
            ):
                keep(i)
                entries[output_key] = ve
        if dropped:
            self.dropped_frozen += dropped
        if emit_rows:
            self.stats.inserts_out += len(emit_rows)
            element_at = batch.element_at
            self._emit_batch([element_at(i) for i in emit_rows])

    # ------------------------------------------------------------------
    # Adjust (lines 11-14, plus the EAGER alternative of Section V-A)
    # ------------------------------------------------------------------

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        node = self._index.find(element.vs, element.payload)
        if node is None:
            return
        node.update_entry(stream_id, element.ve)
        if self.policy.adjust is AdjustPropagation.EAGER:
            self._forward_adjust(node, element.ve)

    def _forward_adjust(self, node: In2TNode, ve: Timestamp) -> None:
        """EAGER location-1 policy: reflect the revision immediately.

        Cancels (``ve == vs``) and revisions that would contradict the
        output's own stable contract stay lazy; the stable() handler
        reconciles them safely.
        """
        out_ve = node.get_entry(OUTPUT)
        if out_ve is None or out_ve == ve:
            return
        if ve <= node.vs or ve < self.max_stable or out_ve < self.max_stable:
            return
        self._output_adjust(node.payload, node.vs, out_ve, ve)
        node.update_entry(OUTPUT, ve)

    # ------------------------------------------------------------------
    # Stable (lines 15-29)
    # ------------------------------------------------------------------

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        if self.policy.stable_lag and t != INFINITY:
            # Hold the output's promise back: events inside the lag
            # window stay reconcilable for free (Section V-A's closing
            # observation), at the cost of freshness and node retention.
            t = t - self.policy.stable_lag
        if t <= self.max_stable:
            return
        spiller = self._spiller
        if spiller is not None:
            # Covered, fully-frozen spilled runs die in the store without
            # faulting in; anything the summary cannot vouch for is
            # re-materialized so the walk below sees the exact seed state.
            self.pruned_nodes += spiller.resolve_stable(
                self._index, t, stream_id
            )
        rec = self.reclamation
        prune_settled = rec is not None and rec.prune_settled
        prune_bound = t - rec.settle_lag if prune_settled else t
        scanned = 0
        pruned = 0
        #: run id -> [min settle-Ve, max settle-Ve, covered streams], or
        #: None once a non-agreed node poisons the run.
        candidates = {} if spiller is not None else None
        out_key = OUTPUT
        inputs = self._inputs
        reconcile = self._reconcile

        def visit(node: In2TNode) -> bool:
            nonlocal scanned, pruned
            scanned += 1
            if not reconcile(node, t, stream_id):
                # Fully frozen on the freezing stream: output now matches
                # it forever; retire the node (lines 26-27).
                return False
            if not prune_settled and candidates is None:
                return True
            # Half-frozen survivor: is it *output-agreed* (every present
            # per-stream Ve equals the output's)?
            entries = node.entries
            out_ve = entries.get(out_key)
            agreed = out_ve is not None
            if agreed:
                for key, ve in entries.items():
                    if key is not out_key and ve != out_ve:
                        agreed = False
                        break
            if agreed and prune_settled and node.vs < prune_bound:
                # *Settled* additionally requires that a stream with no
                # entry could never cancel the key: its silence must be
                # covered by its joining guarantee.
                settled = True
                for sid, st in inputs.items():
                    if sid not in entries and not (out_ve < st.guarantee_from):
                        settled = False
                        break
                if settled:
                    pruned += 1
                    return False
            if candidates is not None:
                run = spiller.run_of(node.vs)
                if run is not None and spiller.run_bounds(run)[1] <= t:
                    if not agreed:
                        candidates[run] = None
                    else:
                        meta = candidates.get(run, False)
                        if meta is False:
                            candidates[run] = [
                                out_ve,
                                out_ve,
                                {k for k in entries if k is not out_key},
                            ]
                        elif meta is not None:
                            if out_ve < meta[0]:
                                meta[0] = out_ve
                            if out_ve > meta[1]:
                                meta[1] = out_ve
                            meta[2].intersection_update(
                                k for k in entries if k is not out_key
                            )
            return True

        self._index.prune_below(t, visit)
        self.stable_scan_nodes += scanned
        self.pruned_nodes += pruned
        self._output_stable(t)
        if candidates:
            spiller.evict(self._index, candidates)

    def _reconcile(
        self, node: In2TNode, t: Timestamp, stream_id: StreamId
    ) -> bool:
        """Bring the output into line with input *stream_id* for *node*.

        Three compatibility violations are repaired (Section IV-D): the
        input lacks an event the output carries; the output event would
        fully freeze at a different Ve than the input's; the input event
        fully freezes while the output's diverges.

        Returns False when the node is fully frozen on the freezing
        stream and must be retired (the caller unlinks it).
        """
        out_ve = node.get_entry(OUTPUT)
        in_ve: Optional[Timestamp] = node.get_entry(stream_id)
        if in_ve is None:
            current = out_ve if out_ve is not None else node.vs
            if current < self.guarantee_of(stream_id):
                # A late joiner vouches only for events with Ve >= its
                # guarantee point; silence about older history carries no
                # information — keep following the output's value.
                in_ve = current
            else:
                # Line 20: the freezing stream never produced this key, so
                # the key's event must not survive (Ve down to Vs cancels).
                in_ve = node.vs
        if out_ve is None:
            # A withholding policy (HALF_FROZEN / QUORUM / LEADING) kept
            # the key off the output; it must appear before the stable()
            # if the freezing stream carries it.
            if in_ve > node.vs:
                self._place_on_output(node, in_ve)
        elif in_ve != out_ve and (in_ve < t or out_ve < t):
            self._output_adjust(node.payload, node.vs, out_ve, in_ve)
            node.update_entry(OUTPUT, in_ve)
        return not (in_ve < t)

    # ------------------------------------------------------------------
    # Lifecycle & accounting
    # ------------------------------------------------------------------

    # Section V-B: a leaving stream is simply marked as left (the base
    # class stops routing its elements); its second-tier entries are
    # never consulted again — reconciliation reads only the *freezing*
    # stream's entry — and retire with their nodes.  Eager purging would
    # erase the history a pause-resume replica already delivered.

    def memory_bytes(self) -> int:
        return 16 + self._index.memory_bytes()

    def _snapshot_extra(self) -> dict:
        return {
            "index": self._index.snapshot(),
            "dropped_frozen": self.dropped_frozen,
            "stable_scan_nodes": self.stable_scan_nodes,
            "pruned_nodes": self.pruned_nodes,
        }

    def _restore_extra(self, extra: dict) -> None:
        self._index.restore(extra["index"])
        self.dropped_frozen = extra["dropped_frozen"]
        self.stable_scan_nodes = extra["stable_scan_nodes"]
        self.pruned_nodes = extra.get("pruned_nodes", 0)

    @property
    def live_keys(self) -> int:
        """Number of ``(Vs, payload)`` keys currently indexed (w in Table
        IV), spilled runs included."""
        return self._index.live_nodes

    @property
    def index_nodes(self) -> int:
        """Resident index nodes (the bounded-state gauge of PR 8)."""
        return len(self._index)
