"""Partition-parallel LMerge: ``shard()`` wraps any variant in an N-shard
hash-partitioned plan.

The plan is the exchange sandwich::

    inputs --HashPartition--> N x LMerge(variant) --ShardUnion--> output
              (by payload key,      (one worker         (data in arrival
               stables broadcast)    per shard)          order; CTI = min
                                                         shard frontier)

Why this is lossless: every LMerge decision — duplicate elimination,
adjust reconciliation, freeze-out — is made per ``(Vs, payload)`` key
from that key's own state plus the stable frontier.  Routing by a payload
key sends every element of a key to the same shard, and broadcasting
``stable()`` advances every shard's frontier exactly as the unsharded
merge's, so the per-key output is identical; the union of disjoint
per-key outputs reconstitutes the same TDB.  The combined punctuation is
the pointwise minimum of the shard frontiers — the output may only
promise what every shard has promised (see docs/ALGORITHMS.md,
"Partitioned execution").

:class:`ShardedLMerge` mirrors the :class:`~repro.lmerge.base.LMergeBase`
driving surface (``attach``/``process``/``process_batch``/``merge``/
``merge_batched``/``output``/``stats``) so benches and tests can swap it
in for a plain variant; call :meth:`ShardedLMerge.close` (or use the
offline drivers, which close for you) to join the workers and fold the
per-shard statistics.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.engine.columnar import ColumnBatch
from repro.engine.operator import CollectorSink
from repro.engine.parallel import ENVELOPES, ParallelRuntime, merge_factory
from repro.lmerge.base import (
    InputStateError,
    LMergeBase,
    MergeStats,
    StreamId,
    interleave_batches,
)
from repro.operators.exchange import (
    KeyFunction,
    ShardUnion,
    identity_key,
    partition_batch,
    partition_columns,
)
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Element
from repro.temporal.time import MINUS_INFINITY, Timestamp


class ShardedLMerge:
    """An N-shard partitioned LMerge plan with the LMergeBase surface."""

    def __init__(
        self,
        merge_cls: Type[LMergeBase],
        num_shards: int,
        backend: str = "thread",
        key_fn: Optional[KeyFunction] = None,
        queue_capacity: int = 64,
        coalesce_stables: bool = False,
        name: str = "sharded-lmerge",
        registry=None,
        envelope: str = "columnar",
        supervised: bool = False,
        durable_dir: Optional[str] = None,
        fault_plan=None,
        supervisor_options: Optional[dict] = None,
        telemetry_interval: float = 0.0,
        tracer=None,
        **merge_kwargs,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if envelope not in ENVELOPES:
            raise ValueError(
                f"unknown envelope {envelope!r}; expected {ENVELOPES}"
            )
        if supervised:
            if backend != "process" or envelope != "columnar":
                raise ValueError(
                    "supervised plans require backend='process' and "
                    "envelope='columnar' (the shm exchange carries the "
                    "sequencing and heartbeat frames)"
                )
            if durable_dir is None:
                raise ValueError(
                    "supervised plans need durable_dir for their "
                    "per-shard state stores"
                )
        self.merge_cls = merge_cls
        self.algorithm = f"{merge_cls.algorithm}x{num_shards}[{backend}]"
        self.restriction = merge_cls.restriction
        self.input_adapters: List[object] = []
        self.num_shards = num_shards
        self.backend = backend
        #: Exchange currency: ``"columnar"`` ships ColumnBatch slices end
        #: to end (shared-memory rings on the process backend);
        #: ``"object"`` is the PR3-era element-list path.
        self.envelope = envelope
        self.key_fn: KeyFunction = key_fn or identity_key
        self.name = name
        #: Optional :class:`repro.obs.registry.MetricRegistry`: threads
        #: through the worker runtime (queue depths), the union (frontier
        #: gauges), and a :class:`repro.obs.lmerge_obs.ShardObserver`
        #: sampled on every collect.
        self.registry = registry
        #: Seconds between worker TELEM emissions (0 = live telemetry
        #: off).  Only the shm exchange (process + columnar) streams;
        #: other backends already share the driver registry.
        self.telemetry_interval = telemetry_interval
        self.tracer = tracer
        self._union = ShardUnion(
            num_shards, name=f"{name}.union", registry=registry
        )
        sink = CollectorSink(name=f"{name}.out")
        self._union.subscribe(sink)
        self.output = sink.stream
        if supervised:
            from repro.resilience.supervisor import SupervisedRuntime

            self._runtime = SupervisedRuntime(
                merge_factory(merge_cls, **merge_kwargs),
                num_shards,
                durable_dir=durable_dir,
                fault_plan=fault_plan,
                queue_capacity=queue_capacity,
                coalesce_stables=coalesce_stables,
                registry=registry,
                telemetry_interval=telemetry_interval,
                tracer=tracer,
                **(supervisor_options or {}),
            ).start()
        else:
            self._runtime = ParallelRuntime(
                merge_factory(merge_cls, **merge_kwargs),
                num_shards,
                backend=backend,
                queue_capacity=queue_capacity,
                coalesce_stables=coalesce_stables,
                registry=registry,
                envelope=envelope,
                telemetry_interval=telemetry_interval,
                tracer=tracer,
            ).start()
        self._observer = None
        if registry is not None:
            from repro.obs.lmerge_obs import ShardObserver

            self._observer = ShardObserver(self, registry)
            # Live sampling: every merged TELEM frame re-reads the
            # emitting shard's queue depth and frontier while the
            # exchange is actually loaded (satellite fix for the
            # collect-time-only gauges).
            self._runtime.on_telemetry = self._observer.sample_shard
        self._attached: List[StreamId] = []
        self._closed = False
        self._stats: Optional[MergeStats] = None
        self._shard_stats: List[MergeStats] = []

    # ------------------------------------------------------------------
    # Input lifecycle (broadcast: every shard sees every input's slice)
    # ------------------------------------------------------------------

    def attach(
        self, stream_id: StreamId, guarantee_from: Timestamp = MINUS_INFINITY
    ) -> None:
        if stream_id in self._attached:
            raise InputStateError(f"stream {stream_id!r} already attached")
        self._attached.append(stream_id)
        self._runtime.broadcast_attach(stream_id, guarantee_from)

    def detach(self, stream_id: StreamId) -> None:
        if stream_id not in self._attached:
            raise InputStateError(f"stream {stream_id!r} is not attached")
        self._attached.remove(stream_id)
        self._runtime.broadcast_detach(stream_id)

    def is_attached(self, stream_id: StreamId) -> bool:
        return stream_id in self._attached

    @property
    def input_ids(self) -> Tuple[StreamId, ...]:
        return tuple(self._attached)

    # ------------------------------------------------------------------
    # Element flow
    # ------------------------------------------------------------------

    def process(self, element: Element, stream_id: StreamId) -> None:
        self.process_batch((element,), stream_id)

    def process_batch(
        self,
        elements: Sequence[Element],
        stream_id: StreamId,
        *,
        coalesce_stables: bool = False,
    ) -> None:
        """Partition one micro-batch across the shards and collect any
        shard output that is ready.

        ``coalesce_stables`` is fixed per plan (a worker-side setting);
        the keyword is accepted for LMergeBase interface compatibility.
        """
        del coalesce_stables  # per-plan, set in __init__
        if stream_id not in self._attached:
            raise InputStateError(f"batch from unattached stream {stream_id!r}")
        runtime = self._runtime
        if self.envelope == "columnar":
            batch = (
                elements
                if isinstance(elements, ColumnBatch)
                else ColumnBatch.from_elements(list(elements))
            )
            buckets = partition_columns(batch, self.num_shards, self.key_fn)
        else:
            buckets = partition_batch(elements, self.num_shards, self.key_fn)
        for shard, bucket in enumerate(buckets):
            if bucket:
                runtime.submit(shard, stream_id, bucket)
        self._collect()

    def process_columns(
        self,
        batch: ColumnBatch,
        stream_id: StreamId,
        *,
        coalesce_stables: bool = False,
    ) -> None:
        """Columnar entry point mirroring ``LMergeBase.process_columns``."""
        self.process_batch(batch, stream_id, coalesce_stables=coalesce_stables)

    def _collect(self) -> None:
        union = self._union
        for shard, outputs in self._runtime.poll():
            if isinstance(outputs, ColumnBatch):
                union.receive_columns(outputs, shard)
            else:
                union.receive_batch(outputs, shard)
        if self._observer is not None:
            self._observer.sample()

    def queue_depths(self) -> List[Optional[int]]:
        """Per-shard input-queue depths (see
        :meth:`~repro.engine.parallel.ParallelRuntime.queue_depths`)."""
        return self._runtime.queue_depths()

    @property
    def runtime(self) -> ParallelRuntime:
        """The worker runtime driving the shards (a
        :class:`~repro.resilience.supervisor.SupervisedRuntime` when the
        plan was built with ``supervised=True`` — its ``recoveries`` and
        ``restarts`` tell you what the supervisor had to do)."""
        return self._runtime

    def close(self) -> MergeStats:
        """Drain the workers, fold per-shard statistics, and return the
        aggregate.  Idempotent; the offline drivers call it for you."""
        if not self._closed:
            self._shard_stats = list(self._runtime.close())
            self._collect()
            self._closed = True
            self._stats = MergeStats()
            for stats in self._shard_stats:
                self._stats.merge(stats)
            if self._observer is not None:
                self._observer.record_stats()
        assert self._stats is not None
        return self._stats

    # ------------------------------------------------------------------
    # Statistics & frontiers
    # ------------------------------------------------------------------

    @property
    def stats(self) -> MergeStats:
        """The aggregate MergeStats across shards (closes the plan).

        Sums the per-shard records, so ``stables_in`` counts each
        broadcast ``stable()`` once per shard; data counts are exact (the
        partition is disjoint).
        """
        if self._stats is None:
            return self.close()
        return self._stats

    @property
    def shard_stats(self) -> List[MergeStats]:
        """Per-shard MergeStats, index = shard (closes the plan)."""
        self.close()
        return self._shard_stats

    @property
    def max_stable(self) -> Timestamp:
        """The combined output frontier: min over shard frontiers."""
        return self._union.emitted_stable

    @property
    def shard_frontiers(self) -> Tuple[Timestamp, ...]:
        return self._union.frontiers

    # ------------------------------------------------------------------
    # Offline drivers (mirror LMergeBase.merge / merge_batched)
    # ------------------------------------------------------------------

    def merge(
        self,
        streams: Iterable[PhysicalStream],
        schedule: str = "round_robin",
        seed: int = 0,
        batch_size: int = 64,
    ) -> PhysicalStream:
        """Merge complete physical streams offline and return the output.

        Unlike the unsharded driver, elements always travel in micro-batch
        envelopes (*batch_size* per scheduling turn): per-element IPC
        would drown the process backend in round trips.
        """
        return self.merge_batched(streams, schedule, seed, batch_size)

    def merge_batched(
        self,
        streams: Iterable[PhysicalStream],
        schedule: str = "round_robin",
        seed: int = 0,
        batch_size: int = 64,
        coalesce_stables: bool = False,
    ) -> PhysicalStream:
        del coalesce_stables  # per-plan, set in __init__
        streams = list(streams)
        for index in range(len(streams)):
            if not self.is_attached(index):
                self.attach(index)
        for chunk, stream_id in interleave_batches(
            streams, schedule, seed, batch_size
        ):
            self.process_batch(chunk, stream_id)
        self.close()
        return self.output

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ShardedLMerge {self.algorithm} {self.name!r}>"


def shard(
    variant: Union[Type[LMergeBase], object],
    num_shards: int,
    *,
    backend: str = "thread",
    key_fn: Optional[KeyFunction] = None,
    queue_capacity: int = 64,
    coalesce_stables: bool = False,
    registry=None,
    envelope: str = "columnar",
    supervised: bool = False,
    durable_dir: Optional[str] = None,
    fault_plan=None,
    supervisor_options: Optional[dict] = None,
    telemetry_interval: float = 0.0,
    tracer=None,
    **merge_kwargs,
) -> ShardedLMerge:
    """Wrap an LMerge variant in an N-shard partition-parallel plan.

    *variant* is an :class:`LMergeBase` subclass (``LMergeR3``), a
    :class:`~repro.streams.properties.Restriction`, a
    :class:`~repro.streams.properties.StreamProperties`, or an iterable of
    per-input properties — the latter three resolve through the Section
    IV-G selector, so ``shard(properties, 4)`` picks the cheapest correct
    algorithm and parallelizes it.

    >>> plan = shard(LMergeR3, 4, backend="process")
    >>> out = plan.merge([replica_a, replica_b])
    >>> plan.stats.elements_out      # aggregate across the 4 shards
    """
    if not (isinstance(variant, type) and issubclass(variant, LMergeBase)):
        from repro.lmerge.selector import algorithm_for

        variant = algorithm_for(variant)
    return ShardedLMerge(
        variant,
        num_shards,
        backend=backend,
        key_fn=key_fn,
        queue_capacity=queue_capacity,
        coalesce_stables=coalesce_stables,
        registry=registry,
        envelope=envelope,
        supervised=supervised,
        durable_dir=durable_dir,
        fault_plan=fault_plan,
        supervisor_options=supervisor_options,
        telemetry_interval=telemetry_interval,
        tracer=tracer,
        **merge_kwargs,
    )
