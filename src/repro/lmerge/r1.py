"""LMerge for case R1 (Algorithm R1).

Insert-only inputs with non-decreasing Vs; elements sharing a Vs appear in
the *same deterministic order* on every input (e.g. rank order out of a
Top-k aggregate).  Beyond MaxVs/MaxStable, one counter per input tracks how
many elements each input has delivered at the current MaxVs; an input's
element is new exactly when its counter ties the maximum.

O(s) time per insert (s = number of inputs), O(s) space.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lmerge.base import LMergeBase, StreamId, _InputState
from repro.streams.properties import Restriction
from repro.structures.sizing import HASH_ENTRY_OVERHEAD
from repro.temporal.elements import Adjust, Insert
from repro.temporal.time import MINUS_INFINITY, Timestamp


class LMergeR1(LMergeBase):
    """Counter-per-input merge for deterministic same-Vs order."""

    algorithm = "LMR1"
    restriction = Restriction.R1
    supports_adjust = False

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._max_vs: Timestamp = MINUS_INFINITY
        self._same_vs_count: Dict[StreamId, int] = {}

    def _on_attach(self, stream_id: StreamId) -> None:
        # A newly attached input has produced nothing at the current MaxVs.
        self._same_vs_count[stream_id] = 0

    def _on_detach(self, stream_id: StreamId) -> None:
        self._same_vs_count.pop(stream_id, None)

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        # Algorithm R1, lines 4-10.
        if element.vs < self._max_vs:
            return
        if element.vs > self._max_vs:
            for key in self._same_vs_count:
                self._same_vs_count[key] = 0
            self._max_vs = element.vs
        count = self._same_vs_count[stream_id]
        if count == max(self._same_vs_count.values()):
            self._output_insert(element.payload, element.vs, element.ve)
        self._same_vs_count[stream_id] = count + 1

    def _insert_batch(
        self,
        run: Sequence[Insert],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        # Fast path: within a sub-run sharing one Vs only *this* stream's
        # counter moves, so the other streams' maximum is computed once
        # per Vs instead of max(values()) per insert.  An element is new
        # iff our counter has caught the others (count == overall max).
        self.stats.inserts_in += len(run)
        counts = self._same_vs_count
        max_vs = self._max_vs
        out: List[Insert] = []
        i = 0
        n = len(run)
        while i < n:
            element = run[i]
            vs = element.vs
            if vs < max_vs:
                i += 1
                continue
            if vs > max_vs:
                for key in counts:
                    counts[key] = 0
                max_vs = vs
            own = counts[stream_id]
            others_max = max(
                (c for key, c in counts.items() if key != stream_id),
                default=0,
            )
            while i < n and run[i].vs == vs:
                if own >= others_max:
                    out.append(run[i])
                own += 1
                i += 1
            counts[stream_id] = own
        self._max_vs = max_vs
        if out:
            self.stats.inserts_out += len(out)
            self._emit_batch(out)

    def _insert_columns(
        self,
        batch,
        start: int,
        stop: int,
        stream_id: StreamId,
        state: _InputState,
    ) -> None:
        # Columnar fast path: one descent over the Vs column per sorted
        # sub-run — the counters move exactly as in _insert_batch, but no
        # element object is touched until a row survives for emission
        # (survivors come out of the batch in one boundary conversion).
        self.stats.inserts_in += stop - start
        counts = self._same_vs_count
        max_vs = self._max_vs
        vs_col = batch.vs
        emit_rows: List[int] = []
        keep = emit_rows.append
        i = start
        while i < stop:
            vs = vs_col[i]
            if vs < max_vs:
                i += 1
                continue
            if vs > max_vs:
                for key in counts:
                    counts[key] = 0
                max_vs = vs
            own = counts[stream_id]
            others_max = max(
                (c for key, c in counts.items() if key != stream_id),
                default=0,
            )
            while i < stop and vs_col[i] == vs:
                if own >= others_max:
                    keep(i)
                own += 1
                i += 1
            counts[stream_id] = own
        self._max_vs = max_vs
        if emit_rows:
            self.stats.inserts_out += len(emit_rows)
            element_at = batch.element_at
            self._emit_batch([element_at(i) for i in emit_rows])

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        raise AssertionError("unreachable: supports_adjust is False")

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        if t > self.max_stable:
            self._output_stable(t)

    def memory_bytes(self) -> int:
        return 16 + len(self._same_vs_count) * HASH_ENTRY_OVERHEAD

    def _snapshot_extra(self) -> dict:
        return {"max_vs": self._max_vs, "counts": dict(self._same_vs_count)}

    def _restore_extra(self, extra: dict) -> None:
        self._max_vs = extra["max_vs"]
        self._same_vs_count = dict(extra["counts"])
