"""LMerge for case R1 (Algorithm R1).

Insert-only inputs with non-decreasing Vs; elements sharing a Vs appear in
the *same deterministic order* on every input (e.g. rank order out of a
Top-k aggregate).  Beyond MaxVs/MaxStable, one counter per input tracks how
many elements each input has delivered at the current MaxVs; an input's
element is new exactly when its counter ties the maximum.

O(s) time per insert (s = number of inputs), O(s) space.
"""

from __future__ import annotations

from typing import Dict

from repro.lmerge.base import LMergeBase, StreamId
from repro.structures.sizing import HASH_ENTRY_OVERHEAD
from repro.temporal.elements import Adjust, Insert
from repro.temporal.time import MINUS_INFINITY, Timestamp


class LMergeR1(LMergeBase):
    """Counter-per-input merge for deterministic same-Vs order."""

    algorithm = "LMR1"
    supports_adjust = False

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._max_vs: Timestamp = MINUS_INFINITY
        self._same_vs_count: Dict[StreamId, int] = {}

    def _on_attach(self, stream_id: StreamId) -> None:
        # A newly attached input has produced nothing at the current MaxVs.
        self._same_vs_count[stream_id] = 0

    def _on_detach(self, stream_id: StreamId) -> None:
        self._same_vs_count.pop(stream_id, None)

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        # Algorithm R1, lines 4-10.
        if element.vs < self._max_vs:
            return
        if element.vs > self._max_vs:
            for key in self._same_vs_count:
                self._same_vs_count[key] = 0
            self._max_vs = element.vs
        count = self._same_vs_count[stream_id]
        if count == max(self._same_vs_count.values()):
            self._output_insert(element.payload, element.vs, element.ve)
        self._same_vs_count[stream_id] = count + 1

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        raise AssertionError("unreachable: supports_adjust is False")

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        if t > self.max_stable:
            self._output_stable(t)

    def memory_bytes(self) -> int:
        return 16 + len(self._same_vs_count) * HASH_ENTRY_OVERHEAD
