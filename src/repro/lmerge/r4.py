"""LMerge for the unrestricted case R4 (Algorithm R4) — the paper's LMR4.

No constraints at all: all element kinds, arbitrary order (modulo stable()
semantics), and a *multiset* TDB — many events may share ``(Vs, payload)``
with different Ve values, and exact duplicates are allowed.  State is the
three-tier in3t index: per ``(Vs, payload)`` node, a per-stream ordered
multiset of ``Ve -> count``.

The stable() handler maintains the paper's two invariants before
propagating punctuation:

* when a key first becomes half frozen, the output holds exactly as many
  events for it as the freezing input (``AdjustOutputCount``);
* for every Ve the stable() fully freezes, the output holds exactly as
  many events at that ``(Vs, payload, Ve)`` as the freezing input
  (``AdjustOutput``), achieved by retiming previously output events.

Complexities (Table IV): insert/adjust O(lg w + lg d); stable
O(c lg w + h*d); space O(w (p + s*d)).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.lmerge.base import LMergeBase, StreamId, _InputState
from repro.streams.properties import Restriction
from repro.structures.in2t import OUTPUT
from repro.structures.in3t import In3T, In3TNode
from repro.temporal.elements import Adjust, Insert
from repro.temporal.tdb import StreamViolationError
from repro.temporal.time import Timestamp


class LMergeR4(LMergeBase):
    """Fully general merge over the three-tier index (LMR4)."""

    algorithm = "LMR4"
    restriction = Restriction.R4
    supports_adjust = True

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._index = In3T()
        #: Inserts dropped because their key was already frozen out
        #: (the cheap path that speeds up merging lagging streams, Fig. 5).
        self.dropped_frozen = 0
        #: Nodes visited by stable() reconciliation scans (Fig. 6).  With
        #: reclamation enabled, resolved spilled runs are not scanned and
        #: do not count here.
        self.stable_scan_nodes = 0
        self._setup_spill(self._index)

    # ------------------------------------------------------------------
    # Insert (Algorithm R4, lines 3-11)
    # ------------------------------------------------------------------

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        node = self._index.find(element.vs, element.payload)
        if node is None:
            if element.vs < self.max_stable:
                self.dropped_frozen += 1
                return
            node = self._index.add(element.vs, element.payload)
        node.increment(stream_id, element.ve)
        if element.vs >= self.max_stable and (
            node.total_count(stream_id) > node.total_count(OUTPUT)
        ):
            # This input now holds more events for the key than we have
            # output — the new event is not a duplicate of anything the
            # output already carries.
            self._output_insert(element.payload, element.vs, element.ve)
            node.increment(OUTPUT, element.ve)

    def _insert_batch(
        self,
        run: Sequence[Insert],
        stream_id: StreamId,
        state: _InputState,
        coalesce_stables: bool,
    ) -> None:
        # Fast path: one tree descent per element (find_or_add instead of
        # find + add) and one bulk emit.  Keys behind MaxStable must not
        # be materialized, so they take the find-only branch — and can
        # never reach the output (the Vs >= MaxStable guard of line 8).
        self.stats.inserts_in += len(run)
        index = self._index
        find_or_add = index.find_or_add
        max_stable = self.max_stable
        out: List[Insert] = []
        for element in run:
            vs = element.vs
            ve = element.ve
            if vs < max_stable:
                node = index.find(vs, element.payload)
                if node is None:
                    self.dropped_frozen += 1
                    continue
                node.increment(stream_id, ve)
                continue
            node = find_or_add(element)
            node.increment(stream_id, ve)
            if node.total_count(stream_id) > node.total_count(OUTPUT):
                out.append(element)
                node.increment(OUTPUT, ve)
        if out:
            self.stats.inserts_out += len(out)
            self._emit_batch(out)

    # ------------------------------------------------------------------
    # Adjust (lines 12-15)
    # ------------------------------------------------------------------

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        node = self._index.find(element.vs, element.payload)
        if node is None:
            return
        try:
            node.decrement(stream_id, element.v_old)
        except KeyError:
            # The adjusted version was never tracked for this input (e.g.
            # a late joiner revising history it replayed before attach, or
            # state already retired); the revision is irrelevant here.
            return
        if not element.is_cancel:
            node.increment(stream_id, element.ve)

    # ------------------------------------------------------------------
    # Stable (lines 16-30)
    # ------------------------------------------------------------------

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        if t <= self.max_stable:
            return
        spiller = self._spiller
        if spiller is not None:
            # Covered, fully-frozen spilled runs die in the store without
            # faulting in; anything the summary cannot vouch for is
            # re-materialized so the walk below sees the exact seed state.
            self.pruned_nodes += spiller.resolve_stable(
                self._index, t, stream_id
            )
        guarantee = self.guarantee_of(stream_id)
        rec = self.reclamation
        prune_settled = rec is not None and rec.prune_settled
        prune_bound = t - rec.settle_lag if prune_settled else t
        # max_stable is only advanced by _output_stable at the end, so the
        # transition test below reads the same value the seed loop would.
        max_stable_before = self.max_stable
        scanned = 0
        pruned = 0
        #: run id -> [min settle-Ve, max settle-Ve, covered streams], or
        #: None once a non-agreed node poisons the run.
        candidates = {} if spiller is not None else None
        inputs = self._inputs

        def visit(node: In3TNode) -> bool:
            nonlocal scanned, pruned
            scanned += 1
            if (
                node.total_count(stream_id) == 0
                and node.max_ve(OUTPUT) < guarantee
            ):
                # A late joiner is silent about history entirely before
                # its guarantee point; other inputs will freeze this key.
                pass
            else:
                if node.vs >= max_stable_before:
                    # The key is transitioning unfrozen -> half frozen now:
                    # pin the output's event *count* to the freezing input's.
                    self._adjust_output_count(node, stream_id)
                self._adjust_output(node, t, stream_id)
                if node.max_ve(stream_id) < t:
                    # Every version on the freezing input is now fully
                    # frozen and mirrored on the output; retire the key.
                    return False
            if not prune_settled and candidates is None:
                return True
            agreement = self._agreement(node)
            agreed = agreement is not None
            if agreed and prune_settled and node.vs < prune_bound:
                out_pairs, covered_here = agreement
                max_out = out_pairs[-1][0]
                settled = True
                for sid, st in inputs.items():
                    if sid not in covered_here and not (
                        max_out < st.guarantee_from
                    ):
                        settled = False
                        break
                if settled:
                    pruned += 1
                    return False
            if candidates is not None:
                run = spiller.run_of(node.vs)
                if run is not None and spiller.run_bounds(run)[1] <= t:
                    if not agreed:
                        candidates[run] = None
                    else:
                        out_pairs, covered_here = agreement
                        min_out = out_pairs[0][0]
                        max_out = out_pairs[-1][0]
                        meta = candidates.get(run, False)
                        if meta is False:
                            candidates[run] = [
                                min_out, max_out, set(covered_here)
                            ]
                        elif meta is not None:
                            if min_out < meta[0]:
                                meta[0] = min_out
                            if max_out > meta[1]:
                                meta[1] = max_out
                            meta[2].intersection_update(covered_here)
            return True

        self._index.prune_below(t, visit)
        self.stable_scan_nodes += scanned
        self.pruned_nodes += pruned
        self._output_stable(t)
        if candidates:
            spiller.evict(self._index, candidates)

    def _agreement(self, node: In3TNode):
        """``(out_pairs, covered_streams)`` when every nonempty per-stream
        multiset equals the output's, else None.

        Such a node is *output-agreed*: a stable() from a covered stream
        reconciles to a no-op (all versions unfrozen) or a silent delete
        (all versions frozen) — the basis of both settled pruning and the
        spill's per-run summary.
        """
        out_tier = node.counts.get(OUTPUT)
        if out_tier is None or not out_tier:
            return None
        out_pairs = list(out_tier.items())
        covered = []
        for sid, tier in node.counts.items():
            if sid is OUTPUT or not tier:
                continue
            if len(tier) != len(out_tier) or list(tier.items()) != out_pairs:
                return None
            covered.append(sid)
        return out_pairs, covered

    # ------------------------------------------------------------------
    # AdjustOutputCount: equalize totals at the half-freeze transition
    # ------------------------------------------------------------------

    def _adjust_output_count(self, node: In3TNode, stream_id: StreamId) -> None:
        out_total = node.total_count(OUTPUT)
        in_total = node.total_count(stream_id)
        if out_total > in_total:
            self._cancel_surplus(node, stream_id, out_total - in_total)
        elif in_total > out_total:
            self._emit_missing(node, stream_id, in_total - out_total)

    def _cancel_surplus(
        self, node: In3TNode, stream_id: StreamId, surplus: int
    ) -> None:
        """Delete output events until counts match, preferring Ve values
        the freezing input lacks (they would need retiming anyway)."""
        candidates = sorted(
            node.ve_counts(OUTPUT),
            key=lambda item: node.count_of(stream_id, item[0]),
        )
        for ve, available in candidates:
            while surplus and available:
                self._output_adjust(node.payload, node.vs, ve, node.vs)
                node.decrement(OUTPUT, ve)
                available -= 1
                surplus -= 1
            if not surplus:
                return

    def _emit_missing(
        self, node: In3TNode, stream_id: StreamId, missing: int
    ) -> None:
        """Output new inserts with Ve values seen on the freezing input."""
        for ve, in_count in node.ve_counts(stream_id):
            while missing and node.count_of(OUTPUT, ve) < in_count:
                self._output_insert(node.payload, node.vs, ve)
                node.increment(OUTPUT, ve)
                missing -= 1
            if not missing:
                return
        if missing:
            raise StreamViolationError(
                f"cannot source {missing} events for "
                f"({node.vs}, {node.payload!r}) from stream {stream_id!r}"
            )

    # ------------------------------------------------------------------
    # AdjustOutput: mirror the freezing input's fully frozen versions
    # ------------------------------------------------------------------

    def _adjust_output(
        self, node: In3TNode, t: Timestamp, stream_id: StreamId
    ) -> None:
        in_counts: Dict[Timestamp, int] = dict(node.ve_counts(stream_id))
        out_counts: Dict[Timestamp, int] = dict(node.ve_counts(OUTPUT))
        # When the freezing input holds no version surviving past t the
        # whole key dies with this stable(): every output version, frozen
        # or not, must be reconciled away.
        dying = node.max_ve(stream_id) < t

        def constrained(ve: Timestamp) -> bool:
            return ve < t or dying

        deficits: List[List] = []
        surpluses: List[List] = []
        for ve in sorted(set(in_counts) | set(out_counts)):
            if not constrained(ve):
                continue
            need = in_counts.get(ve, 0) if ve < t else 0
            have = out_counts.get(ve, 0)
            if have < need:
                deficits.append([ve, need - have])
            elif have > need:
                surpluses.append([ve, have - need])
        if not deficits and not surpluses:
            return
        # Donor pool: surplus versions in the constrained region first,
        # then output versions in the free region (ve >= t, node alive).
        pool: List[List] = [
            [ve, out_counts[ve]]
            for ve in sorted(out_counts)
            if not constrained(ve)
        ]
        donors = surpluses + pool
        for ve, needed in deficits:
            while needed:
                donor = self._next_donor(donors)
                if donor is None:
                    raise StreamViolationError(
                        f"no donor version for ({node.vs}, {node.payload!r}) "
                        f"at Ve={ve}: inputs are not mutually consistent"
                    )
                self._retime(node, donor[0], ve)
                donor[1] -= 1
                needed -= 1
        # Remaining surpluses must vacate the frozen region: park them on
        # an input-supported future version, or cancel when none exists.
        future_ve = self._future_version(in_counts, t)
        for ve, extra in surpluses:
            while extra:
                if future_ve is not None:
                    self._retime(node, ve, future_ve)
                else:
                    self._output_adjust(node.payload, node.vs, ve, node.vs)
                    node.decrement(OUTPUT, ve)
                extra -= 1

    @staticmethod
    def _next_donor(donors: List[List]) -> Optional[List]:
        for donor in donors:
            if donor[1] > 0:
                return donor
        return None

    def _retime(self, node: In3TNode, old_ve: Timestamp, new_ve: Timestamp) -> None:
        self._output_adjust(node.payload, node.vs, old_ve, new_ve)
        node.decrement(OUTPUT, old_ve)
        node.increment(OUTPUT, new_ve)

    @staticmethod
    def _future_version(
        in_counts: Dict[Timestamp, int], t: Timestamp
    ) -> Optional[Timestamp]:
        future = [ve for ve in in_counts if ve >= t]
        return min(future) if future else None

    # ------------------------------------------------------------------
    # Lifecycle & accounting
    # ------------------------------------------------------------------

    # Section V-B: per-stream counts of a left stream are never consulted
    # again and retire with their nodes (see the R3 note).

    def memory_bytes(self) -> int:
        return 16 + self._index.memory_bytes()

    def _snapshot_extra(self) -> dict:
        return {
            "index": self._index.snapshot(),
            "dropped_frozen": self.dropped_frozen,
            "stable_scan_nodes": self.stable_scan_nodes,
            "pruned_nodes": self.pruned_nodes,
        }

    def _restore_extra(self, extra: dict) -> None:
        self._index.restore(extra["index"])
        self.dropped_frozen = extra["dropped_frozen"]
        self.stable_scan_nodes = extra["stable_scan_nodes"]
        self.pruned_nodes = extra.get("pruned_nodes", 0)

    @property
    def live_keys(self) -> int:
        """Indexed ``(Vs, payload)`` keys, spilled runs included."""
        return self._index.live_nodes

    @property
    def index_nodes(self) -> int:
        """Resident index nodes (the bounded-state gauge of PR 8)."""
        return len(self._index)
