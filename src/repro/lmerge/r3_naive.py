"""The naive R3 variant (LMR3- of Section VI-A).

Functionally equivalent to :class:`~repro.lmerge.r3.LMergeR3` on R3 inputs,
but structured the "obvious" way: one index *per input stream* plus one
index for output events.  The output index is required (1) to check
whether an element was previously output and (2) to perform adjustments to
prior output before propagating a stable().

This duplicates event payloads across input streams — memory grows
linearly with the number of inputs — and requires multiple tree lookups
per element at runtime.  The paper uses it as the strawman that motivates
in2t's payload sharing (Figures 2, 3, 7); it is kept verbatim here for the
same comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lmerge.base import LMergeBase, StreamId
from repro.structures.in2t import _KeyFloor
from repro.structures.rbtree import RedBlackTree
from repro.structures.sizing import (
    TIMESTAMP_BYTES,
    TREE_NODE_OVERHEAD,
    PayloadKey,
    payload_bytes,
)
from repro.temporal.elements import Adjust, Insert
from repro.temporal.event import Payload
from repro.temporal.time import Timestamp

_KEY_FLOOR = _KeyFloor()


class LMergeR3Naive(LMergeBase):
    """Per-input-index merge (LMR3-): simple, memory-hungry."""

    algorithm = "LMR3-"
    supports_adjust = True

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        # One tree per input: (Vs, payload) -> (payload copy, Ve).  The
        # payload is stored in the value on purpose — modelling the lack
        # of sharing that in2t was designed to fix.
        self._input_trees: Dict[StreamId, RedBlackTree] = {}
        self._output_tree = RedBlackTree()
        self.dropped_frozen = 0

    @staticmethod
    def _key(vs: Timestamp, payload: Payload) -> tuple:
        return (vs, PayloadKey(payload))

    def _on_attach(self, stream_id: StreamId) -> None:
        # A pause-resume replica re-attaching under the same id keeps the
        # history it already delivered (Section V-B's lazy leave).
        self._input_trees.setdefault(stream_id, RedBlackTree())

    # ------------------------------------------------------------------

    def _insert(self, element: Insert, stream_id: StreamId) -> None:
        key = self._key(element.vs, element.payload)
        in_output = self._output_tree.get(key) is not None
        if not in_output and element.vs < self.max_stable:
            # The key was frozen and retired; this input is merely behind.
            self.dropped_frozen += 1
            return
        self._input_trees[stream_id].insert(key, (element.payload, element.ve))
        if not in_output:
            self._output_tree.insert(key, (element.payload, element.ve))
            self._output_insert(element.payload, element.vs, element.ve)

    def _adjust(self, element: Adjust, stream_id: StreamId) -> None:
        key = self._key(element.vs, element.payload)
        tree = self._input_trees[stream_id]
        if tree.get(key) is not None:
            tree.insert(key, (element.payload, element.ve))

    def _stable(self, t: Timestamp, stream_id: StreamId) -> None:
        if t <= self.max_stable:
            return
        bound = (t, _KEY_FLOOR)
        freezing_tree = self._input_trees[stream_id]
        for key, (payload, out_ve) in list(self._output_tree.items_below(bound)):
            vs = key[0]
            entry: Optional[Tuple[Payload, Timestamp]] = freezing_tree.get(key)
            if entry is not None:
                in_ve = entry[1]
            elif out_ve < self.guarantee_of(stream_id):
                in_ve = out_ve  # late joiner: silent about old history
            else:
                in_ve = vs  # authoritative absence: cancel the event
            if in_ve != out_ve and (in_ve < t or out_ve < t):
                self._output_adjust(payload, vs, out_ve, in_ve)
                self._output_tree.insert(key, (payload, in_ve))
            if in_ve < t:
                # Fully frozen: retire the key from the output index and
                # from every per-input copy — the duplicated bookkeeping
                # (one delete per input tree) that in2t's shared nodes
                # avoid.  A lagging input's entry may still be *adjusted*
                # later, but the frozen output no longer cares.
                self._output_tree.delete(key)
                for tree in self._input_trees.values():
                    tree.delete(key)
        self._output_stable(t)

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        total = 16
        for tree in self._input_trees.values():
            for _, (payload, _ve) in tree.items():
                total += (
                    TREE_NODE_OVERHEAD + payload_bytes(payload) + 2 * TIMESTAMP_BYTES
                )
        for _, (payload, _ve) in self._output_tree.items():
            total += TREE_NODE_OVERHEAD + payload_bytes(payload) + 2 * TIMESTAMP_BYTES
        return total

    @property
    def live_keys(self) -> int:
        return len(self._output_tree)
