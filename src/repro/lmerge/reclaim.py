"""Reclamation policy for bounded merge state (PR 8).

The seed R3/R4 merges retain every *half-frozen* node — ``Vs < MaxStable
<= Ve`` — forever, because a legal input may still adjust such an event's
Ve.  On revision-free workloads (``Ve = +inf`` everywhere, the common
"point event" case) that is the entire stream: state grows O(stream
length) even when the inputs are element-identical replicas.

:class:`ReclamationPolicy` opts a merge into CTI-driven pruning: when the
stable point advances, the contiguous prefix of index nodes on which every
attached input already *agrees with the output* (each per-stream Ve entry
equals the OUTPUT entry) is bulk-deleted in one amortized tree walk
(:meth:`~repro.structures.in2t.In2T.prune_below`).  Such *settled* nodes
carry no information the output does not: re-inserts of their key are
frozen (below stable) and therefore dropped on both the seed and the
reclaiming path.

This is a **semantic relaxation**, which is why it is opt-in
(``reclamation=None`` keeps seed behaviour bit-for-bit): a physically
legal input may adjust an event *after* all replicas agreed on it, and a
merge that pruned the node can no longer detect the disagreement (under
the default LAZY adjust policy the divergence only surfaces at a later
``stable()``).  ``settle_lag`` trades memory for that window — nodes are
pruned only below ``MaxStable - settle_lag``, so any adjust arriving
within the lag behaves exactly as on the seed.

``spill=True`` additionally evicts cold *unsettled* runs (delivered by
the leader, not yet confirmed by a laggard) to the durable
:class:`~repro.resilience.store.StateStore` — see
:mod:`repro.structures.spill`.  Spilling is transparent: touched runs
fault back in, and snapshots stay element-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.temporal.time import Timestamp


@dataclass(frozen=True)
class ReclamationPolicy:
    """Opt-in bounded-state configuration for R3/R4 merges.

    Picklable (plain frozen dataclass) so it crosses the process-backend
    boundary of :func:`repro.lmerge.shard.shard` unchanged.
    """

    #: Prune settled (all-inputs-agree-with-output) nodes below stable.
    prune_settled: bool = True
    #: Hold pruning back to ``MaxStable - settle_lag``: adjusts arriving
    #: within the lag window behave exactly as on the seed path.
    settle_lag: Timestamp = 0
    #: Evict cold, output-agreed runs to the durable state store.
    spill: bool = False
    #: Width (in Vs units) of one spill run bucket.
    run_width: Timestamp = 1024
    #: Most-recently-touched candidate runs kept resident.
    hot_runs: int = 4
    #: Directory for the spill store; None uses a private tempdir.
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.settle_lag < 0:
            raise ValueError(f"settle_lag must be >= 0, got {self.settle_lag}")
        if self.run_width <= 0:
            raise ValueError(f"run_width must be > 0, got {self.run_width}")
        if self.hot_runs < 0:
            raise ValueError(f"hot_runs must be >= 0, got {self.hot_runs}")
