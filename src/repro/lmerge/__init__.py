"""The Logical Merge (LMerge) operator family.

LMerge consumes multiple *logically consistent* physical streams and emits
one physical stream compatible with all of them — a duplicate-eliminating
union over physically divergent, fallible inputs (Sections III-V).

The family, by input restriction (Section III-C / IV):

======  ==========================  ===========================================
Case    Class                       State
======  ==========================  ===========================================
R0      :class:`LMergeR0`           MaxVs + MaxStable only
R1      :class:`LMergeR1`           + one counter per input
R2      :class:`LMergeR2`           + hash of payloads at the current MaxVs
R3      :class:`LMergeR3`           in2t two-tier index (LMR3+ of Section VI)
R3-     :class:`LMergeR3Naive`      per-input indexes, no payload sharing
R4      :class:`LMergeR4`           in3t three-tier index
======  ==========================  ===========================================

:func:`create_lmerge` picks the cheapest algorithm admitted by a
:class:`~repro.streams.properties.StreamProperties` (Section IV-G);
:func:`shard` wraps any variant in an N-shard hash-partitioned plan on a
serial, thread, or process backend (``create_lmerge(..., shards=N)``).
"""

from repro.lmerge.base import LMergeBase, MergeStats
from repro.lmerge.policies import (
    AdjustPropagation,
    InsertPropagation,
    OutputPolicy,
)
from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r2 import LMergeR2
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r3_naive import LMergeR3Naive
from repro.lmerge.r4 import LMergeR4
from repro.lmerge.reclaim import ReclamationPolicy
from repro.lmerge.selector import algorithm_for, create_lmerge
from repro.lmerge.feedback import FeedbackSignal, FeedbackPolicy
from repro.lmerge.counting import CountingMerge
from repro.lmerge.shard import ShardedLMerge, shard

__all__ = [
    "LMergeBase",
    "MergeStats",
    "OutputPolicy",
    "AdjustPropagation",
    "InsertPropagation",
    "LMergeR0",
    "LMergeR1",
    "LMergeR2",
    "LMergeR3",
    "LMergeR3Naive",
    "LMergeR4",
    "ReclamationPolicy",
    "algorithm_for",
    "create_lmerge",
    "FeedbackSignal",
    "FeedbackPolicy",
    "CountingMerge",
    "ShardedLMerge",
    "shard",
]
