"""Query graphs and compile-time property inference.

A :class:`Query` is a fluent wrapper over an operator DAG ending at one
output operator.  ``query.properties()`` runs the Section IV-G inference —
each operator transforms its inputs' guarantees — and
``query.merge_with(...)`` builds the LMerge that Section IV-G's selector
picks for a set of replica queries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.operator import CollectorSink, Operator
from repro.lmerge.base import LMergeBase
from repro.lmerge.selector import create_lmerge
from repro.operators.source import StreamSource
from repro.streams.properties import Restriction, StreamProperties, classify
from repro.streams.stream import PhysicalStream


def infer_properties(operator: Operator) -> StreamProperties:
    """Walk the plan upstream-first and derive output properties."""
    input_properties = [infer_properties(up) for up in operator.upstreams]
    return operator.derive_properties(input_properties)


class Query:
    """A single-output operator pipeline.

    >>> q = Query.from_stream(stream).then(Filter(lambda p: p[0] > 10))
    >>> out = q.run()                      # offline execution
    >>> q.properties()                     # inferred guarantees
    """

    def __init__(self, head: Operator, tail: Optional[Operator] = None):
        self.head = head
        self.tail = tail or head

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_stream(
        stream: PhysicalStream,
        properties: Optional[StreamProperties] = None,
        name: str = "source",
    ) -> "Query":
        return Query(StreamSource(stream, properties=properties, name=name))

    def then(self, operator: Operator) -> "Query":
        """Append *operator* to the pipeline (returns a new Query view)."""
        self.tail.subscribe(operator)
        return Query(self.head, operator)

    @staticmethod
    def combine(queries: Sequence["Query"], operator: Operator) -> "Query":
        """Feed several queries into a multi-input *operator* (ports in
        order)."""
        for port, query in enumerate(queries):
            query.tail.subscribe(operator, port=port)
        heads = [query.head for query in queries]
        combined = Query(heads[0], operator)
        combined._extra_heads = heads[1:]  # type: ignore[attr-defined]
        return combined

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def properties(self) -> StreamProperties:
        """Compile-time output properties of the pipeline."""
        return infer_properties(self.tail)

    def restriction(self) -> Restriction:
        """The LMerge restriction class the output satisfies."""
        return classify(self.properties())

    def property_map(self) -> "dict":
        """Per-operator inferred properties over the whole reachable graph
        (fixpoint dataflow; see :mod:`repro.analysis.propflow`)."""
        from repro.analysis.propflow import analyze_graph

        return analyze_graph(self.tail).properties

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _sources(self) -> List[StreamSource]:
        sources: List[StreamSource] = []
        seen = set()
        stack: List[Operator] = [self.tail]
        while stack:
            operator = stack.pop()
            if id(operator) in seen:
                continue
            seen.add(id(operator))
            if isinstance(operator, StreamSource):
                sources.append(operator)
            stack.extend(operator.upstreams)
        sources.reverse()
        return sources

    def run(self, interleave: bool = True, chunk: int = 64) -> PhysicalStream:
        """Execute offline and return the output stream.

        With several sources, ``interleave=True`` plays them in *chunk*-
        element slices round-robin (modelling concurrent arrival);
        otherwise each source drains in turn.
        """
        sink = CollectorSink()
        self.tail.subscribe(sink)
        try:
            self.play(interleave=interleave, chunk=chunk)
        finally:
            # Leave the graph reusable: drop the temporary sink.
            self.tail.unsubscribe(sink)
        return sink.stream

    def play(self, interleave: bool = True, chunk: int = 64) -> None:
        """Drive all sources to exhaustion (results flow to subscribers)."""
        sources = self._sources()
        if not sources:
            raise ValueError("query has no StreamSource to drive")
        if not interleave or len(sources) == 1:
            for source in sources:
                source.play()
            return
        while any(not source.exhausted for source in sources):
            for source in sources:
                source.play(limit=chunk)

    # ------------------------------------------------------------------
    # LMerge integration
    # ------------------------------------------------------------------

    @staticmethod
    def merge_with(
        replicas: Sequence["Query"],
        policy=None,
        feedback: bool = False,
        force: Optional[Restriction] = None,
        **lmerge_kwargs,
    ) -> LMergeBase:
        """Create the cheapest LMerge valid for all *replicas* (attached
        as stream ids ``0..n-1``); wire each replica's output into it.

        ``feedback=True`` additionally wires fast-forward signalling
        (Section V-D) from the merge back into each replica plan: lagging
        replicas then *skip* work the output no longer needs.  Leave it
        off to reproduce plain LMerge behaviour.

        ``force=Restriction.Rn`` overrides selection with an explicit
        variant.  Nothing validates the override here — that is the
        analyzer's job (``repro.analysis.propflow.check_plan`` errors when
        a forced variant is unsound for the inferred input properties).
        """
        if force is not None:
            lmerge = create_lmerge(
                Restriction(force), policy=policy, **lmerge_kwargs
            )
        else:
            properties = [query.properties() for query in replicas]
            lmerge = create_lmerge(properties, policy=policy, **lmerge_kwargs)
        for stream_id, query in enumerate(replicas):
            lmerge.attach(stream_id)
            query.tail.subscribe(_LMergeAdapter(lmerge, stream_id, feedback))
        return lmerge


def play_together(queries: Sequence["Query"], chunk: int = 64) -> None:
    """Drive several queries' sources round-robin in *chunk*-element
    slices, modelling replicas executing concurrently."""
    sources: List[StreamSource] = []
    for query in queries:
        sources.extend(query._sources())
    while any(not source.exhausted for source in sources):
        for source in sources:
            source.play(limit=chunk)


class _LMergeAdapter(Operator):
    """Bridges an operator output port into ``lmerge.process(e, id)``."""

    kind = "lmerge-adapter"

    def __init__(self, lmerge: LMergeBase, stream_id, feedback: bool = False) -> None:
        super().__init__(f"lmerge-in[{stream_id}]")
        self.lmerge = lmerge
        self.stream_id = stream_id
        adapters = getattr(lmerge, "input_adapters", None)
        if adapters is not None:
            adapters.append(self)
        if feedback:
            # Feedback raised by the merge flows back through this
            # adapter's upstreams via propagate_feedback.
            lmerge.add_feedback_listener(self._on_merge_feedback)

    def receive(self, element, port: int = 0) -> None:
        self.elements_in += 1
        self.lmerge.process(element, self.stream_id)

    def receive_batch(self, elements, port: int = 0) -> None:
        self.elements_in += len(elements)
        self.lmerge.process_batch(elements, self.stream_id)

    def _on_merge_feedback(self, stream_id, horizon) -> None:
        if stream_id == self.stream_id:
            from repro.lmerge.feedback import FeedbackSignal

            self.propagate_feedback(FeedbackSignal(horizon))
