"""Discrete-event simulation of stream transport and plan execution.

The paper's timing experiments run on real machines with real network
congestion, CPU contention, and scheduling noise.  This module simulates
the same *arrival-time processes* so the figures' shapes can be
regenerated deterministically:

* :class:`Simulation` — a simple discrete-event clock;
* delay models — :class:`FixedLag` (Figure 5), :class:`BurstyDelay`
  (Figure 8: rare truncated-normal stalls), :class:`CongestionWindows`
  (Figure 9: per-stream congestion periods);
* :class:`SimulatedChannel` — a FIFO link applying a delay model;
* :class:`SimulatedPlan` — a single-server queue with per-element service
  cost, modelling a query plan's CPU (Figure 10's UDF plans), with
  fast-forward support.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.lmerge.feedback import FeedbackSignal
from repro.temporal.elements import Adjust, Element, Insert
from repro.temporal.time import Timestamp


class Simulation:
    """A minimal discrete-event executor.

    Events are ``(time, callback)`` pairs; :meth:`run` drains them in time
    order.  Ties break by scheduling order, so runs are deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._sequence), action))

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        self.schedule_at(self.now + delay, action)

    def run(self, until: Optional[float] = None) -> int:
        """Execute events until the queue drains (or *until*); returns the
        number of events processed."""
        processed = 0
        while self._queue:
            time, _, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            action()
            processed += 1
        if until is not None and self.now < until:
            self.now = until
        self._processed += processed
        return processed


class DelayModel:
    """Per-element transmission delay (seconds of simulated time)."""

    def delay(self, element: Element, now: float, rng: random.Random) -> float:
        raise NotImplementedError


class NoDelay(DelayModel):
    """Ideal link."""

    def delay(self, element: Element, now: float, rng: random.Random) -> float:
        return 0.0


@dataclass
class FixedLag(DelayModel):
    """Every element arrives exactly *lag* seconds late (Figure 5)."""

    lag: float

    def delay(self, element: Element, now: float, rng: random.Random) -> float:
        return self.lag


@dataclass
class BurstyDelay(DelayModel):
    """Rare stalls: with probability *probability*, a truncated-normal
    delay (paper: mean 20, std 5, prob 0.3-0.5%) — Figure 8.

    Because the channel is FIFO, one stalled element holds everything
    behind it, producing the queue build-up and compensating throughput
    spike the paper describes.
    """

    probability: float = 0.004
    mean: float = 20.0
    std: float = 5.0

    def delay(self, element: Element, now: float, rng: random.Random) -> float:
        if rng.random() >= self.probability:
            return 0.0
        return max(0.0, rng.normalvariate(self.mean, self.std))


@dataclass
class CongestionWindows(DelayModel):
    """Per-element delays inside configured congestion periods (Figure 9).

    *windows* is a list of ``(start, end)`` intervals in simulated send
    time; elements sent inside a window get a normal delay.
    """

    windows: Sequence[Tuple[float, float]]
    mean: float = 5.0
    std: float = 1.0

    def delay(self, element: Element, now: float, rng: random.Random) -> float:
        for start, end in self.windows:
            if start <= now < end:
                return max(0.0, rng.normalvariate(self.mean, self.std))
        return 0.0


class SimulatedChannel:
    """A FIFO link from a timed element schedule to a consumer.

    ``feed`` schedules ``(send_time, element)`` pairs; each element's
    arrival is ``max(previous arrival, send_time + delay)`` — FIFO order
    is preserved, so a delayed element stalls everything behind it.
    """

    def __init__(
        self,
        sim: Simulation,
        consumer: Callable[[Element], None],
        delay_model: Optional[DelayModel] = None,
        service_model: Optional[DelayModel] = None,
        seed: int = 0,
        name: str = "channel",
    ):
        self.sim = sim
        self.name = name
        self._consumer = consumer
        self._delay_model = delay_model or NoDelay()
        # A *latency* delays one element (and whatever queues behind it);
        # a *service* time throttles the link's rate — each element holds
        # the channel for that long, so congestion collapses throughput
        # and builds a backlog that drains as a spike afterwards.
        self._service_model = service_model or NoDelay()
        self._rng = random.Random(seed)
        self._last_arrival = 0.0
        self.delivered = 0

    def feed(self, timed_elements: Iterable[Tuple[float, Element]]) -> None:
        """Schedule delivery of all ``(send_time, element)`` pairs.

        Latency is evaluated at the element's *send* time (a stall on the
        wire); service at the instant the link would start carrying it
        (congestion is a property of the link's current condition, so a
        backlog drains at full speed once the congested period ends).
        """
        for send_time, element in timed_elements:
            delay = self._delay_model.delay(element, send_time, self._rng)
            begin = max(self._last_arrival, send_time + delay)
            service = self._service_model.delay(element, begin, self._rng)
            arrival = begin + service
            self._last_arrival = arrival
            self.sim.schedule_at(arrival, _Delivery(self, element))


class _Delivery:
    """A scheduled element hand-off (picklable, debuggable closure)."""

    __slots__ = ("channel", "element")

    def __init__(self, channel: SimulatedChannel, element: Element):
        self.channel = channel
        self.element = element

    def __call__(self) -> None:
        self.channel.delivered += 1
        self.channel._consumer(self.element)


class SimulatedPlan:
    """A query plan as a single-server queue with per-element CPU cost.

    ``service_cost(element)`` returns simulated CPU seconds for one
    element.  Elements entering while the server is busy queue up.  On
    completion the element is handed to *consumer* (typically
    ``lmerge.process`` bound to a stream id).

    Fast-forward (Section V-D): a :class:`FeedbackSignal` raises
    ``horizon``; queued or future elements relevant only to times before
    the horizon are served at ``fast_forward_cost`` instead — the plan
    skips the real work.
    """

    def __init__(
        self,
        sim: Simulation,
        consumer: Callable[[Element], None],
        service_cost: Callable[[Element], float],
        fast_forward_cost: float = 0.0,
        name: str = "plan",
    ):
        self.sim = sim
        self.name = name
        self._consumer = consumer
        self._service_cost = service_cost
        self._fast_forward_cost = fast_forward_cost
        self._queue: "deque[Element]" = deque()
        self._busy = False
        self._last_completion = 0.0
        self.horizon: Timestamp = float("-inf")
        self.completed = 0
        self.skipped = 0
        self.busy_time = 0.0

    def on_feedback(self, signal: FeedbackSignal) -> None:
        """Raise the fast-forward horizon (monotone).

        Applies to everything still queued: skippability is decided when
        the server *starts* an element, so feedback arriving while a
        backlog waits lets the whole covered backlog be fast-forwarded —
        the essence of Section V-D.
        """
        if signal.horizon > self.horizon:
            self.horizon = signal.horizon

    def _is_skippable(self, element: Element) -> bool:
        """True when the output's feedback horizon covers this element.

        An element matters only before its latest effect time; once the
        horizon passes that, the plan may process it for free (it must
        still *deliver* it so the merge state stays consistent).
        """
        if isinstance(element, Insert):
            return element.ve < self.horizon
        if isinstance(element, Adjust):
            return max(element.v_old, element.ve) < self.horizon
        return False  # stables are always cheap and always forwarded

    def submit(self, element: Element) -> None:
        """Enqueue one element at the current simulated time."""
        self._queue.append(element)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        element = self._queue.popleft()
        if self._is_skippable(element):
            cost = self._fast_forward_cost
            self.skipped += 1
        else:
            cost = self._service_cost(element)
        self.busy_time += cost
        done = self.sim.now + cost
        self._last_completion = done
        self.sim.schedule_at(done, _Completion(self, element))

    @property
    def completion_time(self) -> float:
        """When the server last finished (valid after the run drains)."""
        return self._last_completion


class _Completion:
    __slots__ = ("plan", "element")

    def __init__(self, plan: SimulatedPlan, element: Element):
        self.plan = plan
        self.element = element

    def __call__(self) -> None:
        self.plan.completed += 1
        self.plan._consumer(self.element)
        self.plan._start_next()


def timed_schedule(
    elements: Iterable[Element], rate: float, start: float = 0.0
) -> List[Tuple[float, Element]]:
    """Assign send times at a constant *rate* (elements per second)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    period = 1.0 / rate
    return [
        (start + index * period, element)
        for index, element in enumerate(elements)
    ]
