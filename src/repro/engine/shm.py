"""Shared-memory SPSC ring buffers for inter-process batch exchange.

The object-envelope process backend ships every micro-batch through a
``multiprocessing.Queue``: one pickle of the whole element list per
envelope, a pipe write, a pipe read, one unpickle — four copies and an
object-graph walk per hop.  :class:`ShmRing` replaces that channel for
the columnar envelope with a byte ring in
:mod:`multiprocessing.shared_memory`:

* the driver encodes a :class:`~repro.engine.columnar.ColumnBatch`
  **directly into ring storage** (``put_frame`` hands the encoder a
  contiguous ``memoryview`` when the frame does not wrap);
* the worker decodes straight out of the ring; numeric columns are one
  ``frombytes`` each and payload bytes stay untouched until first use;
* control messages (attach/detach/shutdown) travel the same ring as
  :data:`CTRL` frames, so the per-shard channel stays totally ordered —
  an attach can never overtake the batches before it.

Framing: each frame is a 5-byte header (kind byte + u32 length) followed
by the payload, written contiguously with wraparound splitting.

Synchronization is lock-free, exploiting the single-producer /
single-consumer shape: the producer alone advances the ``tail`` byte
counter, the consumer alone advances ``head``, and both counters are
aligned 8-byte stores (atomic on every platform CPython runs on).  A
frame becomes visible only when the tail advances past it, so the reader
always sees whole frames.  An earlier draft guarded both sides with one
``multiprocessing.Condition``; on a busy exchange that one semaphore is
acquired by two processes per frame and the forced hand-offs dominated
the profile — the lock-free ring removes every syscall from the
steady-state path.  Blocking falls back to a sleep-with-backoff poll
(a few yields, then naps doubling to a 2ms cap), which only runs when
the ring is actually full or empty — i.e. when the peer is the
bottleneck and a nap costs little.

A full ring blocks the producer — the process-backend analogue of a
bounded queue applying backpressure.  Writers should bound their waits
(``timeout=``) and drain their own inbound ring meanwhile: the driver
does exactly that in ``ParallelRuntime.submit``, which is what makes
the bounded-out/bounded-in cycle deadlock-free.

The rings are created by the driver and inherited by forked workers (the
process backend prefers the ``fork`` start method, as before).  Workers
call :meth:`ShmRing.child_deregister` once on startup so the child's
``resource_tracker`` never unlinks a segment the driver still owns.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from struct import Struct
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "CTRL",
    "BATCH",
    "OUT",
    "DONE",
    "ERR",
    "HB",
    "CKPT",
    "TELEM",
    "FRAME_PROTOCOL",
    "FrameSpec",
    "frame_name",
    "RingClosedError",
    "PeerDeadError",
    "ShmRing",
]

#: Frame kinds (one byte on the wire).
CTRL = 1  #: pickled control tuple (attach / detach / shutdown sentinel)
BATCH = 2  #: stream-id header + ColumnBatch wire frame (driver -> worker)
OUT = 3  #: ColumnBatch wire frame of shard output (worker -> driver)
DONE = 4  #: pickled final MergeStats (worker -> driver, last frame)
ERR = 5  #: pickled worker traceback text (worker -> driver, last frame)
HB = 6  #: pickled heartbeat/progress tuple (supervised worker -> driver)
CKPT = 7  #: pickled checkpoint acknowledgement (supervised worker -> driver)
TELEM = 8  #: pickled metric/span delta dict (worker -> driver, best-effort)


@dataclass(frozen=True)
class FrameSpec:
    """The declared contract for one frame kind.

    This is the machine-readable half of the ring protocol: the comments
    above say what each kind *means*, this says what a conforming site
    must *do*, and ``repro.analysis.protocol`` statically checks every
    ``put``/``put_pickle``/``put_frame``/``get`` call in the codebase
    against it.  Adding a frame kind for a new subsystem means adding a
    constant above and a spec here — the verifier then covers its call
    sites with no further wiring (see docs/ANALYSIS.md).
    """

    #: Wire byte, equal to the module constant.
    kind: int
    #: Constant name, e.g. ``"CTRL"``.
    name: str
    #: Which side of the ring may produce this kind: ``"driver"`` or
    #: ``"worker"``.  A worker writing CTRL (or a driver writing OUT)
    #: is a protocol violation — the SPSC rings are directional.
    producer: str
    #: Terminal frames (DONE/ERR) end the producer's conversation on
    #: that ring: no conforming site puts another frame after one.
    terminal: bool
    #: Put discipline:
    #: ``"blocking"`` — the put may wait indefinitely (backpressure is
    #: the point: OUT, and DONE as the final frame behind it);
    #: ``"bounded"`` — the put must pass a finite ``timeout=`` so a
    #: stuck peer cannot wedge the producer (CTRL/BATCH retry loops,
    #: HB, CKPT, ERR);
    #: ``"best_effort"`` — the put must pass literal ``timeout=0`` and
    #: ignore the result; dropping the frame must be safe (TELEM).
    discipline: str
    #: One-line payload description for reports and docs.
    payload: str


#: The ShmRing frame protocol, declared once.  ``repro.analysis
#: protocol`` verifies every call site against this table, and the
#: bounded model checker (``repro.analysis.model``) explores the
#: driver/worker state machine implied by it.
FRAME_PROTOCOL: Dict[int, FrameSpec] = {
    spec.kind: spec
    for spec in (
        FrameSpec(
            kind=CTRL,
            name="CTRL",
            producer="driver",
            terminal=False,
            discipline="bounded",
            payload="pickled control tuple (attach / detach / shutdown)",
        ),
        FrameSpec(
            kind=BATCH,
            name="BATCH",
            producer="driver",
            terminal=False,
            discipline="bounded",
            payload="stream-id header + ColumnBatch wire frame",
        ),
        FrameSpec(
            kind=OUT,
            name="OUT",
            producer="worker",
            terminal=False,
            discipline="blocking",
            payload="ColumnBatch wire frame of shard output",
        ),
        FrameSpec(
            kind=DONE,
            name="DONE",
            producer="worker",
            terminal=True,
            discipline="blocking",
            payload="pickled final MergeStats",
        ),
        FrameSpec(
            kind=ERR,
            name="ERR",
            producer="worker",
            terminal=True,
            discipline="bounded",
            payload="pickled worker traceback text",
        ),
        FrameSpec(
            kind=HB,
            name="HB",
            producer="worker",
            terminal=False,
            discipline="bounded",
            payload="pickled heartbeat/progress tuple",
        ),
        FrameSpec(
            kind=CKPT,
            name="CKPT",
            producer="worker",
            terminal=False,
            discipline="bounded",
            payload="pickled checkpoint acknowledgement",
        ),
        FrameSpec(
            kind=TELEM,
            name="TELEM",
            producer="worker",
            terminal=False,
            discipline="best_effort",
            payload="pickled metric/span delta dict",
        ),
    )
}


def frame_name(kind: int) -> str:
    """Human name of a frame kind byte (``"?3"``-style for unknown)."""
    spec = FRAME_PROTOCOL.get(kind)
    return spec.name if spec is not None else f"?{kind}"


_FRAME = Struct("<BI")
_U64 = Struct("<Q")
_U32 = Struct("<I")

#: State block layout: every field has exactly one writer, so no lock is
#: needed — the counters are aligned 8-byte (or 4-byte) stores.
_TAIL = 0  #: u64 monotonic bytes written (producer-owned)
_HEAD = 8  #: u64 monotonic bytes consumed (consumer-owned)
_PUT = 16  #: u32 frames written (producer-owned)
_GOT = 20  #: u32 frames consumed (consumer-owned)
_CLOSED = 24  #: one byte, set by either side, never cleared

#: Data region starts past the (padded) state block.
_DATA_START = 32

#: Backoff while blocked: yield a few times, then naps that double from
#: 0.2ms up to a 2ms cap.  The growth matters on oversubscribed hosts
#: (more workers than cores): a fixed short nap has every blocked peer
#: burning the time-slice the unblocked peer needs.
_SPIN_YIELDS = 4
_NAP_SECONDS = 0.0002
_NAP_MAX = 0.002

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


#: A blocked put/get polls the liveness callback only once it has
#: entered the nap stage, and then every this-many backoff iterations —
#: `is_alive()` is a syscall, so don't pay it per 0.2ms nap.
_LIVENESS_EVERY = 8


class RingClosedError(RuntimeError):
    """The peer closed the ring; no further frames will flow."""


class PeerDeadError(RingClosedError):
    """The peer process died without closing the ring.

    Raised from a blocking :meth:`ShmRing.put_frame`/:meth:`ShmRing.get`
    when the optional liveness callback reports the other side gone —
    the dead-peer detection that replaces spinning until timeout.
    """


class ShmRing:
    """A single-producer/single-consumer byte ring in shared memory."""

    def __init__(self, capacity: int = 1 << 20):
        if capacity < 4096:
            raise ValueError("ring capacity must be at least 4096 bytes")
        self.capacity = capacity
        #: Optional peer-liveness probe consulted by blocking loops (see
        #: :meth:`set_liveness`).  Not part of the shared state: each side
        #: installs its own probe for the *other* side.
        self.liveness: Optional[Callable[[], bool]] = None
        self._shm = shared_memory.SharedMemory(
            create=True, size=_DATA_START + capacity
        )
        self.name = self._shm.name
        buf = self._shm.buf
        buf[:_DATA_START] = bytes(_DATA_START)

    def set_liveness(self, probe: Optional[Callable[[], bool]]) -> None:
        """Install a peer-liveness probe for this side's blocking loops.

        *probe* returns True while the peer process is alive.  A blocked
        ``put_frame``/``get`` polls it during backoff and raises
        :class:`PeerDeadError` instead of spinning out its timeout when
        the peer has exited without a DONE/ERR frame.  The driver installs
        ``process.is_alive``; workers install a parent-process check.
        """
        self.liveness = probe

    def _peer_dead(self) -> bool:
        probe = self.liveness
        return probe is not None and not probe()

    # ------------------------------------------------------------------
    # State block accessors (each field is written by exactly one side)
    # ------------------------------------------------------------------

    def _tail(self) -> int:
        return _U64.unpack_from(self._shm.buf, _TAIL)[0]

    def _head(self) -> int:
        return _U64.unpack_from(self._shm.buf, _HEAD)[0]

    def _closed(self) -> bool:
        return self._shm.buf[_CLOSED] != 0

    # ------------------------------------------------------------------
    # Raw byte movement with wraparound
    # ------------------------------------------------------------------

    def _write(self, position: int, data) -> None:
        buf = self._shm.buf
        offset = _DATA_START + position % self.capacity
        first = min(len(data), _DATA_START + self.capacity - offset)
        buf[offset : offset + first] = data[:first]
        if first < len(data):
            rest = len(data) - first
            buf[_DATA_START : _DATA_START + rest] = data[first:]

    def _read(self, position: int, count: int) -> bytes:
        buf = self._shm.buf
        offset = _DATA_START + position % self.capacity
        first = min(count, _DATA_START + self.capacity - offset)
        if first == count:
            return bytes(buf[offset : offset + count])
        return bytes(buf[offset : offset + first]) + bytes(
            buf[_DATA_START : _DATA_START + count - first]
        )

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def put(self, kind: int, payload, timeout: Optional[float] = None) -> bool:
        """Append one frame; blocks while the ring is full.

        Returns True on success, False when *timeout* elapsed with no
        room (the caller should drain its own inbound channel and retry).
        Raises :class:`RingClosedError` once the ring is closed.
        """
        return self.put_frame(
            kind,
            len(payload),
            lambda view: view.__setitem__(slice(0, len(payload)), payload),
            timeout=timeout,
        )

    def put_frame(
        self,
        kind: int,
        size: int,
        fill: Callable[[memoryview], Any],
        timeout: Optional[float] = None,
    ) -> bool:
        """Append a frame of *size* bytes produced by ``fill(view)``.

        When the frame fits contiguously, *fill* writes straight into
        ring storage (zero intermediate copy); a wrapping frame falls
        back to a scratch buffer split across the boundary.
        """
        need = _FRAME.size + size
        if need > self.capacity:
            raise ValueError(
                f"frame of {need} bytes exceeds ring capacity {self.capacity}"
            )
        buf = self._shm.buf
        tail = self._tail()
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        spins, nap = 0, 0.0
        while True:
            if buf[_CLOSED]:
                raise RingClosedError("ring closed")
            if self.capacity - (tail - self._head()) >= need:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                return False
            if spins < _SPIN_YIELDS:
                time.sleep(0)
            else:
                if spins % _LIVENESS_EVERY == 0 and self._peer_dead():
                    raise PeerDeadError(
                        "ring consumer process died while the ring was full"
                    )
                nap = min(nap * 2 or _NAP_SECONDS, _NAP_MAX)
                time.sleep(nap)
            spins += 1
        position = tail + _FRAME.size
        offset = _DATA_START + position % self.capacity
        contiguous = _DATA_START + self.capacity - offset
        if size <= contiguous:
            view = memoryview(buf)[offset : offset + size]
            try:
                fill(view)
            finally:
                view.release()
        else:
            scratch = bytearray(size)
            fill(memoryview(scratch))
            self._write(position, scratch)
        self._write(tail, _FRAME.pack(kind, size))
        # Publish: the tail store makes the frame visible, so it comes
        # after every payload byte is in place.
        _U32.pack_into(buf, _PUT, (_U32.unpack_from(buf, _PUT)[0] + 1) & 0xFFFFFFFF)
        _U64.pack_into(buf, _TAIL, tail + need)
        return True

    def put_pickle(
        self, kind: int, obj, timeout: Optional[float] = None
    ) -> bool:
        """Append ``pickle.dumps(obj)`` as one frame of *kind*."""
        return self.put(kind, pickle.dumps(obj, _PICKLE_PROTOCOL), timeout)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def get(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[int, bytes]]:
        """Pop the next ``(kind, payload)`` frame.

        Blocks while the ring is empty; returns None when *timeout*
        elapsed first (``timeout=0`` never blocks).  Raises
        :class:`RingClosedError` when the ring is closed and drained.
        """
        buf = self._shm.buf
        head = self._head()
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        spins, nap = 0, 0.0
        while self._tail() == head:
            # Closed-check after the emptiness check: frames written
            # before the close flag are still served.
            if buf[_CLOSED]:
                raise RingClosedError("ring closed and drained")
            if timeout == 0 or (
                deadline is not None and time.perf_counter() >= deadline
            ):
                return None
            if spins < _SPIN_YIELDS:
                time.sleep(0)
            else:
                if spins % _LIVENESS_EVERY == 0 and self._peer_dead():
                    # Re-check emptiness once: the peer may have published
                    # a final frame between the empty check and its death.
                    if self._tail() != head:
                        break
                    raise PeerDeadError(
                        "ring producer process died with the ring empty"
                    )
                nap = min(nap * 2 or _NAP_SECONDS, _NAP_MAX)
                time.sleep(nap)
            spins += 1
        kind, size = _FRAME.unpack(self._read(head, _FRAME.size))
        payload = self._read(head + _FRAME.size, size)
        _U32.pack_into(buf, _GOT, (_U32.unpack_from(buf, _GOT)[0] + 1) & 0xFFFFFFFF)
        _U64.pack_into(buf, _HEAD, head + _FRAME.size + size)
        return kind, payload

    def get_nowait(self) -> Optional[Tuple[int, bytes]]:
        """Pop a frame if one is ready; never blocks, never raises on
        an open-but-empty ring."""
        try:
            return self.get(timeout=0)
        except RingClosedError:
            return None

    # ------------------------------------------------------------------
    # Introspection (occupancy gauges, queue-depth reporting)
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        # Read head before tail so a concurrent producer can only make
        # the estimate low, never negative.
        head = self._head()
        return self._tail() - head

    @property
    def frames(self) -> int:
        """Whole frames currently buffered (the ring's queue depth)."""
        buf = self._shm.buf
        got = _U32.unpack_from(buf, _GOT)[0]
        put = _U32.unpack_from(buf, _PUT)[0]
        return (put - got) & 0xFFFFFFFF

    @property
    def occupancy(self) -> float:
        """Used fraction of the ring's data capacity, 0.0-1.0."""
        return self.used_bytes / self.capacity

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close_ring(self) -> None:
        """Mark the ring closed; a blocked peer notices on its next
        backoff poll and raises :class:`RingClosedError`."""
        self._shm.buf[_CLOSED] = 1

    def __getstate__(self) -> dict:
        # Only Process-spawning pickles a ring (spawn start method); mark
        # the copy so child_deregister knows the child re-registered the
        # segment with its resource tracker.  Forked children inherit the
        # object unpickled and must NOT deregister (they share the
        # driver's tracker; deregistering would orphan the driver's own
        # unlink).
        state = self.__dict__.copy()
        state["_unpickled"] = True
        # Liveness probes are per-process closures (the driver's probe
        # watches the worker and vice versa); never ship one across.
        state["liveness"] = None
        return state

    def child_deregister(self) -> None:
        """Worker-side startup hook: keep the child's resource tracker
        from unlinking the driver-owned segment at child exit.  A no-op
        for forked workers, which never re-register."""
        if not self.__dict__.get("_unpickled"):
            return
        try:  # pragma: no cover - tracker behaviour varies by start method
            from multiprocessing import resource_tracker

            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:
            pass

    def detach(self) -> None:
        """Unmap the segment in this process (worker exit)."""
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - double close on teardown
            pass

    def destroy(self) -> None:
        """Unmap and unlink the segment (driver teardown; idempotent)."""
        self.detach()
        try:
            self._shm.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ShmRing {self.name} capacity={self.capacity}>"
