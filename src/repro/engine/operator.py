"""The push-based operator protocol.

Operators receive stream elements on numbered input ports, update state,
and push results to subscribers.  Feedback signals (Section V-D) travel the
opposite direction: ``on_feedback`` lets an operator drop future work below
a horizon and forward the signal to its upstreams.

Every operator declares how it transforms stream properties
(:meth:`Operator.derive_properties`), which is what the compile-time
LMerge-algorithm selection of Section IV-G walks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.lmerge.feedback import FeedbackSignal
from repro.obs.trace import NULL_TRACER
from repro.streams.properties import StreamProperties
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.time import Timestamp


class Operator:
    """Base class for all streaming operators.

    Subclasses override :meth:`on_insert` / :meth:`on_adjust` /
    :meth:`on_stable` (the default handlers drop adjusts with an error to
    catch wiring mistakes) and :meth:`derive_properties`.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "pessimistic default: no guarantee survives"

    #: Human-readable operator kind.
    kind = "operator"
    #: The observability tracer (class default: the shared no-op).  The
    #: hot paths guard on ``tracer.enabled``, so the disabled cost is one
    #: attribute load and a branch per *call*; install a
    #: :class:`repro.obs.trace.RingTracer` via :meth:`set_tracer` to
    #: record receive/batch events.
    tracer = NULL_TRACER

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self._subscribers: List[Tuple["Operator", int]] = []
        self._upstreams: List["Operator"] = []
        self.elements_in = 0
        self.elements_out = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def subscribe(self, downstream: "Operator", port: int = 0) -> "Operator":
        """Wire this operator's output to *downstream*'s input *port*.

        Returns *downstream* so pipelines chain naturally.
        """
        self._subscribers.append((downstream, port))
        downstream._upstreams.append(self)
        return downstream

    def unsubscribe(self, downstream: "Operator") -> None:
        """Remove every subscription to *downstream* (inverse of
        :meth:`subscribe`)."""
        self._subscribers = [
            (op, port) for op, port in self._subscribers if op is not downstream
        ]
        downstream._upstreams = [
            op for op in downstream._upstreams if op is not self
        ]

    def set_tracer(self, tracer) -> "Operator":
        """Install an observability tracer on this operator (chainable)."""
        self.tracer = tracer
        return self

    @property
    def upstreams(self) -> Tuple["Operator", ...]:
        return tuple(self._upstreams)

    @property
    def subscribers(self) -> Tuple[Tuple["Operator", int], ...]:
        """The ``(downstream, port)`` subscriptions, as a snapshot.

        The public face of the wiring — schedulers and diagnostics should
        read this rather than the private list.
        """
        return tuple(self._subscribers)

    # ------------------------------------------------------------------
    # Capacity (the scheduler's backpressure probe)
    # ------------------------------------------------------------------

    def input_room(self) -> Optional[int]:
        """How many more elements this operator can accept right now.

        ``None`` means unbounded (the default); bounded operators —
        notably queued edges — override.
        """
        return None

    def output_room(self) -> Optional[int]:
        """The tightest :meth:`input_room` across all subscribers.

        ``None`` when every subscriber is unbounded.
        """
        room: Optional[int] = None
        for downstream, _ in self._subscribers:
            r = downstream.input_room()
            if r is not None and (room is None or r < room):
                room = r
        return room

    def has_output_room(self) -> bool:
        """True when every subscriber can accept at least one element."""
        room = self.output_room()
        return room is None or room > 0

    # ------------------------------------------------------------------
    # Element flow
    # ------------------------------------------------------------------

    def receive(self, element: Element, port: int = 0) -> None:
        """Entry point: dispatch one element arriving on *port*."""
        self.elements_in += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                "receive", self.name,
                port=port, cls=element.__class__.__name__,
            )
        if isinstance(element, Insert):
            self.on_insert(element, port)
        elif isinstance(element, Adjust):
            self.on_adjust(element, port)
        elif isinstance(element, Stable):
            self.on_stable(element.vc, port)
        else:
            raise TypeError(f"not a stream element: {element!r}")

    def receive_batch(self, elements: Sequence[Element], port: int = 0) -> None:
        """Deliver a slice of consecutive elements to one port.

        Default: element-by-element :meth:`receive`, so every operator
        accepts batches.  Operators with a cheaper bulk path override
        (queued edges enqueue in one extend; the HA fragment adapter
        forwards to ``LMergeBase.process_batch``).
        """
        tracer = self.tracer
        if tracer.enabled:
            out_before = self.elements_out
            receive = self.receive
            for element in elements:
                receive(element, port)
            tracer.record(
                "receive_batch", self.name,
                port=port, n=len(elements),
                out=self.elements_out - out_before,
            )
            return
        receive = self.receive
        for element in elements:
            receive(element, port)

    def receive_columns(self, batch, port: int = 0) -> None:
        """Deliver a :class:`~repro.engine.columnar.ColumnBatch` to one
        port.

        Default: materialize through the batch's boundary converter and
        fall back to :meth:`receive_batch`, so every operator accepts
        columnar batches.  Operators on the columnar hot path override
        to walk the columns without building element objects (exchange
        ports, queued edges, the sharded LMerge plan).
        """
        self.receive_batch(batch.to_elements(), port)

    def emit(self, element: Element) -> None:
        """Push one element to every subscriber."""
        self.elements_out += 1
        for downstream, port in self._subscribers:
            downstream.receive(element, port)

    def emit_columns(self, batch) -> None:
        """Push a :class:`~repro.engine.columnar.ColumnBatch` to every
        subscriber (columnar counterpart of :meth:`emit_batch`)."""
        n = len(batch)
        if not n:
            return
        self.elements_out += n
        for downstream, port in self._subscribers:
            downstream.receive_columns(batch, port)

    def emit_batch(self, elements: Sequence[Element]) -> None:
        """Push a slice of consecutive elements to every subscriber.

        The counterpart of :meth:`receive_batch` on the producing side:
        one call per subscriber instead of one per element, so batch-aware
        consumers see the whole slice.
        """
        if not elements:
            return
        self.elements_out += len(elements)
        for downstream, port in self._subscribers:
            downstream.receive_batch(elements, port)

    def on_insert(self, element: Insert, port: int) -> None:
        raise NotImplementedError(f"{self.name} does not handle insert()")

    def on_adjust(self, element: Adjust, port: int) -> None:
        raise NotImplementedError(f"{self.name} does not handle adjust()")

    def on_stable(self, vc: Timestamp, port: int) -> None:
        raise NotImplementedError(f"{self.name} does not handle stable()")

    def flush(self) -> None:
        """End-of-stream hook; default forwards to upstream-less state."""

    # ------------------------------------------------------------------
    # Feedback (Section V-D)
    # ------------------------------------------------------------------

    def on_feedback(self, signal: FeedbackSignal) -> None:
        """Handle "not interested before horizon".

        Default behaviour: purge nothing locally, propagate upstream —
        subclasses with state or per-element cost override and then call
        ``super().on_feedback(signal)`` to keep the signal travelling.
        """
        self.propagate_feedback(signal)

    def propagate_feedback(self, signal: FeedbackSignal) -> None:
        for upstream in self._upstreams:
            upstream.on_feedback(signal)

    # ------------------------------------------------------------------
    # Properties & accounting
    # ------------------------------------------------------------------

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        """Output stream properties given the input properties.

        Default: no guarantees survive (safe for any operator).
        """
        return StreamProperties.unknown()

    def memory_bytes(self) -> int:
        """Approximate retained state; stateless operators report 0."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class CollectorSink(Operator):
    """Terminal operator that records everything it receives."""

    kind = "sink"

    def __init__(self, name: str = "sink"):
        super().__init__(name)
        self.stream = PhysicalStream(name=name)

    def receive(self, element: Element, port: int = 0) -> None:
        self.elements_in += 1
        self.stream.append(element)

    def receive_batch(self, elements: Sequence[Element], port: int = 0) -> None:
        self.elements_in += len(elements)
        self.stream.extend(elements)

    def derive_properties(self, input_properties):
        return input_properties[0] if input_properties else StreamProperties.unknown()


class CallbackSink(Operator):
    """Terminal operator invoking a callback per element."""

    kind = "sink"

    def __init__(self, callback: Callable[[Element], None], name: str = "callback"):
        super().__init__(name)
        self._callback = callback

    def receive(self, element: Element, port: int = 0) -> None:
        self.elements_in += 1
        self._callback(element)
