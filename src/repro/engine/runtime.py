"""Cooperative runtime with inter-operator queues.

The push-based operator protocol (:mod:`repro.engine.operator`) executes
synchronously — an ``emit`` runs the whole downstream immediately.  Real
DSMSs decouple operators with queues and a scheduler; queue build-up
between operators is one of the paper's listed sources of burstiness
(Section VI-E.1).  This module adds that execution mode without changing
the operators:

* :class:`QueuedEdge` — replaces a direct subscription with a bounded
  FIFO queue;
* :class:`Runtime` — a round-robin cooperative scheduler that drains the
  queues in batches, recording per-edge depth statistics and applying
  backpressure (a full queue pauses its producer's drain).

Operators are unmodified: the runtime wraps their subscriptions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.engine.operator import Operator
from repro.temporal.elements import Element


class QueueFullError(RuntimeError):
    """An unbounded producer overwhelmed a bounded edge with no room to
    apply backpressure (the producer was external)."""


class QueuedEdge(Operator):
    """A FIFO queue standing between a producer and a consumer port."""

    kind = "queue"

    def __init__(
        self,
        consumer: Operator,
        port: int = 0,
        capacity: Optional[int] = None,
        name: str = "",
    ):
        super().__init__(name or f"queue->{consumer.name}[{port}]")
        self.consumer = consumer
        self.port = port
        self.capacity = capacity
        self._queue: Deque[Element] = deque()
        self.peak_depth = 0
        self.enqueued = 0
        self.drained = 0

    # -- producer side -----------------------------------------------------

    def receive(self, element: Element, port: int = 0) -> None:
        self.elements_in += 1
        if self.capacity is not None and len(self._queue) >= self.capacity:
            raise QueueFullError(
                f"{self.name}: capacity {self.capacity} exceeded"
            )
        self._queue.append(element)
        self.enqueued += 1
        if len(self._queue) > self.peak_depth:
            self.peak_depth = len(self._queue)

    # -- scheduler side ------------------------------------------------------

    def drain(self, budget: int) -> int:
        """Deliver up to *budget* queued elements; returns how many."""
        delivered = 0
        while self._queue and delivered < budget:
            element = self._queue.popleft()
            self.consumer.receive(element, self.port)
            delivered += 1
            self.drained += 1
        return delivered

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def has_room(self) -> bool:
        return self.capacity is None or len(self._queue) < self.capacity

    def derive_properties(self, input_properties):
        # A FIFO queue reorders nothing.
        from repro.streams.properties import StreamProperties

        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]


class Runtime:
    """Round-robin cooperative scheduler over queued edges."""

    def __init__(self, batch: int = 32):
        if batch < 1:
            raise ValueError("batch must be positive")
        self.batch = batch
        self._edges: List[QueuedEdge] = []
        self.rounds = 0

    def connect(
        self,
        producer: Operator,
        consumer: Operator,
        port: int = 0,
        capacity: Optional[int] = None,
    ) -> QueuedEdge:
        """Wire ``producer -> consumer`` through a queue."""
        edge = QueuedEdge(consumer, port=port, capacity=capacity)
        producer.subscribe(edge)
        self._edges.append(edge)
        return edge

    def pump(self) -> int:
        """One scheduling round: drain each edge up to the batch size.

        Downstream-first order so one round moves elements at most one
        hop (modelling per-operator scheduling quanta); returns elements
        moved.
        """
        moved = 0
        self.rounds += 1
        for edge in reversed(self._edges):
            for _ in range(self.batch):
                # Backpressure: stop draining the moment the consumer's
                # own output queues run out of room (one delivered
                # element can produce output, so re-check per element).
                if edge.depth == 0 or not self._downstream_has_room(
                    edge.consumer
                ):
                    break
                moved += edge.drain(1)
        return moved

    def run(self, max_rounds: Optional[int] = None) -> int:
        """Pump until every queue is empty (or *max_rounds*); returns the
        total elements moved."""
        total = 0
        rounds = 0
        while any(edge.depth for edge in self._edges):
            moved = self.pump()
            total += moved
            rounds += 1
            if moved == 0:
                raise RuntimeError(
                    "runtime stalled: backpressure cycle with no progress"
                )
            if max_rounds is not None and rounds >= max_rounds:
                break
        return total

    def _downstream_has_room(self, operator: Operator) -> bool:
        for downstream, _ in operator._subscribers:
            if isinstance(downstream, QueuedEdge) and not downstream.has_room:
                return False
        return True

    # -- statistics ----------------------------------------------------------

    @property
    def edges(self) -> Tuple[QueuedEdge, ...]:
        return tuple(self._edges)

    def depth_report(self) -> Dict[str, int]:
        """Current depth per edge (diagnostics)."""
        return {edge.name: edge.depth for edge in self._edges}

    def peak_report(self) -> Dict[str, int]:
        """Peak depth per edge — the queue-build-up statistic."""
        return {edge.name: edge.peak_depth for edge in self._edges}
