"""Cooperative runtime with inter-operator queues.

The push-based operator protocol (:mod:`repro.engine.operator`) executes
synchronously — an ``emit`` runs the whole downstream immediately.  Real
DSMSs decouple operators with queues and a scheduler; queue build-up
between operators is one of the paper's listed sources of burstiness
(Section VI-E.1).  This module adds that execution mode without changing
the operators:

* :class:`QueuedEdge` — replaces a direct subscription with a bounded
  FIFO queue;
* :class:`Runtime` — a round-robin cooperative scheduler that drains the
  queues in batches, recording per-edge depth statistics and applying
  backpressure (a full queue pauses its producer's drain).

Operators are unmodified: the runtime wraps their subscriptions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.columnar import ColumnBatch
from repro.engine.operator import Operator
from repro.obs.trace import NULL_TRACER
from repro.temporal.elements import Element


class QueueFullError(RuntimeError):
    """An unbounded producer overwhelmed a bounded edge with no room to
    apply backpressure (the producer was external).

    For batch deliveries, :attr:`accepted` reports how many elements of
    the slice were enqueued before the edge filled (the fitting prefix);
    :attr:`rejected` is the remainder the producer still owns.
    """

    def __init__(self, message: str, accepted: int = 0, rejected: int = 1):
        super().__init__(message)
        self.accepted = accepted
        self.rejected = rejected


class QueuedEdge(Operator):
    """A FIFO queue standing between a producer and a consumer port."""

    kind = "queue"

    def __init__(
        self,
        consumer: Operator,
        port: int = 0,
        capacity: Optional[int] = None,
        name: str = "",
    ):
        super().__init__(name or f"queue->{consumer.name}[{port}]")
        self.consumer = consumer
        self.port = port
        self.capacity = capacity
        #: Mixed FIFO of elements and ColumnBatch slices; ``_depth``
        #: counts *rows* (a batch occupies its row count, not one slot),
        #: so capacity semantics are identical across envelopes.
        self._queue: Deque[Union[Element, ColumnBatch]] = deque()
        self._depth = 0
        self.peak_depth = 0
        self.enqueued = 0
        self.drained = 0

    # -- producer side -----------------------------------------------------

    def receive(self, element: Element, port: int = 0) -> None:
        self.elements_in += 1
        if self.capacity is not None and self._depth >= self.capacity:
            raise QueueFullError(
                f"{self.name}: capacity {self.capacity} exceeded"
            )
        self._queue.append(element)
        self._depth += 1
        self.enqueued += 1
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth

    def receive_batch(self, elements: Sequence[Element], port: int = 0) -> None:
        """Enqueue a slice, mirroring per-element :meth:`receive` exactly.

        On a near-full bounded edge the fitting *prefix* is admitted and
        the overflow raises — the same observable state a per-element loop
        would leave behind (each fitting element enqueued, the first
        overflowing element counted in ``elements_in`` but rejected).  The
        raised :class:`QueueFullError` carries ``accepted``/``rejected``
        so the producer knows where to resume.
        """
        count = len(elements)
        if self.capacity is not None:
            room = self.capacity - self._depth
            if count > room:
                admitted = room if room > 0 else 0
                if admitted:
                    self._queue.extend(elements[:admitted])
                    self._depth += admitted
                    self.enqueued += admitted
                    if self._depth > self.peak_depth:
                        self.peak_depth = self._depth
                # The per-element path counts the first rejected element
                # in elements_in before raising; later elements are never
                # presented.
                self.elements_in += admitted + 1
                raise QueueFullError(
                    f"{self.name}: capacity {self.capacity} exceeded "
                    f"({admitted} of {count} admitted)",
                    accepted=admitted,
                    rejected=count - admitted,
                )
        self.elements_in += count
        self._queue.extend(elements)
        self._depth += count
        self.enqueued += count
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth

    def receive_columns(self, batch: ColumnBatch, port: int = 0) -> None:
        """Enqueue a columnar batch without materializing elements.

        Capacity counts rows, and admission mirrors :meth:`receive_batch`
        exactly: on overflow the fitting *prefix* is admitted as a
        zero-copy slice and :class:`QueueFullError` carries
        ``accepted``/``rejected`` row counts, so a producer resumes from
        ``batch.slice(accepted, len(batch))``.
        """
        count = len(batch)
        if not count:
            return
        if self.capacity is not None:
            room = self.capacity - self._depth
            if count > room:
                admitted = room if room > 0 else 0
                if admitted:
                    self._queue.append(batch.slice(0, admitted))
                    self._depth += admitted
                    self.enqueued += admitted
                    if self._depth > self.peak_depth:
                        self.peak_depth = self._depth
                self.elements_in += admitted + 1
                raise QueueFullError(
                    f"{self.name}: capacity {self.capacity} exceeded "
                    f"({admitted} of {count} admitted)",
                    accepted=admitted,
                    rejected=count - admitted,
                )
        self.elements_in += count
        self._queue.append(batch)
        self._depth += count
        self.enqueued += count
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth

    # -- scheduler side ------------------------------------------------------

    def drain(self, budget: int) -> int:
        """Deliver up to *budget* queued rows; returns how many.

        Elements leave in one slice through the consumer's
        ``receive_batch`` (whose default is a per-element loop, so the
        observable order is unchanged; consumers with a batched fast path
        get the whole slice at once).  Queued ``ColumnBatch`` runs leave
        through ``receive_columns`` — sliced to the budget, the
        remainder staying queued — so columnar batches stay columnar
        through the edge.
        """
        queue = self._queue
        delivered = 0
        while queue and delivered < budget:
            head = queue[0]
            if isinstance(head, ColumnBatch):
                take = min(budget - delivered, head.n)
                if take == head.n:
                    queue.popleft()
                    self.consumer.receive_columns(head, self.port)
                else:
                    queue[0] = head.slice(take, head.n)
                    self.consumer.receive_columns(
                        head.slice(0, take), self.port
                    )
                delivered += take
                continue
            # Collect the run of consecutive plain elements.
            count = 0
            limit = budget - delivered
            for item in queue:
                if count >= limit or isinstance(item, ColumnBatch):
                    break
                count += 1
            if count == 1:
                self.consumer.receive(queue.popleft(), self.port)
            else:
                batch = [queue.popleft() for _ in range(count)]
                self.consumer.receive_batch(batch, self.port)
            delivered += count
        self._depth -= delivered
        self.drained += delivered
        return delivered

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def has_room(self) -> bool:
        return self.capacity is None or self._depth < self.capacity

    def input_room(self) -> Optional[int]:
        """Free slots in the queue; ``None`` when unbounded."""
        if self.capacity is None:
            return None
        room = self.capacity - self._depth
        return room if room > 0 else 0

    def derive_properties(self, input_properties):
        # A FIFO queue reorders nothing.
        from repro.streams.properties import StreamProperties

        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]


class Runtime:
    """Round-robin cooperative scheduler over queued edges.

    Observability is opt-in: pass a :class:`repro.obs.trace.RingTracer`
    to record per-round and per-drain-slice events, and/or a
    :class:`repro.obs.registry.MetricRegistry` to keep queue-depth gauges
    and moved-element counters current (updated once per pump, so the
    per-slice hot loop is untouched when both are absent).
    """

    def __init__(
        self,
        batch: int = 32,
        reserve: int = 1,
        tracer=None,
        registry=None,
    ):
        if batch < 1:
            raise ValueError("batch must be positive")
        if reserve < 0:
            raise ValueError("reserve must be non-negative")
        self.batch = batch
        #: Slots left free in a bounded downstream queue when sizing a
        #: drain slice — headroom for operators that emit more than one
        #: element per input (a slice is never sized to land exactly on
        #: the capacity line unless only one slot is free).
        self.reserve = reserve
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        self._edges: List[QueuedEdge] = []
        #: (edge, depth gauge, peak gauge) handles, grown lazily as edges
        #: register — see _update_metrics.
        self._edge_gauges: List[tuple] = []
        self.rounds = 0

    def connect(
        self,
        producer: Operator,
        consumer: Operator,
        port: int = 0,
        capacity: Optional[int] = None,
    ) -> QueuedEdge:
        """Wire ``producer -> consumer`` through a queue."""
        edge = QueuedEdge(consumer, port=port, capacity=capacity)
        producer.subscribe(edge)
        self._edges.append(edge)
        return edge

    def edge_to(
        self,
        consumer: Operator,
        port: int = 0,
        capacity: Optional[int] = None,
    ) -> QueuedEdge:
        """A scheduled queue feeding *consumer* with no producer operator.

        For drivers that push elements from outside the operator graph
        (the CLI, replay harnesses): call ``edge.receive(...)`` to
        enqueue, and the runtime drains it like any connected edge.
        """
        edge = QueuedEdge(consumer, port=port, capacity=capacity)
        self._edges.append(edge)
        return edge

    def pump(self) -> int:
        """One scheduling round: drain each edge up to the batch size.

        Downstream-first order so one round moves elements at most one
        hop (modelling per-operator scheduling quanta); returns elements
        moved.

        Backpressure is applied per *slice* rather than per element: the
        consumer's free downstream room (its :meth:`Operator.output_room`)
        bounds the slice size, less :attr:`reserve` slots of headroom,
        and is re-probed between slices.  An unbounded consumer drains
        its whole budget in one slice.
        """
        moved = 0
        self.rounds += 1
        reserve = self.reserve
        tracer = self.tracer
        traced = tracer.enabled
        for edge in reversed(self._edges):
            budget = self.batch
            consumer = edge.consumer
            while budget > 0:
                depth = edge.depth
                if depth == 0:
                    break
                room = consumer.output_room()
                if room is None:
                    size = budget if budget < depth else depth
                elif room <= 0:
                    if traced:
                        tracer.record(
                            "backpressure", edge.name,
                            depth=depth, round=self.rounds,
                        )
                    break
                else:
                    size = min(budget, depth, max(1, room - reserve))
                moved += edge.drain(size)
                budget -= size
                if traced:
                    tracer.record(
                        "drain", edge.name,
                        size=size, budget=budget, depth=edge.depth,
                        round=self.rounds,
                    )
        if traced:
            tracer.record("pump", "runtime", round=self.rounds, moved=moved)
        if self.registry is not None:
            self._update_metrics(moved)
        return moved

    def _update_metrics(self, moved: int) -> None:
        """Refresh queue gauges and counters (once per pump round)."""
        registry = self.registry
        registry.counter("runtime_rounds_total").inc()
        registry.counter("runtime_elements_moved_total").inc(moved)
        # Instrument handles are resolved once per edge, not per round
        # (REP109): pump runs per batch, and the get-or-create lookup
        # rebuilds the labels key each call.
        gauges = self._edge_gauges
        while len(gauges) < len(self._edges):
            # This IS the once-per-edge handle resolution; the loop only
            # runs when a new edge registered since the last round.
            edge = self._edges[len(gauges)]
            labels = {"edge": edge.name}
            gauges.append(
                (
                    edge,
                    registry.gauge("runtime_queue_depth", labels),  # noqa: REP109
                    registry.gauge("runtime_queue_peak", labels),  # noqa: REP109
                )
            )
        for edge, depth_gauge, peak_gauge in gauges:
            depth_gauge.set(edge.depth)
            peak_gauge.set(edge.peak_depth)

    def run(self, max_rounds: Optional[int] = None) -> int:
        """Pump until every queue is empty (or *max_rounds*); returns the
        total elements moved."""
        total = 0
        rounds = 0
        while any(edge.depth for edge in self._edges):
            moved = self.pump()
            total += moved
            rounds += 1
            if moved == 0:
                raise RuntimeError(
                    "runtime stalled: backpressure cycle with no progress"
                )
            if max_rounds is not None and rounds >= max_rounds:
                break
        return total

    # -- statistics ----------------------------------------------------------

    @property
    def edges(self) -> Tuple[QueuedEdge, ...]:
        return tuple(self._edges)

    def depth_report(self) -> Dict[str, int]:
        """Current depth per edge (diagnostics)."""
        return {edge.name: edge.depth for edge in self._edges}

    def peak_report(self) -> Dict[str, int]:
        """Peak depth per edge — the queue-build-up statistic."""
        return {edge.name: edge.peak_depth for edge in self._edges}
