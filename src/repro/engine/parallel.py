"""Multicore execution of partitioned merge plans.

:class:`ParallelRuntime` runs N *shard programs* — factory-built
:class:`~repro.lmerge.base.LMergeBase` instances (or anything with the
same ``attach``/``detach``/``process_batch``/``stats`` surface) — each on
its own worker, fed through bounded per-shard input queues:

* ``backend="serial"`` — in-process, for baselines and debugging;
* ``backend="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  worker per shard.  Cheap interop (elements are shared, not copied), but
  CPU-bound merges contend on the GIL;
* ``backend="process"`` — a persistent :mod:`multiprocessing` worker per
  shard exchanging pickled micro-batch envelopes.  Pays serialization per
  envelope to escape the GIL, which wins for CPU-bound R3/R4 merges on
  multicore hardware.

Backpressure reuses the engine's semantics in the blocking world: a full
bounded input queue blocks :meth:`ParallelRuntime.submit` — the threaded
analogue of a :class:`~repro.engine.runtime.QueuedEdge` refusing elements
— so an overwhelmed shard throttles the partitioner instead of buffering
without bound.  Output queues are unbounded; callers drain them with
:meth:`poll` between submissions (the partition/union loop in
:mod:`repro.lmerge.shard` does), so output never deadlocks input.
"""

from __future__ import annotations

import multiprocessing
import queue
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.temporal.elements import Element

#: Builds one shard's merge; receives the sink callable capturing output.
ShardFactory = Callable[[Callable[[Element], None]], Any]

BACKENDS = ("serial", "thread", "process")


class ShardError(RuntimeError):
    """A shard worker died; carries the worker's traceback text."""

    def __init__(self, shard: int, details: str):
        super().__init__(f"shard {shard} failed:\n{details}")
        self.shard = shard
        self.details = details


class _MergeFactory:
    """Picklable ``cls(**kwargs)`` factory (process workers rebuild the
    merge on their side of the fork/spawn)."""

    def __init__(self, cls: type, kwargs: Optional[dict] = None):
        self.cls = cls
        self.kwargs = kwargs or {}

    def __call__(self, sink: Callable[[Element], None]) -> Any:
        return self.cls(sink=sink, **self.kwargs)


def _shard_loop(
    shard: int,
    factory: ShardFactory,
    get: Callable[[], Any],
    put: Callable[[Tuple], None],
    coalesce_stables: bool,
) -> None:
    """One worker's life: build the merge, apply envelopes until the
    ``None`` sentinel, report outputs after every batch and statistics at
    the end.  Runs identically on a thread or in a child process."""
    try:
        buffer: List[Element] = []
        merge = factory(buffer.append)
        while True:
            message = get()
            if message is None:
                put(("done", shard, merge.stats))
                return
            kind = message[0]
            if kind == "batch":
                merge.process_batch(
                    message[2], message[1], coalesce_stables=coalesce_stables
                )
                if buffer:
                    put(("out", shard, buffer[:]))
                    buffer.clear()
            elif kind == "attach":
                merge.attach(message[1], message[2])
            elif kind == "detach":
                merge.detach(message[1])
            else:  # pragma: no cover - driver and worker are in lockstep
                raise ValueError(f"unknown envelope kind {kind!r}")
    except BaseException:
        put(("error", shard, traceback.format_exc()))


class ParallelRuntime:
    """Drive N shard programs on parallel workers with bounded queues.

    Lifecycle::

        runtime = ParallelRuntime(factory, num_shards=4, backend="process")
        runtime.start()
        runtime.broadcast_attach(stream_id)
        runtime.submit(shard, stream_id, elements)   # blocks when full
        for shard, outputs in runtime.poll():        # drain ready output
            ...
        stats = runtime.close()                      # join; final outputs
        for shard, outputs in runtime.poll():        #   remain pollable
            ...

    *factory* is called once per worker with the output sink; for the
    process backend it must be picklable (see :func:`merge_factory`).
    """

    def __init__(
        self,
        factory: ShardFactory,
        num_shards: int,
        backend: str = "thread",
        queue_capacity: int = 64,
        coalesce_stables: bool = False,
        registry=None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        self.factory = factory
        self.num_shards = num_shards
        self.backend = backend
        self.queue_capacity = queue_capacity
        self.coalesce_stables = coalesce_stables
        #: Optional :class:`repro.obs.registry.MetricRegistry`: when set,
        #: submit/poll keep per-shard queue-depth gauges and element
        #: counters current (sampled per micro-batch, not per element).
        self.registry = registry
        self.submitted = 0
        self.collected = 0
        self._started = False
        self._closed = False
        self._pending: List[Tuple[int, List[Element]]] = []
        self._stats: List[Any] = []
        # Backend state, populated by start().
        self._inputs: List[Any] = []
        self._output: Any = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._processes: List[multiprocessing.Process] = []
        self._serial_shards: List[Any] = []
        self._serial_buffers: List[List[Element]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ParallelRuntime":
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        if self.backend == "serial":
            for shard in range(self.num_shards):
                buffer: List[Element] = []
                self._serial_buffers.append(buffer)
                self._serial_shards.append(self.factory(buffer.append))
        elif self.backend == "thread":
            self._inputs = [
                queue.Queue(maxsize=self.queue_capacity)
                for _ in range(self.num_shards)
            ]
            self._output = queue.SimpleQueue()
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="shard",
            )
            for shard in range(self.num_shards):
                self._executor.submit(
                    _shard_loop,
                    shard,
                    self.factory,
                    self._inputs[shard].get,
                    self._output.put,
                    self.coalesce_stables,
                )
        else:  # process
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._inputs = [
                context.Queue(maxsize=self.queue_capacity)
                for _ in range(self.num_shards)
            ]
            self._output = context.Queue()
            for shard in range(self.num_shards):
                process = context.Process(
                    target=_shard_loop,
                    args=(
                        shard,
                        self.factory,
                        self._inputs[shard].get,
                        self._output.put,
                        self.coalesce_stables,
                    ),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
        return self

    def close(self) -> List[Any]:
        """Send every worker its sentinel, gather final outputs and the
        per-shard statistics, and join the workers.

        Returns the per-shard stats list (``merge.stats`` objects, index =
        shard).  Remaining outputs stay queued for :meth:`poll`.
        """
        self._require_started()
        if self._closed:
            return self._stats
        self._closed = True
        if self.backend == "serial":
            self._stats = [shard.stats for shard in self._serial_shards]
            return self._stats
        stats: List[Any] = [None] * self.num_shards
        for shard_queue in self._inputs:
            shard_queue.put(None)
        done = 0
        while done < self.num_shards:
            message = self._output.get()
            if message[0] == "done":
                stats[message[1]] = message[2]
                done += 1
            elif message[0] == "error":
                self._abort()
                raise ShardError(message[1], message[2])
            else:
                self._note_output(message)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for process in self._processes:
            process.join(timeout=30)
        self._stats = stats
        return stats

    def _note_output(self, message: Tuple) -> None:
        """Stash an ``("out", shard, elements)`` message for :meth:`poll`."""
        if message[0] == "out":
            self._pending.append((message[1], message[2]))

    def _abort(self) -> None:
        """Tear workers down after a shard error."""
        if self._executor is not None:
            for shard_queue in self._inputs:
                try:
                    shard_queue.put_nowait(None)
                except queue.Full:
                    pass
            self._executor.shutdown(wait=False)
        for process in self._processes:
            process.terminate()

    # ------------------------------------------------------------------
    # Element flow
    # ------------------------------------------------------------------

    def broadcast_attach(self, stream_id, guarantee_from=None) -> None:
        """Attach *stream_id* on every shard (all shards share the input
        roster — each sees its partition of every input)."""
        from repro.temporal.time import MINUS_INFINITY

        if guarantee_from is None:
            guarantee_from = MINUS_INFINITY
        self._broadcast(("attach", stream_id, guarantee_from))

    def broadcast_detach(self, stream_id) -> None:
        self._broadcast(("detach", stream_id))

    def _broadcast(self, envelope: Tuple) -> None:
        self._require_open()
        if self.backend == "serial":
            for shard in self._serial_shards:
                if envelope[0] == "attach":
                    shard.attach(envelope[1], envelope[2])
                else:
                    shard.detach(envelope[1])
            return
        for shard_queue in self._inputs:
            shard_queue.put(envelope)

    def submit(self, shard: int, stream_id, elements: Sequence[Element]) -> None:
        """Feed one micro-batch from *stream_id* to *shard*.

        Blocks while the shard's bounded input queue is full — the
        backpressure path that throttles an overwhelming producer.
        """
        self._require_open()
        if not elements:
            return
        self.submitted += len(elements)
        registry = self.registry
        if registry is not None:
            labels = {"shard": shard}
            registry.counter("shard_elements_submitted_total", labels).inc(
                len(elements)
            )
            depth = self.queue_depth(shard)
            if depth is not None:
                gauge = registry.gauge("shard_queue_depth", labels)
                gauge.set(depth)
                peak = registry.gauge("shard_queue_peak", labels)
                if depth > peak.value:
                    peak.set(depth)
        if self.backend == "serial":
            merge = self._serial_shards[shard]
            buffer = self._serial_buffers[shard]
            merge.process_batch(
                list(elements), stream_id, coalesce_stables=self.coalesce_stables
            )
            if buffer:
                self._pending.append((shard, buffer[:]))
                buffer.clear()
            return
        self._inputs[shard].put(("batch", stream_id, list(elements)))

    def poll(self) -> List[Tuple[int, List[Element]]]:
        """All output micro-batches ready right now, as ``(shard,
        elements)`` pairs in arrival order (per-shard order is FIFO)."""
        self._require_started()
        ready = self._pending
        self._pending = []
        if self._output is not None:
            while True:
                try:
                    message = self._output.get_nowait()
                except queue.Empty:
                    break
                if message[0] == "error":
                    self._abort()
                    raise ShardError(message[1], message[2])
                if message[0] == "out":
                    ready.append((message[1], message[2]))
                # "done" messages are consumed by close().
        collected = sum(len(elements) for _, elements in ready)
        self.collected += collected
        if self.registry is not None and collected:
            self.registry.counter("shard_elements_collected_total").inc(
                collected
            )
        return ready

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self, shard: int) -> Optional[int]:
        """One shard's input-queue depth right now.

        Serial shards have no queue (always 0); ``None`` where the
        platform's queues cannot report a size (``qsize`` is unsupported
        on some macOS multiprocessing queues).
        """
        if self.backend == "serial" or not self._inputs:
            return 0
        try:
            return self._inputs[shard].qsize()
        except NotImplementedError:  # pragma: no cover - platform quirk
            return None

    def queue_depths(self) -> List[Optional[int]]:
        """Per-shard input-queue depths, index = shard."""
        return [self.queue_depth(shard) for shard in range(self.num_shards)]

    @property
    def stats(self) -> List[Any]:
        """Per-shard merge statistics; populated by :meth:`close`."""
        return self._stats

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("runtime not started; call start() first")

    def _require_open(self) -> None:
        self._require_started()
        if self._closed:
            raise RuntimeError("runtime already closed")

    def __enter__(self) -> "ParallelRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed and exc_type is None:
            self.close()
        elif not self._closed:
            # Error path: don't mask the original exception with a join.
            self._closed = True
            self._abort()


def merge_factory(cls: type, **kwargs) -> ShardFactory:
    """A picklable shard factory building ``cls(sink=..., **kwargs)``.

    Use this (not a lambda or closure) for the process backend: child
    workers unpickle the factory and construct their own merge instance.
    """
    return _MergeFactory(cls, kwargs)


def available_cores() -> int:
    """CPUs this process may run on (caps useful shard counts)."""
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()

