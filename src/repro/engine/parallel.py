"""Multicore execution of partitioned merge plans.

:class:`ParallelRuntime` runs N *shard programs* — factory-built
:class:`~repro.lmerge.base.LMergeBase` instances (or anything with the
same ``attach``/``detach``/``process_batch``/``stats`` surface) — each on
its own worker, fed through bounded per-shard input queues:

* ``backend="serial"`` — in-process, for baselines and debugging;
* ``backend="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  worker per shard.  Cheap interop (elements are shared, not copied), but
  CPU-bound merges contend on the GIL;
* ``backend="process"`` — a persistent :mod:`multiprocessing` worker per
  shard exchanging pickled micro-batch envelopes.  Pays serialization per
  envelope to escape the GIL, which wins for CPU-bound R3/R4 merges on
  multicore hardware.

Orthogonally to the backend, ``envelope`` selects the exchange currency:

* ``envelope="object"`` — micro-batches travel as element lists (the
  PR3-era path; the process backend pickles the object graph per hop);
* ``envelope="columnar"`` — micro-batches travel as
  :class:`~repro.engine.columnar.ColumnBatch`.  Serial and thread
  backends pass the batch by reference and the worker runs the merge's
  vectorized ``process_columns`` path; the process backend swaps the
  pickled queues for :class:`~repro.engine.shm.ShmRing` shared-memory
  rings and ships the batch's fixed-header binary encoding — a memcpy
  per column instead of a pickle per element.  Control messages travel
  the same ring, so per-shard ordering is preserved.

Backpressure reuses the engine's semantics in the blocking world: a full
bounded input queue (or input ring) blocks :meth:`ParallelRuntime.submit`
— the threaded analogue of a :class:`~repro.engine.runtime.QueuedEdge`
refusing elements — so an overwhelmed shard throttles the partitioner
instead of buffering without bound.  Queue-backed output is unbounded;
the shm output rings are bounded, so ``submit`` drains them while it
waits for input-ring room, which keeps the cycle deadlock-free.

When a :class:`~repro.obs.registry.MetricRegistry` is attached, the shm
exchange keeps per-shard gauges and counters current: bytes shipped per
batch, encode/decode seconds, and ring occupancy (see docs/COLUMNAR.md).
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import sys
import traceback
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.columnar import ColumnBatch
from repro.engine import shm as shm_rings
from repro.engine.shm import PeerDeadError, RingClosedError, ShmRing
from repro.temporal.elements import Element

#: Builds one shard's merge; receives the sink callable capturing output.
ShardFactory = Callable[[Callable[[Element], None]], Any]

BACKENDS = ("serial", "thread", "process")
ENVELOPES = ("object", "columnar")

#: One poll()/submit() result: an element list (object envelope, or any
#: queue-backed backend's output) or a ColumnBatch (shm exchange output).
Batch = Union[List[Element], ColumnBatch]


class ShardError(RuntimeError):
    """A shard worker died; carries the worker's traceback text."""

    def __init__(self, shard: int, details: str):
        super().__init__(f"shard {shard} failed:\n{details}")
        self.shard = shard
        self.details = details


class _MergeFactory:
    """Picklable ``cls(**kwargs)`` factory (process workers rebuild the
    merge on their side of the fork/spawn)."""

    def __init__(self, cls: type, kwargs: Optional[dict] = None):
        self.cls = cls
        self.kwargs = kwargs or {}

    def __call__(self, sink: Callable[[Element], None]) -> Any:
        return self.cls(sink=sink, **self.kwargs)


def _shard_loop(
    shard: int,
    factory: ShardFactory,
    get: Callable[[], Any],
    put: Callable[[Tuple], None],
    coalesce_stables: bool,
) -> None:
    """One worker's life: build the merge, apply envelopes until the
    ``None`` sentinel, report outputs after every batch and statistics at
    the end.  Runs identically on a thread or in a child process."""
    try:
        buffer: List[Element] = []
        merge = factory(buffer.append)
        while True:
            message = get()
            if message is None:
                put(("done", shard, merge.stats))
                return
            kind = message[0]
            if kind == "batch":
                merge.process_batch(
                    message[2], message[1], coalesce_stables=coalesce_stables
                )
                if buffer:
                    put(("out", shard, buffer[:]))
                    buffer.clear()
            elif kind == "cols":
                # Columnar envelope on a queue backend: the batch arrives
                # by reference and the merge walks its columns directly.
                merge.process_columns(
                    message[2], message[1], coalesce_stables=coalesce_stables
                )
                if buffer:
                    put(("out", shard, buffer[:]))
                    buffer.clear()
            elif kind == "attach":
                merge.attach(message[1], message[2])
            elif kind == "detach":
                merge.detach(message[1])
            else:  # pragma: no cover - driver and worker are in lockstep
                raise ValueError(f"unknown envelope kind {kind!r}")
    except BaseException:
        put(("error", shard, traceback.format_exc()))


def _shm_shard_loop(
    shard: int,
    factory: ShardFactory,
    in_ring: ShmRing,
    out_ring: ShmRing,
    coalesce_stables: bool,
    telemetry_interval: float = 0.0,
) -> None:
    """The shm-exchange worker: decode :data:`~repro.engine.shm.BATCH`
    frames straight out of the input ring, run the columnar merge path,
    and encode any output back into the output ring.  Control frames
    (attach/detach/shutdown) share the input ring, so they apply in
    exactly the order the driver issued them.

    With *telemetry_interval* > 0 the worker keeps a local registry and
    observer, and ships snapshot deltas to the driver as best-effort
    :data:`~repro.engine.shm.TELEM` frames — dropped (never blocking)
    when the output ring is full.
    """
    try:
        in_ring.child_deregister()
        out_ring.child_deregister()
        parent = multiprocessing.parent_process()
        if parent is not None:
            # A dead driver turns blocking ring waits into PeerDeadError
            # (a RingClosedError), so the worker exits instead of
            # spinning as an orphan on a ring nobody will ever drain.
            in_ring.set_liveness(parent.is_alive)
            out_ring.set_liveness(parent.is_alive)
        buffer: List[Element] = []
        merge = factory(buffer.append)
        emitter = observer = None
        processed = 0
        if telemetry_interval > 0:
            # Imported here: obs stays out of the engine's import graph
            # (and out of the fork image) unless telemetry is on.
            from repro.obs.lmerge_obs import LMergeObserver
            from repro.obs.registry import MetricRegistry
            from repro.obs.telemetry import TelemetryEmitter
            from repro.obs.trace import RingTracer

            worker_registry = MetricRegistry()
            observer = LMergeObserver(merge, worker_registry)
            worker_tracer = RingTracer(capacity=4096)
            emitter = TelemetryEmitter(
                worker_registry,
                shard,
                tracer=worker_tracer,
                interval=telemetry_interval,
            )
            batch_seconds = worker_registry.histogram(
                "shard_batch_seconds",
                help="Worker-side wall seconds per input batch.",
            )
        while True:
            frame = in_ring.get()
            assert frame is not None  # blocking get
            kind, payload = frame
            if kind == shm_rings.BATCH:
                sid_len = int.from_bytes(payload[:2], "little")
                stream_id = pickle.loads(payload[2 : 2 + sid_len])
                batch = ColumnBatch.decode(
                    memoryview(payload)[2 + sid_len :]
                )
                started = perf_counter() if emitter is not None else 0.0
                merge.process_columns(
                    batch, stream_id, coalesce_stables=coalesce_stables
                )
                if buffer:
                    out = ColumnBatch.from_elements(buffer[:])
                    buffer.clear()
                    # Lineage: the output inherits the triggering input
                    # batch's trace id, closing the submit->output span.
                    out.trace_id = batch.trace_id
                    size, prebuilt = out.encoded_size()
                    out_ring.put_frame(
                        shm_rings.OUT,
                        size,
                        lambda view: out.encode_into(view, prebuilt),
                    )
                if emitter is not None:
                    processed += batch.n
                    duration = perf_counter() - started
                    batch_seconds.observe(duration)
                    # The worker half of the cross-process trace: ships
                    # in the next delta and stitches (by tid) to the
                    # driver's exchange span for the same batch.
                    worker_tracer.record(
                        "span",
                        "shard-batch",
                        tid=batch.trace_id,
                        n=batch.n,
                        dur=duration,
                    )
                    observer.sample(clock=float(processed))
                    delta = emitter.maybe_delta()
                    if delta is not None:
                        out_ring.put_pickle(
                            shm_rings.TELEM, delta, timeout=0
                        )
            elif kind == shm_rings.CTRL:
                message = pickle.loads(payload)
                if message is None:
                    if emitter is not None:
                        observer.sample(clock=float(processed))
                        delta = emitter.delta()
                        if delta is not None:
                            out_ring.put_pickle(
                                shm_rings.TELEM, delta, timeout=0
                            )
                    out_ring.put_pickle(shm_rings.DONE, merge.stats)
                    return
                if message[0] == "attach":
                    merge.attach(message[1], message[2])
                elif message[0] == "detach":
                    merge.detach(message[1])
                else:  # pragma: no cover - driver and worker in lockstep
                    raise ValueError(f"unknown control {message!r}")
            else:  # pragma: no cover - driver and worker in lockstep
                raise ValueError(f"unexpected frame kind {kind}")
    except RingClosedError:  # pragma: no cover - driver aborted first
        pass
    except BaseException:
        details = traceback.format_exc()
        delivered = False
        try:
            delivered = out_ring.put_pickle(
                shm_rings.ERR, details, timeout=5.0
            )
        except Exception:  # pragma: no cover - ring torn down
            pass
        if not delivered:  # pragma: no cover - ERR frame could not land
            # Last resort: the driver will only see "worker died without
            # reporting stats", so leave the real cause on stderr.
            sys.stderr.write(f"[shm shard {shard}] {details}\n")


class ParallelRuntime:
    """Drive N shard programs on parallel workers with bounded queues.

    Lifecycle::

        runtime = ParallelRuntime(factory, num_shards=4, backend="process")
        runtime.start()
        runtime.broadcast_attach(stream_id)
        runtime.submit(shard, stream_id, elements)   # blocks when full
        for shard, outputs in runtime.poll():        # drain ready output
            ...
        stats = runtime.close()                      # join; final outputs
        for shard, outputs in runtime.poll():        #   remain pollable
            ...

    *factory* is called once per worker with the output sink; for the
    process backend it must be picklable (see :func:`merge_factory`).
    """

    def __init__(
        self,
        factory: ShardFactory,
        num_shards: int,
        backend: str = "thread",
        queue_capacity: int = 64,
        coalesce_stables: bool = False,
        registry=None,
        envelope: str = "columnar",
        ring_capacity: int = 1 << 20,
        telemetry_interval: float = 0.0,
        tracer=None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
        if envelope not in ENVELOPES:
            raise ValueError(
                f"unknown envelope {envelope!r}; expected {ENVELOPES}"
            )
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        self.factory = factory
        self.num_shards = num_shards
        self.backend = backend
        self.envelope = envelope
        self.queue_capacity = queue_capacity
        self.ring_capacity = ring_capacity
        self.coalesce_stables = coalesce_stables
        #: Optional :class:`repro.obs.registry.MetricRegistry`: when set,
        #: submit/poll keep per-shard queue-depth gauges and element
        #: counters current (sampled per micro-batch, not per element).
        self.registry = registry
        #: Seconds between worker TELEM emissions (0 disables live
        #: telemetry).  Only meaningful on the shm exchange — the other
        #: backends share the driver's address space already.
        self.telemetry_interval = telemetry_interval
        #: Live TELEM merge target, built lazily in :meth:`start` when
        #: both a registry and a telemetry interval are configured.
        self.telemetry = None
        #: Optional callback fired after each merged TELEM frame with the
        #: emitting shard — the live-sampling hook
        #: (:meth:`repro.obs.lmerge_obs.ShardObserver.sample_shard`).
        self.on_telemetry: Optional[Callable[[int], None]] = None
        self._tracer = tracer
        self.submitted = 0
        self.collected = 0
        #: Grace period close() gives each worker before escalating to
        #: terminate()/kill() (see :meth:`_join_or_escalate`).
        self.close_join_timeout = 30.0
        self._started = False
        self._closed = False
        self._pending: List[Tuple[int, Batch]] = []
        self._stats: List[Any] = []
        # Backend state, populated by start().
        self._inputs: List[Any] = []
        self._output: Any = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._processes: List[multiprocessing.Process] = []
        self._serial_shards: List[Any] = []
        self._serial_buffers: List[List[Element]] = []
        # Shm-exchange state (process backend + columnar envelope).
        self._in_rings: List[ShmRing] = []
        self._out_rings: List[ShmRing] = []
        self._final_stats: Dict[int, Any] = {}

    @property
    def _uses_shm(self) -> bool:
        return self.backend == "process" and self.envelope == "columnar"

    def _init_telemetry(self) -> None:
        """Build the driver-side TELEM aggregator when configured.

        Imported lazily so the engine never touches :mod:`repro.obs`
        unless live telemetry is actually requested.
        """
        if self.registry is not None and self.telemetry_interval > 0:
            from repro.obs.telemetry import TelemetryAggregator

            self.telemetry = TelemetryAggregator(self.registry, self._tracer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ParallelRuntime":
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        if self.backend == "serial":
            for shard in range(self.num_shards):
                buffer: List[Element] = []
                self._serial_buffers.append(buffer)
                self._serial_shards.append(self.factory(buffer.append))
        elif self.backend == "thread":
            self._inputs = [
                queue.Queue(maxsize=self.queue_capacity)
                for _ in range(self.num_shards)
            ]
            self._output = queue.SimpleQueue()
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="shard",
            )
            for shard in range(self.num_shards):
                self._executor.submit(
                    _shard_loop,
                    shard,
                    self.factory,
                    self._inputs[shard].get,
                    self._output.put,
                    self.coalesce_stables,
                )
        elif self._uses_shm:
            self._init_telemetry()
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            for shard in range(self.num_shards):
                in_ring = ShmRing(self.ring_capacity)
                out_ring = ShmRing(self.ring_capacity)
                self._in_rings.append(in_ring)
                self._out_rings.append(out_ring)
                process = context.Process(
                    target=_shm_shard_loop,
                    args=(
                        shard,
                        self.factory,
                        in_ring,
                        out_ring,
                        self.coalesce_stables,
                        self.telemetry_interval,
                    ),
                    daemon=True,
                )
                process.start()
                # A dead worker turns blocking ring waits into
                # PeerDeadError instead of an infinite spin.
                in_ring.set_liveness(process.is_alive)
                out_ring.set_liveness(process.is_alive)
                self._processes.append(process)
        else:  # process backend, object envelope
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._inputs = [
                context.Queue(maxsize=self.queue_capacity)
                for _ in range(self.num_shards)
            ]
            self._output = context.Queue()
            for shard in range(self.num_shards):
                process = context.Process(
                    target=_shard_loop,
                    args=(
                        shard,
                        self.factory,
                        self._inputs[shard].get,
                        self._output.put,
                        self.coalesce_stables,
                    ),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
        return self

    def close(self) -> List[Any]:
        """Send every worker its sentinel, gather final outputs and the
        per-shard statistics, and join the workers.

        Returns the per-shard stats list (``merge.stats`` objects, index =
        shard).  Remaining outputs stay queued for :meth:`poll`.
        """
        self._require_started()
        if self._closed:
            return self._stats
        self._closed = True
        if self.backend == "serial":
            self._stats = [shard.stats for shard in self._serial_shards]
            return self._stats
        if self._uses_shm:
            return self._close_shm()
        stats: List[Any] = [None] * self.num_shards
        for shard_queue in self._inputs:
            shard_queue.put(None)
        done = 0
        while done < self.num_shards:
            message = self._output.get()
            if message[0] == "done":
                stats[message[1]] = message[2]
                done += 1
            elif message[0] == "error":
                self._abort()
                raise ShardError(message[1], message[2])
            else:
                self._note_output(message)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._join_or_escalate(stats)
        self._stats = stats
        return stats

    def _close_shm(self) -> List[Any]:
        """Shm-exchange shutdown: sentinel through each input ring, then
        drain each output ring to its worker's DONE frame."""
        for shard, in_ring in enumerate(self._in_rings):
            try:
                while not in_ring.put_pickle(
                    shm_rings.CTRL, None, timeout=0.05
                ):
                    self._drain_shm_outputs()
            except PeerDeadError:
                self._abort()
                raise ShardError(
                    shard, "worker died before shutdown"
                ) from None
        stats: List[Any] = [None] * self.num_shards
        for shard in range(self.num_shards):
            while shard not in self._final_stats:
                got = self._drain_shm_ring(shard, timeout=1.0)
                if not got and not self._processes[shard].is_alive():
                    self._abort()
                    raise ShardError(
                        shard, "worker died without reporting stats"
                    )
            stats[shard] = self._final_stats[shard]
        self._join_or_escalate(stats)
        # Every worker's DONE is in, so the rings are drained (per-shard
        # FIFO puts all OUT frames before DONE); any remaining output now
        # lives in _pending, which poll() keeps serving after close.
        for ring in (*self._in_rings, *self._out_rings):
            ring.destroy()
        self._in_rings = []
        self._out_rings = []
        self._stats = stats
        return stats

    def _drain_shm_outputs(self) -> None:
        """One non-blocking sweep over every shard's output ring."""
        if not self._out_rings:  # rings already torn down by close()
            return
        for shard in range(self.num_shards):
            while self._drain_shm_ring(shard, timeout=0):
                pass

    def _drain_shm_ring(self, shard: int, timeout: float) -> bool:
        """Consume at most one frame from *shard*'s output ring.

        OUT frames decode into pending batches, DONE frames park the
        worker's final stats for :meth:`_close_shm`, ERR frames abort.
        Returns True when a frame was consumed.
        """
        try:
            frame = self._out_rings[shard].get(timeout=timeout)
        except RingClosedError:  # pragma: no cover - abort already ran
            return False
        if frame is None:
            return False
        kind, payload = frame
        if kind == shm_rings.OUT:
            registry = self.registry
            if registry is not None:
                started = perf_counter()
                batch = ColumnBatch.decode(payload)
                labels = {"shard": shard}
                registry.counter(
                    "exchange_decode_seconds_total", labels
                ).inc(perf_counter() - started)
                registry.counter("exchange_bytes_total", labels).inc(
                    len(payload)
                )
            else:
                batch = ColumnBatch.decode(payload)
            if self.telemetry is not None and batch.trace_id:
                self.telemetry.note_output(batch.trace_id)
            self._pending.append((shard, batch))
        elif kind == shm_rings.TELEM:
            if self.telemetry is not None:
                self.telemetry.merge(pickle.loads(payload))
                if self.on_telemetry is not None:
                    self.on_telemetry(shard)
        elif kind == shm_rings.DONE:
            self._final_stats[shard] = pickle.loads(payload)
        elif kind == shm_rings.ERR:
            details = pickle.loads(payload)
            self._abort()
            raise ShardError(shard, details)
        return True

    def _note_output(self, message: Tuple) -> None:
        """Stash an ``("out", shard, elements)`` message for :meth:`poll`."""
        if message[0] == "out":
            self._pending.append((message[1], message[2]))

    def _join_or_escalate(self, stats: List[Any]) -> None:
        """Join every worker, escalating join(30) -> terminate() ->
        kill() for any that refuse to exit.

        An escalation is recorded on the shard's
        :attr:`~repro.lmerge.base.MergeStats.escalations` counter (when
        the stats object carries one) and, with a registry attached, on
        the ``shard_close_escalations_total`` counter — a hung worker at
        shutdown is a bug signal, not business as usual.
        """
        for shard, process in enumerate(self._processes):
            process.join(timeout=self.close_join_timeout)
            if not process.is_alive():
                continue
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck in kernel
                process.kill()
                process.join(timeout=5)
            if (
                shard < len(stats)
                and stats[shard] is not None
                and hasattr(stats[shard], "escalations")
            ):
                stats[shard].escalations += 1
            if self.registry is not None:
                # Escalations are a per-close rarity, not a hot loop.
                self.registry.counter(  # noqa: REP109
                    "shard_close_escalations_total", {"shard": shard}
                ).inc()

    def _abort(self) -> None:
        """Tear workers down after a shard error."""
        if self._executor is not None:
            for shard_queue in self._inputs:
                try:
                    shard_queue.put_nowait(None)
                except queue.Full:
                    pass
            self._executor.shutdown(wait=False)
        for ring in (*self._in_rings, *self._out_rings):
            if ring is not None:
                ring.close_ring()
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
        for process in self._processes:
            if process is not None:
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - stuck in kernel
                    process.kill()
                    process.join(timeout=5)
        for ring in (*self._in_rings, *self._out_rings):
            if ring is not None:
                ring.destroy()
        self._in_rings = []
        self._out_rings = []

    # ------------------------------------------------------------------
    # Element flow
    # ------------------------------------------------------------------

    def broadcast_attach(self, stream_id, guarantee_from=None) -> None:
        """Attach *stream_id* on every shard (all shards share the input
        roster — each sees its partition of every input)."""
        from repro.temporal.time import MINUS_INFINITY

        if guarantee_from is None:
            guarantee_from = MINUS_INFINITY
        self._broadcast(("attach", stream_id, guarantee_from))

    def broadcast_detach(self, stream_id) -> None:
        self._broadcast(("detach", stream_id))

    def _broadcast(self, message: Tuple) -> None:
        self._require_open()
        if self.backend == "serial":
            for shard in self._serial_shards:
                if message[0] == "attach":
                    shard.attach(message[1], message[2])
                else:
                    shard.detach(message[1])
            return
        if self._uses_shm:
            for shard, in_ring in enumerate(self._in_rings):
                try:
                    while not in_ring.put_pickle(
                        shm_rings.CTRL, message, timeout=0.05
                    ):
                        self._drain_shm_outputs()
                except PeerDeadError:
                    self._abort()
                    raise ShardError(
                        shard,
                        f"worker process died (control {message[0]!r} "
                        "undeliverable)",
                    ) from None
            return
        for shard_queue in self._inputs:
            shard_queue.put(message)

    def submit(
        self, shard: int, stream_id, elements: Union[Sequence[Element], ColumnBatch]
    ) -> None:
        """Feed one micro-batch from *stream_id* to *shard*.

        *elements* may be an element sequence or a
        :class:`~repro.engine.columnar.ColumnBatch`; either is converted
        to the runtime's configured envelope at this boundary.  Blocks
        while the shard's bounded input queue (or ring) is full — the
        backpressure path that throttles an overwhelming producer.
        """
        self._require_open()
        if not len(elements):
            return
        self.submitted += len(elements)
        registry = self.registry
        if registry is not None:
            labels = {"shard": shard}
            registry.counter("shard_elements_submitted_total", labels).inc(
                len(elements)
            )
            depth = self.queue_depth(shard)
            if depth is not None:
                gauge = registry.gauge("shard_queue_depth", labels)
                gauge.set(depth)
                peak = registry.gauge("shard_queue_peak", labels)
                if depth > peak.value:
                    peak.set(depth)
        is_batch = isinstance(elements, ColumnBatch)
        if self.envelope == "columnar":
            batch = (
                elements
                if is_batch
                else ColumnBatch.from_elements(list(elements))
            )
            if self.backend == "serial":
                merge = self._serial_shards[shard]
                buffer = self._serial_buffers[shard]
                merge.process_columns(
                    batch, stream_id, coalesce_stables=self.coalesce_stables
                )
                if buffer:
                    self._pending.append((shard, buffer[:]))
                    buffer.clear()
            elif self.backend == "thread":
                self._inputs[shard].put(("cols", stream_id, batch))
            else:
                self._submit_shm(shard, stream_id, batch)
            return
        plain = elements.to_elements() if is_batch else list(elements)
        if self.backend == "serial":
            merge = self._serial_shards[shard]
            buffer = self._serial_buffers[shard]
            merge.process_batch(
                list(plain), stream_id, coalesce_stables=self.coalesce_stables
            )
            if buffer:
                self._pending.append((shard, buffer[:]))
                buffer.clear()
            return
        self._inputs[shard].put(("batch", stream_id, list(plain)))

    def _submit_shm(self, shard: int, stream_id, batch: ColumnBatch) -> None:
        """Encode one batch straight into *shard*'s input ring.

        While the ring is full, the driver drains the output rings — the
        move that keeps bounded-in/bounded-out cycles deadlock-free.
        """
        registry = self.registry
        started = perf_counter() if registry is not None else 0.0
        telemetry = self.telemetry
        if telemetry is not None:
            # Stamp lineage before encoding: the id rides the RCB1 frame
            # into the worker and back on the triggering output batch.
            batch.trace_id = telemetry.next_trace_id(shard)
            telemetry.note_submit(batch.trace_id)
        size, prebuilt = batch.encoded_size()
        sid_blob = pickle.dumps(stream_id, pickle.HIGHEST_PROTOCOL)
        frame_size = 2 + len(sid_blob) + size

        def fill(view: memoryview) -> None:
            view[0:2] = len(sid_blob).to_bytes(2, "little")
            view[2 : 2 + len(sid_blob)] = sid_blob
            batch.encode_into(view[2 + len(sid_blob) :], prebuilt)

        ring = self._in_rings[shard]
        if registry is not None:
            encode_seconds = perf_counter() - started
            labels = {"shard": shard}
            registry.counter("exchange_batches_total", labels).inc()
            registry.counter("exchange_bytes_total", labels).inc(frame_size)
            registry.counter("exchange_encode_seconds_total", labels).inc(
                encode_seconds
            )
        try:
            while not ring.put_frame(
                shm_rings.BATCH, frame_size, fill, timeout=0.05
            ):
                self._drain_shm_outputs()
        except PeerDeadError:
            exitcode = self._processes[shard].exitcode
            self._abort()
            raise ShardError(
                shard,
                f"worker process died mid-stream (exitcode {exitcode})",
            ) from None
        if registry is not None:
            registry.gauge("exchange_ring_occupancy", {"shard": shard}).set(
                ring.occupancy
            )

    def poll(self) -> List[Tuple[int, Batch]]:
        """All output micro-batches ready right now, as ``(shard,
        batch)`` pairs in arrival order (per-shard order is FIFO).

        A batch is an element list, except on the shm exchange where it
        is a :class:`~repro.engine.columnar.ColumnBatch` (consumers
        dispatch on type; ``len`` works on both).
        """
        self._require_started()
        if self._uses_shm:
            self._drain_shm_outputs()
        ready = self._pending
        self._pending = []
        if self._output is not None:
            while True:
                try:
                    message = self._output.get_nowait()
                except queue.Empty:
                    break
                if message[0] == "error":
                    self._abort()
                    raise ShardError(message[1], message[2])
                if message[0] == "out":
                    ready.append((message[1], message[2]))
                # "done" messages are consumed by close().
        collected = sum(len(elements) for _, elements in ready)
        self.collected += collected
        if self.registry is not None and collected:
            self.registry.counter("shard_elements_collected_total").inc(
                collected
            )
        return ready

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self, shard: int) -> Optional[int]:
        """One shard's input-queue depth right now.

        Serial shards have no queue (always 0); ``None`` where the
        platform's queues cannot report a size (``qsize`` is unsupported
        on some macOS multiprocessing queues).
        """
        if self._uses_shm:
            return self._in_rings[shard].frames if self._in_rings else 0
        if self.backend == "serial" or not self._inputs:
            return 0
        try:
            return self._inputs[shard].qsize()
        except NotImplementedError:  # pragma: no cover - platform quirk
            return None

    def queue_depths(self) -> List[Optional[int]]:
        """Per-shard input-queue depths, index = shard."""
        return [self.queue_depth(shard) for shard in range(self.num_shards)]

    @property
    def stats(self) -> List[Any]:
        """Per-shard merge statistics; populated by :meth:`close`."""
        return self._stats

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("runtime not started; call start() first")

    def _require_open(self) -> None:
        self._require_started()
        if self._closed:
            raise RuntimeError("runtime already closed")

    def __enter__(self) -> "ParallelRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed and exc_type is None:
            self.close()
        elif not self._closed:
            # Error path: don't mask the original exception with a join.
            self._closed = True
            self._abort()


def merge_factory(cls: type, **kwargs) -> ShardFactory:
    """A picklable shard factory building ``cls(sink=..., **kwargs)``.

    Use this (not a lambda or closure) for the process backend: child
    workers unpickle the factory and construct their own merge instance.
    """
    return _MergeFactory(cls, kwargs)


def available_cores() -> int:
    """CPUs this process may run on (caps useful shard counts)."""
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()

