"""A push-based temporal mini-DSMS.

The substrate standing in for StreamInsight: enough engine to host LMerge
in realistic query plans —

* :mod:`repro.engine.operator` — the push-based :class:`Operator` protocol
  (insert/adjust/stable handlers, subscriptions, feedback hooks, property
  declaration);
* :mod:`repro.engine.simulation` — a discrete-event clock, delay channels
  (lag, bursts, congestion windows), and single-server plan queues used by
  the timing experiments (Figures 5, 8, 9, 10);
* :mod:`repro.engine.query` — query-graph assembly, compile-time stream
  property inference (Section IV-G), and offline execution.
"""

from repro.engine.operator import Operator, CallbackSink, CollectorSink
from repro.engine.simulation import (
    BurstyDelay,
    CongestionWindows,
    DelayModel,
    FixedLag,
    NoDelay,
    Simulation,
    SimulatedChannel,
    SimulatedPlan,
)
from repro.engine.query import Query, infer_properties
from repro.engine.runtime import QueuedEdge, Runtime
from repro.engine.parallel import ParallelRuntime, ShardError, merge_factory

__all__ = [
    "Operator",
    "CallbackSink",
    "CollectorSink",
    "Simulation",
    "SimulatedChannel",
    "SimulatedPlan",
    "DelayModel",
    "NoDelay",
    "FixedLag",
    "BurstyDelay",
    "CongestionWindows",
    "Query",
    "infer_properties",
    "Runtime",
    "QueuedEdge",
    "ParallelRuntime",
    "ShardError",
    "merge_factory",
]
