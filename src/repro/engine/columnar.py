"""Struct-of-arrays stream batches: the columnar hot-path currency.

``BENCH_PR3.json`` recorded the cost of shipping micro-batches as lists
of per-element ``Insert``/``Adjust`` objects: the process backend paid a
pickle round-trip per element and collapsed to 0.09-0.41x of the batched
baseline.  :class:`ColumnBatch` replaces the object envelope with
parallel columns — one ``array``/``memoryview`` per field — plus a
payload arena, so that

* slicing a batch is (near) zero-copy: numeric columns are sliced
  ``memoryview``\\ s, payloads are shared by reference;
* crossing a process boundary is a fixed-header binary encode into a
  shared-memory ring (:mod:`repro.engine.shm`) — a memcpy per column,
  never a pickle of an object graph (payload bytes are encoded once per
  batch into the arena);
* the merge hot paths (``LMergeBase.process_columns`` and the vectorized
  ``_insert_columns`` overloads in LMR1/LMR3+) walk the columns directly
  and materialize element objects only for the rows they actually emit.

Layout
------
A batch of ``n`` rows carries:

=========  =====================================================
column     contents
=========  =====================================================
kinds      ``bytes`` of :data:`KIND_INSERT` / :data:`KIND_ADJUST`
           / :data:`KIND_STABLE`, one per row
vs         primary timestamp: ``Vs`` for data rows, ``Vc`` for
           stables
ve         ``Ve`` for data rows (0 for stables)
v_old      ``Vold`` for adjust rows; the column is absent when
           the batch contains no adjusts
payloads   payload *objects* by reference (in-process), or one
           pickled payload-list blob — the arena — decoded
           lazily in a single ``pickle.loads`` (wire form)
=========  =====================================================

Timestamp columns use typecode ``'q'`` (exact int64) when every
timestamp in the batch is a finite ``int``, else ``'d'`` (float64 —
exact for ints up to 2**53; infinities are representable natively).
``to_elements`` after a float64 round trip may therefore return ``5.0``
where ``5`` went in; the two compare and hash equal everywhere the
engine cares (index keys, TDB reconstitution, element ``__eq__``).

The binary encoding (``encode``/``decode``) is versioned and
self-describing — it is the designated wire format for the future
``repro.serve`` front door; see docs/COLUMNAR.md.
"""

from __future__ import annotations

import pickle
from array import array
from struct import Struct
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.temporal.elements import (
    KIND_ADJUST,
    KIND_INSERT,
    KIND_STABLE,
    Adjust,
    Element,
    Insert,
    Stable,
)

__all__ = [
    "KIND_INSERT",
    "KIND_ADJUST",
    "KIND_STABLE",
    "ColumnBatch",
    "ColumnarError",
]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Fixed frame header: magic, version, timestamp typecode, flags, row
#: count, arena byte length.
_HEADER = Struct("<4sBBHIQ")
_MAGIC = b"RCB1"
_VERSION = 1
_FLAG_HAS_VOLD = 1
#: A u64 trace id follows the fixed header.  Flag-gated so batches
#: without trace context (the default) keep the PR 6 wire form
#: byte-for-byte — old frames decode unchanged, and the 8 bytes are
#: only paid when a tracer is actually stamping lineage.
_FLAG_HAS_TRACE = 2
_TRACE = Struct("<Q")

#: int64 bounds for the exact-integer column representation.
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

_EMPTY_Q = memoryview(array("q"))

#: For each kind byte, the two other kind bytes (run-boundary scan).
_OTHER_KINDS = {
    KIND_INSERT: (KIND_ADJUST, KIND_STABLE),
    KIND_ADJUST: (KIND_INSERT, KIND_STABLE),
    KIND_STABLE: (KIND_INSERT, KIND_ADJUST),
}


class ColumnarError(ValueError):
    """A batch that cannot be represented or decoded columnarly."""


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


class ColumnBatch:
    """An immutable struct-of-arrays slice of one stream's elements.

    Build with :meth:`from_elements` (in-process, payloads by reference)
    or :meth:`decode` (wire form, payloads lazily unpickled from the
    arena).  ``slice`` shares the parent's column storage.
    """

    __slots__ = (
        "n",
        "kinds",
        "tcode",
        "vs",
        "ve",
        "v_old",
        "_payloads",
        "_pstart",
        "_arena",
        "_arena_rows",
        "_hashes",
        "_elements",
        "_estart",
        "trace_id",
    )

    def __init__(
        self,
        n: int,
        kinds: bytes,
        tcode: str,
        vs: memoryview,
        ve: memoryview,
        v_old: Optional[memoryview],
        payloads: Optional[list],
        pstart: int = 0,
        arena: Optional[bytes] = None,
        arena_rows: int = 0,
    ):
        self.n = n
        self.kinds = kinds
        self.tcode = tcode
        self.vs = vs
        self.ve = ve
        self.v_old = v_old
        self._payloads = payloads
        #: Row 0's index into the (shared) payload list — the arena
        #: decodes to the *parent* batch's full list, so slices keep an
        #: offset instead of copying.
        self._pstart = pstart
        self._arena = arena
        self._arena_rows = arena_rows
        self._hashes: Optional[array] = None
        self._elements: Optional[Sequence[Element]] = None
        self._estart = 0
        #: Causal trace context (0 = none): a compact span id stamped by
        #: the driver at submit and carried through partition/exchange so
        #: cross-process span events stitch into one trace.
        self.trace_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_elements(cls, elements: Sequence[Element]) -> "ColumnBatch":
        """Columnarize a slice of elements; payloads stay by reference.

        One pass collects the raw columns; a second pass freezes them
        into ``'q'`` (exact int64) or ``'d'`` (float64) arrays.  The
        original element objects are retained so ``to_elements`` on an
        unsliced batch is free.
        """
        n = len(elements)
        kinds = bytearray(n)
        vs_raw: List = [0] * n
        ve_raw: List = [0] * n
        vold_raw: Optional[List] = None
        payloads: List = [None] * n
        all_int = True
        for i, element in enumerate(elements):
            c = element.__class__
            if c is Insert:
                vs = element.vs
                ve = element.ve
                vs_raw[i] = vs
                ve_raw[i] = ve
                payloads[i] = element.payload
                if all_int and not (
                    type(vs) is int and type(ve) is int
                ):
                    all_int = False
            elif c is Stable:
                kinds[i] = KIND_STABLE
                vc = element.vc
                vs_raw[i] = vc
                if all_int and type(vc) is not int:
                    all_int = False
            elif c is Adjust:
                kinds[i] = KIND_ADJUST
                if vold_raw is None:
                    vold_raw = [0] * n
                vs = element.vs
                ve = element.ve
                v_old = element.v_old
                vs_raw[i] = vs
                ve_raw[i] = ve
                vold_raw[i] = v_old
                payloads[i] = element.payload
                if all_int and not (
                    type(vs) is int
                    and type(ve) is int
                    and type(v_old) is int
                ):
                    all_int = False
            else:
                raise TypeError(f"not a stream element: {element!r}")
        tcode = "q" if all_int else "d"
        try:
            vs_col = array(tcode, vs_raw)
            ve_col = array(tcode, ve_raw)
            vold_col = array(tcode, vold_raw) if vold_raw is not None else None
        except OverflowError:
            # Integers beyond int64: fall back to float64 (documented
            # precision caveat past 2**53).
            tcode = "d"
            vs_col = array(tcode, [float(v) for v in vs_raw])
            ve_col = array(tcode, [float(v) for v in ve_raw])
            vold_col = (
                array(tcode, [float(v) for v in vold_raw])
                if vold_raw is not None
                else None
            )
        batch = cls(
            n,
            bytes(kinds),
            tcode,
            memoryview(vs_col),
            memoryview(ve_col),
            memoryview(vold_col) if vold_col is not None else None,
            payloads,
        )
        batch._elements = elements
        return batch

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __bool__(self) -> bool:
        return self.n > 0

    def __iter__(self) -> Iterator[Element]:
        """Iterate rows as element objects (a boundary conversion: hot
        paths should walk the columns or :meth:`runs` instead)."""
        return iter(self.to_elements())

    def payload(self, i: int):
        """Row *i*'s payload object (``None`` for stable rows)."""
        payloads = self._payloads
        if payloads is None:
            payloads = self._materialize_payloads()
        return payloads[self._pstart + i]

    @property
    def payloads(self) -> list:
        """Every row's payload object; lazily decoded from the arena."""
        payloads = self._payloads
        if payloads is None:
            payloads = self._materialize_payloads()
        start = self._pstart
        if start or len(payloads) != self.n:
            return payloads[start : start + self.n]
        return payloads

    def _materialize_payloads(self) -> list:
        arena = self._arena
        assert arena is not None
        # One loads() rebuilds the parent batch's whole payload list;
        # _pstart indexes this slice's rows into it.
        decoded: List = pickle.loads(arena)
        self._payloads = decoded
        return decoded

    @property
    def has_materialized_elements(self) -> bool:
        """True when every row already exists as an element object (an
        in-process ``from_elements`` batch or a converted one).  Consumers
        with an object fast path can then take ``to_elements`` for free
        instead of walking the columns; wire-decoded batches return False
        until converted."""
        return self._elements is not None

    def element_at(self, i: int) -> Element:
        """Materialize row *i* as an element object."""
        elements = self._elements
        if elements is not None:
            return elements[self._estart + i]
        kind = self.kinds[i]
        if kind == KIND_INSERT:
            return Insert(self.payload(i), self.vs[i], self.ve[i])
        if kind == KIND_STABLE:
            return Stable(self.vs[i])
        v_old = self.v_old
        assert v_old is not None
        return Adjust(self.payload(i), self.vs[i], v_old[i], self.ve[i])

    def elements_slice(self, start: int, stop: int) -> Sequence[Element]:
        """Rows ``[start, stop)`` as element objects (boundary converter).

        Bulk conversion: per same-kind run, the numeric columns drop to
        lists in one C-level ``tolist`` each and the constructors run
        under ``map`` — measured ~2x faster than a per-row
        ``element_at`` loop, which matters because every wire-decoded
        batch that reaches a sink crosses this boundary.
        """
        elements = self._elements
        if elements is not None:
            base = self._estart
            return elements[base + start : base + stop]
        out: List[Element] = []
        extend = out.extend
        payloads = self.payloads
        kinds = self.kinds
        find = kinds.find
        i = start
        while i < stop:
            kind = kinds[i]
            j = stop
            for other in _OTHER_KINDS[kind]:
                f = find(other, i + 1, j)
                if f != -1:
                    j = f
            vs = self.vs[i:j].tolist()
            if kind == KIND_INSERT:
                extend(map(Insert, payloads[i:j], vs, self.ve[i:j].tolist()))
            elif kind == KIND_STABLE:
                extend(map(Stable, vs))
            else:
                v_old = self.v_old
                assert v_old is not None
                extend(
                    map(
                        Adjust,
                        payloads[i:j],
                        vs,
                        v_old[i:j].tolist(),
                        self.ve[i:j].tolist(),
                    )
                )
            i = j
        return out

    def to_elements(self) -> Sequence[Element]:
        """The whole batch as element objects (boundary converter)."""
        result = self.elements_slice(0, self.n)
        if self._elements is None:
            self._elements = result
            self._estart = 0
        return result

    def counts(self) -> Tuple[int, int, int]:
        """``(inserts, adjusts, stables)`` row counts."""
        kinds = self.kinds
        return (
            kinds.count(KIND_INSERT),
            kinds.count(KIND_ADJUST),
            kinds.count(KIND_STABLE),
        )

    def runs(self) -> Iterator[Tuple[int, int, int]]:
        """Yield maximal same-kind runs as ``(kind, start, stop)``.

        Run boundaries are found with C-level ``bytes.find`` over the
        other two kind values, so a long homogeneous batch costs two
        scans, not a Python loop per row.
        """
        kinds = self.kinds
        n = self.n
        find = kinds.find
        i = 0
        while i < n:
            kind = kinds[i]
            j = n
            for other in _OTHER_KINDS[kind]:
                f = find(other, i + 1, j)
                if f != -1:
                    j = f
            yield kind, i, j
            i = j

    # ------------------------------------------------------------------
    # Slicing & selection
    # ------------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """Rows ``[start, stop)`` sharing this batch's column storage.

        Numeric columns are sliced memoryviews (zero-copy); payloads are
        shared by reference (or by arena view when not yet decoded).
        """
        if start == 0 and stop == self.n:
            return self
        v_old = self.v_old
        child = ColumnBatch(
            stop - start,
            self.kinds[start:stop],
            self.tcode,
            self.vs[start:stop],
            self.ve[start:stop],
            v_old[start:stop] if v_old is not None else None,
            self._payloads,
            self._pstart + start,
            self._arena,
            self._arena_rows,
        )
        if self._elements is not None:
            child._elements = self._elements
            child._estart = self._estart + start
        child.trace_id = self.trace_id
        return child

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch of the given rows, in the given order."""
        kinds = self.kinds
        vs = self.vs
        ve = self.ve
        v_old = self.v_old
        tcode = self.tcode
        payloads = self.payloads  # materializes once if arena-backed
        new_kinds = bytes(kinds[i] for i in indices)
        new_vs = array(tcode, (vs[i] for i in indices))
        new_ve = array(tcode, (ve[i] for i in indices))
        new_vold = (
            memoryview(array(tcode, (v_old[i] for i in indices)))
            if v_old is not None and KIND_ADJUST in new_kinds
            else None
        )
        child = ColumnBatch(
            len(indices),
            new_kinds,
            tcode,
            memoryview(new_vs),
            memoryview(new_ve),
            new_vold,
            [payloads[i] for i in indices],
        )
        elements = self._elements
        if elements is not None:
            # Keep the already-materialized element objects: consumers
            # with an object fast path then skip re-materialization.
            base = self._estart
            child._elements = [elements[base + i] for i in indices]
        child.trace_id = self.trace_id
        return child

    def key_hashes(self) -> array:
        """Per-row ``hash(payload)`` (0 for stables), cached.

        The identity-key partition column: computed once in the routing
        process and never shipped across a process boundary (``hash`` is
        salted per interpreter for str/bytes payloads).
        """
        hashes = self._hashes
        if hashes is None:
            kinds = self.kinds
            payloads = self.payloads
            hashes = array(
                "q",
                (
                    hash(payloads[i]) if kinds[i] != KIND_STABLE else 0
                    for i in range(self.n)
                ),
            )
            self._hashes = hashes
        return hashes

    # ------------------------------------------------------------------
    # Wire encoding (the future repro.serve format)
    # ------------------------------------------------------------------

    def _build_arena(self) -> bytes:
        """The payload arena: one pickle of the row-aligned payload list.

        A single ``dumps``/``loads`` pair per batch (stables hold
        ``None``) — per-slot pickling costs a fixed overhead per *row*
        and was measured slower than the object envelope it replaces.
        An undecoded whole-batch wire arena is reused byte-for-byte.
        """
        if (
            self._payloads is None
            and self._pstart == 0
            and self._arena_rows == self.n
        ):
            arena = self._arena
            assert arena is not None
            return arena
        payloads = self.payloads
        return pickle.dumps(payloads, _PICKLE_PROTOCOL)

    def encoded_size(self) -> Tuple[int, bytes]:
        """Total wire bytes plus the prebuilt arena blob.

        The blob is handed back to :meth:`encode_into` so the arena is
        built exactly once per transmission.
        """
        arena = self._build_arena()
        n = self.n
        size = _HEADER.size + n + _pad8(n) + 16 * n + len(arena)
        if self.v_old is not None:
            size += 8 * n
        if self.trace_id:
            size += _TRACE.size
        return size, arena

    def encode_into(
        self,
        buffer: memoryview,
        prebuilt: Optional[bytes] = None,
    ) -> int:
        """Write the wire form into *buffer*; returns bytes written.

        Column bytes land via memcpy (``memoryview`` assignment from the
        underlying arrays); only the header is packed field-by-field.
        """
        arena = prebuilt if prebuilt is not None else self._build_arena()
        n = self.n
        flags = _FLAG_HAS_VOLD if self.v_old is not None else 0
        if self.trace_id:
            flags |= _FLAG_HAS_TRACE
        _HEADER.pack_into(
            buffer,
            0,
            _MAGIC,
            _VERSION,
            ord(self.tcode),
            flags,
            n,
            len(arena),
        )
        position = _HEADER.size
        if self.trace_id:
            _TRACE.pack_into(buffer, position, self.trace_id)
            position += _TRACE.size
        buffer[position : position + n] = self.kinds
        position += n + _pad8(n)
        for column in (self.vs, self.ve):
            buffer[position : position + 8 * n] = column.cast("B")
            position += 8 * n
        if self.v_old is not None:
            buffer[position : position + 8 * n] = self.v_old.cast("B")
            position += 8 * n
        buffer[position : position + len(arena)] = arena
        return position + len(arena)

    def encode(self) -> bytes:
        """The complete wire frame as one bytes object."""
        size, prebuilt = self.encoded_size()
        buffer = bytearray(size)
        self.encode_into(memoryview(buffer), prebuilt)
        return bytes(buffer)

    @classmethod
    def decode(cls, buffer: Union[bytes, memoryview]) -> "ColumnBatch":
        """Rebuild a batch from its wire form.

        Numeric columns are copied out of *buffer* in one ``frombytes``
        each (the buffer may be ring storage about to be reused);
        payloads stay encoded in the arena until first touched.
        """
        view = memoryview(buffer)
        try:
            magic, version, tcode_byte, flags, n, arena_len = _HEADER.unpack_from(
                view, 0
            )
        except Exception as exc:  # struct.error on short frames
            raise ColumnarError(f"truncated column batch frame: {exc}")
        if magic != _MAGIC:
            raise ColumnarError(f"bad column batch magic {magic!r}")
        if version != _VERSION:
            raise ColumnarError(f"unsupported column batch version {version}")
        tcode = chr(tcode_byte)
        if tcode not in ("q", "d"):
            raise ColumnarError(f"unknown timestamp typecode {tcode!r}")
        position = _HEADER.size
        trace_id = 0
        if flags & _FLAG_HAS_TRACE:
            (trace_id,) = _TRACE.unpack_from(view, position)
            position += _TRACE.size
        kinds = bytes(view[position : position + n])
        position += n + _pad8(n)
        columns: List[memoryview] = []
        column_count = 3 if flags & _FLAG_HAS_VOLD else 2
        for _ in range(column_count):
            column = array(tcode)
            column.frombytes(view[position : position + 8 * n])
            columns.append(memoryview(column))
            position += 8 * n
        arena = bytes(view[position : position + arena_len])
        if len(arena) != arena_len:
            raise ColumnarError("truncated column batch arena")
        batch = cls(
            n,
            kinds,
            tcode,
            columns[0],
            columns[1],
            columns[2] if column_count == 3 else None,
            None,
            0,
            arena,
            n,
        )
        batch.trace_id = trace_id
        return batch

    def __repr__(self) -> str:  # pragma: no cover
        inserts, adjusts, stables = self.counts()
        return (
            f"<ColumnBatch n={self.n} tcode={self.tcode!r} "
            f"ins={inserts} adj={adjusts} stb={stables}>"
        )
