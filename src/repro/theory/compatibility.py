"""Input/output compatibility conditions for cases R3 and R4 (Section III-D).

Compatibility is the paper's central correctness notion: at every instant,
the emitted output prefix must be extendable to match *any* joint future of
the inputs.  For the R3 case — ``(Vs, payload)`` a key, all element kinds —
the paper gives three exact conditions over the reconstituted TDBs:

* **C1** — the output stable point ``L`` may not exceed the maximum input
  stable point ``max(Lm)`` (else an event could become fully frozen on an
  input yet be impossible to add to the output).
* **C2** — *what the output may contain*, per ``(Vs, payload)``: at most
  one event; an unfrozen event is unconstrained; a half-frozen output event
  needs support from some input holding that key half-frozen with
  ``L <= Lm`` (the input settles no lower than the output can follow) or
  fully frozen with ``L <= Vm``; a fully frozen output event must match a
  fully frozen input event exactly.
* **C3** — *what the output must contain*, per ``(Vs, payload)``: keys
  fully frozen on some input must be present (half-frozen if ``Vs < L <=
  Ve``, exact if ``Ve < L``); keys only half-frozen on inputs must be
  present half-frozen once ``L`` passes ``Vs`` (judged against the
  supporting input with the largest ``Lm``).

Note on C2's half-frozen clause: the conference text prints ``Lm <= L``,
but the parenthetical justification ("the output event can be adjusted to
match any changes in TDBm") requires the input to settle no lower than the
output's floor, i.e. ``L <= Lm``; we implement the justified direction.

The R4 conformance rule (multiset TDBs) is the count-based variant given at
the end of Section III-D, checked when ``L`` tracks ``max(Lm)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.temporal.event import Event, FreezeStatus, Payload
from repro.temporal.tdb import TDB
from repro.temporal.time import Timestamp

Key = Tuple[Timestamp, Payload]


@dataclass(frozen=True)
class CompatibilityViolation:
    """One violated condition, with a human-readable explanation."""

    condition: str  # "C1", "C2", "C3", "R4"
    key: object
    message: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.condition}] {self.message}"


def _events_by_key(tdb: TDB) -> Dict[Key, List[Event]]:
    grouped: Dict[Key, List[Event]] = {}
    for event in tdb:
        grouped.setdefault(event.key, []).append(event)
    return grouped


def check_r3_compatibility(
    inputs: Sequence[TDB], output: TDB
) -> List[CompatibilityViolation]:
    """Check conditions C1-C3; returns all violations (empty = compatible).

    Each :class:`~repro.temporal.tdb.TDB` carries its own stable point
    (``Lm`` for inputs, ``L`` for the output).
    """
    violations: List[CompatibilityViolation] = []
    out_stable = output.stable_point
    input_stables = [tdb.stable_point for tdb in inputs]

    # --- C1 ---------------------------------------------------------------
    max_input_stable = max(input_stables) if input_stables else None
    if max_input_stable is not None and out_stable > max_input_stable:
        violations.append(
            CompatibilityViolation(
                "C1",
                None,
                f"output stable {out_stable} exceeds max input stable "
                f"{max_input_stable}",
            )
        )

    input_keyed = [_events_by_key(tdb) for tdb in inputs]
    output_keyed = _events_by_key(output)

    # --- C2: what the output MAY contain -----------------------------------
    for key, out_events in output_keyed.items():
        if len(out_events) > 1:
            violations.append(
                CompatibilityViolation(
                    "C2", key, f"output has {len(out_events)} events for key {key!r}"
                )
            )
            continue
        event = out_events[0]
        status = output.status_of(event)
        if status is FreezeStatus.UNFROZEN:
            continue
        if status is FreezeStatus.HALF_FROZEN:
            if not _half_frozen_supported(event, inputs, input_keyed, out_stable):
                violations.append(
                    CompatibilityViolation(
                        "C2",
                        key,
                        f"half-frozen output event {event} has no input support",
                    )
                )
        else:  # FULLY_FROZEN
            if not _fully_frozen_supported(event, inputs, input_keyed):
                violations.append(
                    CompatibilityViolation(
                        "C2",
                        key,
                        f"fully frozen output event {event} not fully frozen "
                        f"identically on any input",
                    )
                )

    # --- C3: what the output MUST contain -----------------------------------
    all_keys: Set[Key] = set()
    for keyed in input_keyed:
        all_keys.update(keyed)
    for key in all_keys:
        violation = _check_must_contain(
            key, inputs, input_keyed, output, output_keyed, out_stable
        )
        if violation is not None:
            violations.append(violation)
    return violations


def _half_frozen_supported(
    event: Event,
    inputs: Sequence[TDB],
    input_keyed: Sequence[Dict[Key, List[Event]]],
    out_stable: Timestamp,
) -> bool:
    for tdb, keyed in zip(inputs, input_keyed):
        for candidate in keyed.get(event.key, ()):
            status = tdb.status_of(candidate)
            if status is FreezeStatus.HALF_FROZEN and out_stable <= tdb.stable_point:
                return True
            if status is FreezeStatus.FULLY_FROZEN and out_stable <= candidate.ve:
                return True
    return False


def _fully_frozen_supported(
    event: Event,
    inputs: Sequence[TDB],
    input_keyed: Sequence[Dict[Key, List[Event]]],
) -> bool:
    for tdb, keyed in zip(inputs, input_keyed):
        for candidate in keyed.get(event.key, ()):
            if candidate.ve == event.ve and (
                tdb.status_of(candidate) is FreezeStatus.FULLY_FROZEN
            ):
                return True
    return False


def _check_must_contain(
    key: Key,
    inputs: Sequence[TDB],
    input_keyed: Sequence[Dict[Key, List[Event]]],
    output: TDB,
    output_keyed: Dict[Key, List[Event]],
    out_stable: Timestamp,
):
    vs = key[0]
    out_events = output_keyed.get(key, [])
    out_event = out_events[0] if out_events else None

    # Case 1: some input holds the key fully frozen.
    ff_event = None
    for tdb, keyed in zip(inputs, input_keyed):
        for candidate in keyed.get(key, ()):
            if tdb.status_of(candidate) is FreezeStatus.FULLY_FROZEN:
                ff_event = candidate
                break
        if ff_event is not None:
            break
    if ff_event is not None:
        if out_stable <= vs:
            return None  # can still be added later
        if vs < out_stable <= ff_event.ve:
            if out_event is not None and (
                output.status_of(out_event) is FreezeStatus.HALF_FROZEN
            ):
                return None
            return CompatibilityViolation(
                "C3",
                key,
                f"input event {ff_event} is FF but output lacks a "
                f"half-frozen event for its key",
            )
        # ff_event.ve < out_stable: output must contain the exact event.
        if out_event is not None and out_event.ve == ff_event.ve:
            return None
        return CompatibilityViolation(
            "C3",
            key,
            f"input event {ff_event} is FF past the output stable point "
            f"but the output event is {out_event}",
        )

    # Case 2: no FF input event; consider half-frozen support.
    best_stable = None
    for tdb, keyed in zip(inputs, input_keyed):
        for candidate in keyed.get(key, ()):
            if tdb.status_of(candidate) is FreezeStatus.HALF_FROZEN:
                if best_stable is None or tdb.stable_point > best_stable:
                    best_stable = tdb.stable_point
    if best_stable is None:
        return None  # only unfrozen input events: no constraint (C3 note)
    if out_stable <= vs:
        return None
    if out_stable <= best_stable:
        if out_event is not None and (
            output.status_of(out_event) is FreezeStatus.HALF_FROZEN
        ):
            return None
        return CompatibilityViolation(
            "C3",
            key,
            f"key {key!r} is half-frozen on an input (Lm={best_stable}) but "
            f"the output (L={out_stable}) has no half-frozen event for it",
        )
    return CompatibilityViolation(
        "C3",
        key,
        f"output stable {out_stable} passed the best supporting input "
        f"stable {best_stable} for half-frozen key {key!r}",
    )


def is_r3_compatible(inputs: Sequence[TDB], output: TDB) -> bool:
    """True when no C1-C3 condition is violated."""
    return not check_r3_compatibility(inputs, output)


def check_r4_conformance(
    inputs: Sequence[TDB], output: TDB
) -> List[CompatibilityViolation]:
    """R4 conformance when the output stable tracks ``max(Lm)``.

    Against the input with the maximal stable point, the output must
    contain all its fully frozen events (with multiplicity) and an equal
    *number* of half-frozen events per ``(Vs, payload)``.
    """
    violations: List[CompatibilityViolation] = []
    if not inputs:
        return violations
    reference = max(inputs, key=lambda tdb: tdb.stable_point)
    if output.stable_point > reference.stable_point:
        violations.append(
            CompatibilityViolation(
                "C1",
                None,
                f"output stable {output.stable_point} exceeds max input "
                f"stable {reference.stable_point}",
            )
        )
        return violations

    ref_keyed = _events_by_key(reference)
    out_keyed = _events_by_key(output)
    for key in set(ref_keyed) | set(out_keyed):
        ref_events = ref_keyed.get(key, [])
        out_events = out_keyed.get(key, [])
        ref_ff: Dict[Timestamp, int] = {}
        ref_hf = 0
        for event in ref_events:
            status = reference.status_of(event)
            if status is FreezeStatus.FULLY_FROZEN:
                ref_ff[event.ve] = ref_ff.get(event.ve, 0) + 1
            elif status is FreezeStatus.HALF_FROZEN:
                ref_hf += 1
        out_ff: Dict[Timestamp, int] = {}
        out_hf = 0
        for event in out_events:
            status = output.status_of(event)
            if status is FreezeStatus.FULLY_FROZEN:
                out_ff[event.ve] = out_ff.get(event.ve, 0) + 1
            elif status is FreezeStatus.HALF_FROZEN:
                out_hf += 1
        # FF events must match only once the output stable has also passed
        # them; until then they count as the output's HF obligations.
        if output.stable_point == reference.stable_point:
            if ref_ff != out_ff:
                violations.append(
                    CompatibilityViolation(
                        "R4",
                        key,
                        f"FF multiset mismatch for {key!r}: input {ref_ff}, "
                        f"output {out_ff}",
                    )
                )
            if ref_hf != out_hf:
                violations.append(
                    CompatibilityViolation(
                        "R4",
                        key,
                        f"HF count mismatch for {key!r}: input {ref_hf}, "
                        f"output {out_hf}",
                    )
                )
    return violations
