"""Theory of Logical Merge (Section III).

Executable versions of the paper's formal machinery:

* :mod:`repro.theory.equivalence` — prefix equivalence and the open/close
  compatibility criterion of Example 4 (``O[j]`` is compatible with
  ``I[k]`` iff ``O[j] subset-of I[k]``);
* :mod:`repro.theory.compatibility` — the R3 conditions **C1-C3** of
  Section III-D and the R4 count-based conformance rule, implemented as
  checkers that report every violation.

Tests use these as oracles: after every element an LMerge algorithm emits,
the output prefix must remain compatible with the input prefixes.
"""

from repro.theory.equivalence import (
    equivalent_prefixes,
    open_close_compatible,
    prefix_equivalent_open_close,
)
from repro.theory.compatibility import (
    CompatibilityViolation,
    check_r3_compatibility,
    check_r4_conformance,
    is_r3_compatible,
)

__all__ = [
    "equivalent_prefixes",
    "open_close_compatible",
    "prefix_equivalent_open_close",
    "CompatibilityViolation",
    "check_r3_compatibility",
    "check_r4_conformance",
    "is_r3_compatible",
]
