"""Prefix equivalence and open/close compatibility (Examples 3 and 4).

Section III-A: prefixes ``S[i]`` and ``U[j]`` are *equivalent* when
``tdb(S, i) == tdb(U, j)``.  Example 4 derives, for the open/close dialect
with at-most-one-close, an exact compatibility criterion: the output prefix
is compatible with an input prefix iff its elements are a sub-multiset of
the input's.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.temporal.elements import Element, OCElement
from repro.temporal.tdb import reconstitute, reconstitute_open_close


def equivalent_prefixes(
    s: Sequence[Element], i: int, u: Sequence[Element], j: int
) -> bool:
    """``S[i] == U[j]``: the prefixes reconstitute to the same TDB."""
    return reconstitute(s[:i]) == reconstitute(u[:j])


def prefix_equivalent_open_close(
    s: Sequence[OCElement], u: Sequence[OCElement]
) -> bool:
    """Equivalence for Example 3's open/close dialect."""
    return reconstitute_open_close(s) == reconstitute_open_close(u)


def open_close_compatible(
    output_prefix: Iterable[OCElement], input_prefix: Iterable[OCElement]
) -> bool:
    """Example 4: ``O[j]`` compatible with ``I[k]`` iff ``O[j] subset I[k]``.

    Holds for streams of open/close elements where each ``open`` has at
    most one ``close``.  Sub-multiset containment is both sufficient (any
    input extension ``E`` gives output extension ``F:E`` with ``O:F == I``)
    and necessary (an output element absent from the input contradicts
    ``I[k]`` extended by nothing, or by a different close).

    For a set of mutually consistent inputs, ``O[j]`` is compatible exactly
    when ``O[j] subset union(I)``: call with the concatenation of the input
    prefixes.
    """
    return not Counter(output_prefix) - Counter(input_prefix)
