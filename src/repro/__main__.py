"""Command-line interface: ``python -m repro <command>``.

Commands operate on JSON-lines stream files (see
:mod:`repro.streams.io`):

* ``generate`` — produce a synthetic workload (Section VI-B knobs);
* ``diverge`` — derive a physically divergent, logically equivalent copy;
* ``merge`` — LMerge several stream files into one (algorithm selected
  from measured properties, or forced with ``--algorithm``); with
  ``--metrics-out``/``--trace-out``/``--prom-out`` the run is
  instrumented through :mod:`repro.obs` and leaves a
  :class:`~repro.obs.export.RunReport` / trace JSONL / Prometheus text
  behind;
* ``report`` — render a saved RunReport JSON as a human-readable table;
* ``top`` — scrape a live ``--serve-metrics`` endpoint and render the
  per-shard telemetry as a refreshing terminal table
  (:mod:`repro.obs.top`);
* ``validate`` — check the element contract (and optionally the key
  property) of a stream file;
* ``inspect`` — summarize a stream file (counts, properties, TDB size);
* ``analysis`` — static analysis: repo lint, plan soundness checking,
  lint rule catalog (delegates to :mod:`repro.analysis.cli`);
* ``chaos`` — run the seeded fault-injection matrix (supervised shard
  workers under kills/stalls/drops/duplicates/delays) and check every
  cell for TDB equivalence and no loss/duplication
  (:mod:`repro.resilience.chaos`).

``merge --checked`` validates every input against the selected
algorithm's assumed properties (:mod:`repro.analysis.checked`) before
merging.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.engine.operator import Operator
from repro.engine.runtime import Runtime
from repro.lmerge.base import interleave
from repro.lmerge.selector import algorithm_for, create_lmerge
from repro.obs import (
    LMergeObserver,
    MetricRegistry,
    RingTracer,
    RunReport,
    prometheus_text,
)
from repro.obs.trace import NULL_TRACER
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.io import read_stream, save_stream
from repro.streams.properties import Restriction, classify, measure_properties
from repro.temporal.validate import validate_stream
from repro.temporal.tdb import StreamViolationError


def _cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        count=args.count,
        seed=args.seed,
        disorder=args.disorder,
        stable_freq=args.stable_freq,
        event_duration=args.event_duration,
        max_gap=args.max_gap,
        payload_blob_bytes=args.payload_bytes,
    )
    generator = StreamGenerator(config)
    stream = generator.generate()
    written = save_stream(stream, args.output)
    print(
        f"wrote {written} elements to {args.output} "
        f"({generator.stats.inserts} inserts, "
        f"{generator.stats.stables} stables, "
        f"{generator.stats.achieved_disorder:.0%} disordered)"
    )
    return 0


def _cmd_diverge(args: argparse.Namespace) -> int:
    stream = read_stream(args.input)
    divergent = diverge(
        stream,
        seed=args.seed,
        speculate_fraction=args.speculate,
        stable_keep_probability=args.stable_keep,
    )
    written = save_stream(divergent, args.output)
    print(f"wrote {written} elements to {args.output}")
    return 0


class _MergeInput(Operator):
    """Presents one LMerge input port as an operator, so the instrumented
    CLI run can stand behind queued edges (real queue-depth dynamics)."""

    kind = "lmerge-input"

    def __init__(self, merge, stream_id: int):
        super().__init__(f"{merge.name}[{stream_id}]")
        self.merge = merge
        self.stream_id = stream_id
        adapters = getattr(merge, "input_adapters", None)
        if adapters is not None:
            adapters.append(self)

    def receive(self, element, port: int = 0) -> None:
        self.elements_in += 1
        self.merge.process(element, self.stream_id)

    def receive_batch(self, elements, port: int = 0) -> None:
        self.elements_in += len(elements)
        self.merge.process_batch(elements, self.stream_id)


def _print_stats(merge) -> None:
    stats = merge.stats
    per_input = ""
    input_ids = getattr(merge, "input_ids", ())
    if input_ids:
        per_input = f" from {len(input_ids)} inputs"
    print(
        f"stats: in {stats.elements_in}{per_input} "
        f"(inserts {stats.inserts_in}, adjusts {stats.adjusts_in}, "
        f"stables {stats.stables_in})"
    )
    print(
        f"       out {stats.elements_out} "
        f"(inserts {stats.inserts_out}, adjusts {stats.adjusts_out}, "
        f"stables {stats.stables_out}); chattiness {stats.chattiness}"
    )
    if stats.inserts_in:
        dropped = max(0, stats.inserts_in - stats.inserts_out)
        print(
            f"       duplicates dropped {dropped} "
            f"({dropped / stats.inserts_in:.1%} of input inserts)"
        )


def _instrumented_merge(args: argparse.Namespace, merge, inputs) -> None:
    """Drive the merge through queued edges with repro.obs attached,
    leaving the requested report/trace/Prometheus artifacts behind."""
    total = sum(len(stream) for stream in inputs)
    registry = MetricRegistry()
    server = None
    if args.serve_metrics is not None:
        from repro.obs.http import MetricsServer

        server = MetricsServer(registry, port=args.serve_metrics).start()
        print(f"serving metrics at {server.url}/metrics (repro top "
              f"{server.host}:{server.port})")
    tracer = (
        RingTracer(capacity=args.trace_capacity)
        if args.trace_out
        else NULL_TRACER
    )
    merge.set_tracer(tracer)
    observer = LMergeObserver(
        merge, registry, bucket=max(1.0, total / 64)
    )
    runtime = Runtime(batch=64, tracer=tracer, registry=registry)
    edges = [
        runtime.edge_to(_MergeInput(merge, stream_id).set_tracer(tracer))
        for stream_id in range(len(inputs))
    ]
    for stream_id in range(len(inputs)):
        merge.attach(stream_id)

    sample_every = max(1, total // 128)
    processed = 0
    start = time.perf_counter()
    for element, stream_id in interleave(list(inputs), args.schedule, args.seed):
        edges[stream_id].receive(element)
        processed += 1
        if processed % 64 == 0:
            runtime.pump()
        if processed % sample_every == 0:
            observer.sample(clock=processed)
    runtime.run()
    observer.sample(clock=processed)
    elapsed = time.perf_counter() - start

    report = RunReport.build(
        merge=merge,
        registry=registry,
        observer=observer,
        runtime=runtime,
        tracer=tracer,
        wall_seconds=elapsed,
        inputs=list(args.inputs),
    )
    if args.metrics_out:
        report.save(args.metrics_out)
        print(f"run report -> {args.metrics_out}")
    if args.trace_out:
        with open(args.trace_out, "w") as fp:
            lines = tracer.export_jsonl(fp)
        print(
            f"trace -> {args.trace_out} ({lines} events, "
            f"{tracer.dropped} dropped)"
        )
    if args.prom_out:
        with open(args.prom_out, "w") as fp:
            fp.write(prometheus_text(registry))
        print(f"prometheus metrics -> {args.prom_out}")
    if server is not None:
        if args.serve_hold > 0:
            print(f"holding /metrics open {args.serve_hold:.0f}s for "
                  f"final scrapes (ctrl-c to stop early)")
            try:
                time.sleep(args.serve_hold)
            except KeyboardInterrupt:
                pass
        server.stop()


def _checked_inputs(merge, inputs) -> int:
    """Validate that every input upholds the guarantees *merge* assumes
    (``repro merge --checked``); returns 0 when clean, 1 on violation."""
    from repro.analysis.checked import MergeCheck, PropertyViolationError
    from repro.lmerge.selector import restriction_of

    restriction = restriction_of(merge)
    check = MergeCheck.for_restriction(
        restriction, len(inputs), name="merge-check"
    )
    try:
        for stream_id, stream in enumerate(inputs):
            check.wrap(stream_id, stream)
    except PropertyViolationError as exc:
        print(f"CHECK FAILED for {merge.algorithm}: {exc}")
        return 1
    observed = check.observed_restriction()
    print(
        f"checked: inputs uphold {merge.algorithm}'s {restriction.name} "
        f"assumptions (observed {observed.name})"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    inputs = [read_stream(path) for path in args.inputs]
    if args.algorithm:
        merge = create_lmerge(Restriction[args.algorithm.upper()])
    else:
        properties = [measure_properties(stream) for stream in inputs]
        merge = create_lmerge(properties)
    if args.checked and _checked_inputs(merge, inputs):
        return 1
    instrumented = (
        args.metrics_out or args.trace_out or args.prom_out
        or args.serve_metrics is not None
    )
    if instrumented:
        _instrumented_merge(args, merge, inputs)
        output = merge.output
    else:
        output = merge.merge(inputs, schedule=args.schedule, seed=args.seed)
    written = save_stream(output, args.output)
    print(
        f"{merge.algorithm}: merged {merge.stats.elements_in} elements "
        f"from {len(inputs)} inputs into {written} "
        f"({merge.stats.adjusts_out} adjusts) -> {args.output}"
    )
    if args.stats:
        _print_stats(merge)
    return 0


def _cmd_analysis(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as analysis_main

    return analysis_main(args.rest)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.resilience.chaos import FAULT_KINDS, VARIANTS, run_fault_matrix

    variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    faults = [f.strip() for f in args.faults.split(",") if f.strip()]
    for variant in variants:
        if variant not in VARIANTS:
            print(f"unknown variant {variant!r}; choose from {sorted(VARIANTS)}")
            return 2
    for fault in faults:
        if fault not in FAULT_KINDS:
            print(f"unknown fault {fault!r}; choose from {sorted(FAULT_KINDS)}")
            return 2
    started = time.perf_counter()
    report = run_fault_matrix(
        args.seed,
        variants=variants,
        fault_kinds=faults,
        num_shards=args.shards,
        count=args.count,
        batch_size=args.batch_size,
    )
    report["wall_seconds"] = round(time.perf_counter() - started, 3)
    if args.out:
        with open(args.out, "w") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
        print(f"chaos report -> {args.out}")
    for cell in report["cells"]:
        verdict = "ok" if cell["ok"] else "FAILED"
        print(
            f"  {cell['variant']:>3} x {cell['fault']:<9} seed "
            f"{cell['seed']}: {verdict} (restarts {cell['restarts']}, "
            f"replayed {cell['replayed_elements']})"
        )
    status = "equivalent" if report["all_ok"] else "NOT EQUIVALENT"
    print(
        f"chaos matrix: {len(report['cells'])} cells, "
        f"{report['total_restarts']} restarts, {status}"
    )
    return 0 if report["all_ok"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    report = RunReport.load(args.report)
    print(report.render())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import top

    return top(
        args.url, interval=args.interval, iterations=args.iterations
    )


def _cmd_validate(args: argparse.Namespace) -> int:
    stream = read_stream(args.input)
    try:
        checker = validate_stream(stream, enforce_key=args.keyed)
    except StreamViolationError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(
        f"valid: {checker.elements_checked} elements, stable point "
        f"{checker.stable_point}, {checker.stable_regressions} stable "
        f"regressions, {checker.live_keys} keys still live"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    stream = read_stream(args.input)
    properties = measure_properties(stream)
    print(f"{args.input}: {len(stream)} elements")
    print(
        f"  inserts {stream.count_inserts()}, adjusts "
        f"{stream.count_adjusts()}, stables {stream.count_stables()}"
    )
    print(f"  measured properties: {properties}")
    print(f"  restriction class: {classify(properties).name} "
          f"(algorithm {algorithm_for(properties).algorithm})")
    try:
        tdb = stream.tdb()
    except StreamViolationError as exc:
        print(f"  TDB: INVALID STREAM ({exc})")
        return 1
    print(f"  TDB: {len(tdb)} events, stable point {tdb.stable_point}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Physically independent stream merging (LMerge) tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a workload")
    generate.add_argument("output")
    generate.add_argument("--count", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--disorder", type=float, default=0.2)
    generate.add_argument("--stable-freq", type=float, default=0.01)
    generate.add_argument("--event-duration", type=int, default=1_000)
    generate.add_argument("--max-gap", type=int, default=20)
    generate.add_argument("--payload-bytes", type=int, default=100)
    generate.set_defaults(func=_cmd_generate)

    divergent = commands.add_parser(
        "diverge", help="derive an equivalent physical variant"
    )
    divergent.add_argument("input")
    divergent.add_argument("output")
    divergent.add_argument("--seed", type=int, default=1)
    divergent.add_argument("--speculate", type=float, default=0.3)
    divergent.add_argument("--stable-keep", type=float, default=1.0)
    divergent.set_defaults(func=_cmd_diverge)

    merge = commands.add_parser("merge", help="LMerge stream files")
    merge.add_argument("inputs", nargs="+")
    merge.add_argument("--output", "-o", required=True)
    merge.add_argument(
        "--algorithm",
        choices=["r0", "r1", "r2", "r3", "r4"],
        help="force an algorithm (default: select from measured properties)",
    )
    merge.add_argument(
        "--schedule",
        choices=["round_robin", "sequential", "random"],
        default="round_robin",
    )
    merge.add_argument("--seed", type=int, default=0)
    merge.add_argument(
        "--checked",
        action="store_true",
        help="validate each input against the selected algorithm's "
        "assumed properties before merging (fails fast on violation)",
    )
    merge.add_argument(
        "--stats",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="print a MergeStats summary on completion (default on)",
    )
    merge.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="instrument the run and write a RunReport JSON here",
    )
    merge.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record pipeline trace events and write JSONL here",
    )
    merge.add_argument(
        "--prom-out",
        metavar="PATH",
        help="write the metric registry in Prometheus text format here",
    )
    merge.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        help="trace ring-buffer capacity (oldest events drop beyond it)",
    )
    merge.add_argument(
        "--serve-metrics",
        type=int,
        metavar="PORT",
        help="serve live /metrics + /health on this port during the run "
        "(scrape with `repro top 127.0.0.1:PORT`)",
    )
    merge.add_argument(
        "--serve-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the /metrics endpoint up this long after the merge "
        "finishes (default 0: stop immediately)",
    )
    merge.set_defaults(func=_cmd_merge)

    report = commands.add_parser(
        "report", help="render a RunReport JSON as a table"
    )
    report.add_argument("report", help="path to a --metrics-out JSON file")
    report.set_defaults(func=_cmd_report)

    top = commands.add_parser(
        "top", help="live terminal view of a --serve-metrics endpoint"
    )
    top.add_argument(
        "url",
        nargs="?",
        default="127.0.0.1:9464",
        help="metrics endpoint (host:port or full URL; default "
        "127.0.0.1:9464)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="refresh seconds"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="render this many frames then exit (0: until interrupted)",
    )
    top.set_defaults(func=_cmd_top)

    validate = commands.add_parser("validate", help="check stream contract")
    validate.add_argument("input")
    validate.add_argument(
        "--keyed", action="store_true",
        help="also enforce the (Vs, payload) key property",
    )
    validate.set_defaults(func=_cmd_validate)

    inspect = commands.add_parser("inspect", help="summarize a stream file")
    inspect.add_argument("input")
    inspect.set_defaults(func=_cmd_inspect)

    analysis = commands.add_parser(
        "analysis",
        help="static analysis: lint / check-plan / rules "
        "(see `repro analysis --help`)",
        add_help=False,
    )
    analysis.add_argument("rest", nargs=argparse.REMAINDER)
    analysis.set_defaults(func=_cmd_analysis)

    chaos = commands.add_parser(
        "chaos",
        help="seeded fault-injection matrix over supervised shard workers",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--variants",
        default="r1,r3",
        help="comma-separated LMerge variants (r1,r3,r4)",
    )
    chaos.add_argument(
        "--faults",
        default="kill,stall,drop,duplicate,delay",
        help="comma-separated fault kinds to inject",
    )
    chaos.add_argument("--shards", type=int, default=2)
    chaos.add_argument("--count", type=int, default=160)
    chaos.add_argument("--batch-size", type=int, default=16)
    chaos.add_argument(
        "--out", metavar="PATH", help="write the JSON recovery report here"
    )
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
