"""Bounded model checking of the SPSC ring + supervisor state machine.

The protocol verifier (:mod:`repro.analysis.protocol`) checks that each
call *site* obeys the frame spec; this module checks that the *design*
composed of those sites is safe: it builds a finite-state model of one
driver/worker pair — bounded rings, the supervised worker's
apply/emit/checkpoint loop, crash + recovery with out-ring salvage,
journal replay, and the ``emitted_before`` OUT-dedup header — and
exhaustively enumerates every reachable interleaving by breadth-first
search.  Three safety properties are asserted over the whole space:

* **no deadlock** — every non-accepting state has at least one enabled
  transition (a full ring must always be drainable by someone);
* **no lost terminal frame** — every terminal state has the worker's
  DONE delivered to the driver;
* **exact output delivery** — the driver accepts each of the N shard
  outputs exactly once, in order: a replayed duplicate must be skipped
  by the ``emitted_before`` header, and a gap (``emitted_before`` ahead
  of the delivered count) is a lost output.

The model is deliberately small — a few batches, ring capacity of a few
frames, a bounded crash budget — because the bugs it exists to catch
(dedup off-by-ones, salvage-ordering races, replay-from-the-wrong-seq)
all manifest within a handful of frames.  CI runs it on every push and
uploads the JSON state-space report.

The ``mutations`` parameter deliberately breaks one mechanism at a time
(``no_dedup``, ``no_salvage``, ``no_replay``); tests assert each
mutation produces a caught violation, i.e. that the checker's
properties are strong enough to notice the mechanism is load-bearing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "ModelParams",
    "ModelResult",
    "Violation",
    "check_model",
    "MUTATIONS",
]

#: The supported fault-injection mutations (see module docstring).
MUTATIONS = ("no_dedup", "no_salvage", "no_replay")

# Worker status values.
_RUNNING = 0
_FINISHED = 1

# Frame tags on the modelled rings.
_BATCH = "B"
_SENTINEL = "S"
_OUT = "O"
_DONE = "D"


@dataclass(frozen=True)
class ModelParams:
    """Bounds for the finite model."""

    batches: int = 4
    ring_capacity: int = 2
    crashes: int = 2
    checkpoint_every: int = 2
    mutations: FrozenSet[str] = frozenset()

    def validate(self) -> None:
        if self.batches < 1 or self.batches > 8:
            raise ValueError("batches must be in 1..8")
        if self.ring_capacity < 1 or self.ring_capacity > 4:
            raise ValueError("ring_capacity must be in 1..4")
        if self.crashes < 0 or self.crashes > 4:
            raise ValueError("crashes must be in 0..4")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        unknown = set(self.mutations) - set(MUTATIONS)
        if unknown:
            raise ValueError(f"unknown mutations: {sorted(unknown)}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "ring_capacity": self.ring_capacity,
            "crashes": self.crashes,
            "checkpoint_every": self.checkpoint_every,
            "mutations": sorted(self.mutations),
        }


# The state tuple (kept flat and hashable for the visited set):
#   (next_seq, sentinel_sent,
#    in_ring, out_ring,            # tuples of frames
#    status, applied_seq, emitted, pending_out,
#    ckpt_seq, ckpt_emitted,
#    delivered, done_received, crashes_left)
_State = Tuple


def _initial(params: ModelParams) -> _State:
    return (
        1,  # next_seq
        False,  # sentinel_sent
        (),  # in_ring
        (),  # out_ring
        _RUNNING,  # worker status
        0,  # applied_seq
        0,  # emitted
        None,  # pending_out (an OUT frame applied but not yet on the ring)
        0,  # ckpt_seq
        0,  # ckpt_emitted
        0,  # delivered
        False,  # done_received
        params.crashes,  # crashes_left
    )


@dataclass
class Violation:
    """One property violation with its shortest counterexample trace."""

    property: str
    detail: str
    trace: List[str]

    def to_json(self) -> Dict[str, Any]:
        return {
            "property": self.property,
            "detail": self.detail,
            "trace": list(self.trace),
        }


@dataclass
class ModelResult:
    """The outcome of one exhaustive exploration."""

    params: ModelParams
    states: int
    transitions: int
    terminal_states: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, Any]:
        return {
            "params": self.params.to_json(),
            "ok": self.ok,
            "states": self.states,
            "transitions": self.transitions,
            "terminal_states": self.terminal_states,
            "properties": {
                "deadlock_free": not any(
                    v.property == "deadlock" for v in self.violations
                ),
                "no_lost_terminal": not any(
                    v.property == "lost_terminal" for v in self.violations
                ),
                "exact_delivery": not any(
                    v.property in ("duplicate_delivery", "lost_output")
                    for v in self.violations
                ),
            },
            "violations": [v.to_json() for v in self.violations],
        }

    def render(self) -> str:
        lines = [
            f"explored {self.states} states / {self.transitions} "
            f"transitions ({self.terminal_states} terminal) with "
            f"params {self.params.to_json()}"
        ]
        if self.ok:
            lines.append(
                "[ok] deadlock-free, no lost terminal frame, exact "
                "output delivery"
            )
        else:
            for violation in self.violations:
                lines.append(
                    f"[ERROR] {violation.property}: {violation.detail}"
                )
                lines.append(
                    "        trace: " + " -> ".join(violation.trace[-12:])
                )
        return "\n".join(lines)


def _drain_one(
    out_ring: Tuple,
    delivered: int,
    done_received: bool,
    params: ModelParams,
) -> Tuple[Tuple, int, bool, Optional[Tuple[str, str]]]:
    """Driver-side processing of the head OUT-ring frame.

    Returns the new ``(out_ring, delivered, done_received, violation)``
    where *violation* is ``(property, detail)`` or None.  Mirrors the
    ``skip = delivered - emitted_before`` dedup in
    ``SupervisedRuntime._handle_out_frame``.
    """
    frame, rest = out_ring[0], out_ring[1:]
    if frame[0] == _DONE:
        return rest, delivered, True, None
    _, emitted_before = frame
    if "no_dedup" in params.mutations:
        if emitted_before < delivered:
            return (
                rest,
                delivered + 1,
                done_received,
                (
                    "duplicate_delivery",
                    f"output #{emitted_before} accepted again at "
                    f"delivered={delivered}",
                ),
            )
        return rest, delivered + 1, done_received, None
    if emitted_before < delivered:
        # Replayed duplicate: the header says this output precedes what
        # the driver has already accepted — skip it.
        return rest, delivered, done_received, None
    if emitted_before > delivered:
        return (
            rest,
            delivered,
            done_received,
            (
                "lost_output",
                f"output #{delivered} missing: frame carries "
                f"emitted_before={emitted_before}",
            ),
        )
    return rest, delivered + 1, done_received, None


def _successors(
    state: _State, params: ModelParams
) -> List[Tuple[str, _State, Optional[Tuple[str, str]]]]:
    """Every enabled transition as ``(label, next_state, violation)``."""
    (
        next_seq,
        sentinel_sent,
        in_ring,
        out_ring,
        status,
        applied_seq,
        emitted,
        pending_out,
        ckpt_seq,
        ckpt_emitted,
        delivered,
        done_received,
        crashes_left,
    ) = state
    moves: List[Tuple[str, _State, Optional[Tuple[str, str]]]] = []

    # -- driver: send the next journal entry ---------------------------
    if len(in_ring) < params.ring_capacity and not done_received:
        if next_seq <= params.batches:
            moves.append(
                (
                    f"send(batch {next_seq})",
                    (
                        next_seq + 1,
                        sentinel_sent,
                        in_ring + ((_BATCH, next_seq),),
                        out_ring,
                        status,
                        applied_seq,
                        emitted,
                        pending_out,
                        ckpt_seq,
                        ckpt_emitted,
                        delivered,
                        done_received,
                        crashes_left,
                    ),
                    None,
                )
            )
        elif not sentinel_sent:
            moves.append(
                (
                    "send(sentinel)",
                    (
                        next_seq,
                        True,
                        in_ring + ((_SENTINEL,),),
                        out_ring,
                        status,
                        applied_seq,
                        emitted,
                        pending_out,
                        ckpt_seq,
                        ckpt_emitted,
                        delivered,
                        done_received,
                        crashes_left,
                    ),
                    None,
                )
            )

    # -- driver: drain one OUT-ring frame ------------------------------
    if out_ring:
        new_out, new_delivered, new_done, violation = _drain_one(
            out_ring, delivered, done_received, params
        )
        moves.append(
            (
                f"drain({out_ring[0][0]})",
                (
                    next_seq,
                    sentinel_sent,
                    in_ring,
                    new_out,
                    status,
                    applied_seq,
                    emitted,
                    pending_out,
                    ckpt_seq,
                    ckpt_emitted,
                    new_delivered,
                    new_done,
                    crashes_left,
                ),
                violation,
            )
        )

    # -- worker: flush a pending OUT frame (the blocking put) ----------
    if (
        status == _RUNNING
        and pending_out is not None
        and len(out_ring) < params.ring_capacity
    ):
        moves.append(
            (
                f"emit(out seq {applied_seq})",
                (
                    next_seq,
                    sentinel_sent,
                    in_ring,
                    out_ring + (pending_out,),
                    status,
                    applied_seq,
                    emitted + 1,
                    None,
                    ckpt_seq,
                    ckpt_emitted,
                    delivered,
                    done_received,
                    crashes_left,
                ),
                None,
            )
        )
        # A checkpoint fires only once the batch's output is out (the
        # real worker snapshots after put_frame returns); model it as a
        # separate transition so a crash can land in between.
        if applied_seq % params.checkpoint_every == 0:
            moves.append(
                (
                    f"emit+ckpt(seq {applied_seq})",
                    (
                        next_seq,
                        sentinel_sent,
                        in_ring,
                        out_ring + (pending_out,),
                        status,
                        applied_seq,
                        emitted + 1,
                        None,
                        applied_seq,
                        emitted + 1,
                        delivered,
                        done_received,
                        crashes_left,
                    ),
                    None,
                )
            )

    # -- worker: consume one in-ring frame -----------------------------
    if status == _RUNNING and pending_out is None and in_ring:
        frame, rest = in_ring[0], in_ring[1:]
        if frame[0] == _BATCH:
            seq = frame[1]
            if seq <= applied_seq:
                # Replay duplicate: the worker's sequence gate drops it.
                moves.append(
                    (
                        f"skip(batch {seq})",
                        (
                            next_seq,
                            sentinel_sent,
                            rest,
                            out_ring,
                            status,
                            applied_seq,
                            emitted,
                            pending_out,
                            ckpt_seq,
                            ckpt_emitted,
                            delivered,
                            done_received,
                            crashes_left,
                        ),
                        None,
                    )
                )
            else:
                # Apply, leaving the OUT frame pending (its blocking put
                # is the separate "emit" transition above).
                moves.append(
                    (
                        f"apply(batch {seq})",
                        (
                            next_seq,
                            sentinel_sent,
                            rest,
                            out_ring,
                            status,
                            seq,
                            emitted,
                            (_OUT, emitted),
                            ckpt_seq,
                            ckpt_emitted,
                            delivered,
                            done_received,
                            crashes_left,
                        ),
                        None,
                    )
                )
        else:  # sentinel -> final checkpoint + DONE (blocking put)
            if len(out_ring) < params.ring_capacity:
                moves.append(
                    (
                        "done",
                        (
                            next_seq,
                            sentinel_sent,
                            rest,
                            out_ring + ((_DONE,),),
                            _FINISHED,
                            applied_seq,
                            emitted,
                            None,
                            applied_seq,
                            emitted,
                            delivered,
                            done_received,
                            crashes_left,
                        ),
                        None,
                    )
                )

    # -- crash + supervised recovery (atomic) --------------------------
    if status == _RUNNING and crashes_left > 0:
        salvage_out = out_ring
        new_delivered, new_done = delivered, done_received
        violation = None
        if "no_salvage" not in params.mutations:
            # The supervisor drains the victim's out ring before tearing
            # the rings down, so already-produced outputs survive.
            while salvage_out and violation is None:
                salvage_out, new_delivered, new_done, violation = (
                    _drain_one(
                        salvage_out, new_delivered, new_done, params
                    )
                )
        if "no_replay" in params.mutations:
            replay_from = next_seq  # forgets the un-checkpointed tail
        else:
            replay_from = ckpt_seq + 1
        moves.append(
            (
                f"crash+recover(ckpt {ckpt_seq})",
                (
                    replay_from,
                    False,  # sentinel (if sent) is re-sent after replay
                    (),  # rings are torn down and recreated
                    (),
                    _RUNNING,
                    ckpt_seq,
                    ckpt_emitted,
                    None,
                    ckpt_seq,
                    ckpt_emitted,
                    new_delivered,
                    new_done,
                    crashes_left - 1,
                ),
                violation,
            )
        )

    return moves


def check_model(params: Optional[ModelParams] = None) -> ModelResult:
    """Exhaustively explore the model and check every property."""
    params = params or ModelParams()
    params.validate()
    initial = _initial(params)
    #: state -> (predecessor state, transition label); for traces.
    came_from: Dict[_State, Optional[Tuple[_State, str]]] = {initial: None}
    queue = deque([initial])
    transitions = 0
    terminal_states = 0
    violations: List[Violation] = []
    seen_properties = set()

    def record(prop: str, detail: str, state: _State, label: str) -> None:
        # One counterexample per property keeps the report readable;
        # BFS order makes it a shortest one.
        if prop in seen_properties:
            return
        seen_properties.add(prop)
        violations.append(
            Violation(prop, detail, _trace(came_from, state) + [label])
        )

    while queue:
        state = queue.popleft()
        moves = _successors(state, params)
        if not moves:
            terminal_states += 1
            _check_terminal(state, params, record)
            continue
        for label, successor, violation in moves:
            transitions += 1
            if violation is not None:
                record(violation[0], violation[1], state, label)
                continue  # do not explore past a violated state
            if successor not in came_from:
                came_from[successor] = (state, label)
                queue.append(successor)

    return ModelResult(
        params=params,
        states=len(came_from),
        transitions=transitions,
        terminal_states=terminal_states,
        violations=violations,
    )


def _check_terminal(
    state: _State, params: ModelParams, record
) -> None:
    """Safety checks on a state with no enabled transitions."""
    (
        _next_seq,
        _sentinel_sent,
        in_ring,
        out_ring,
        status,
        _applied_seq,
        _emitted,
        pending_out,
        _ckpt_seq,
        _ckpt_emitted,
        delivered,
        done_received,
        _crashes_left,
    ) = state
    accepting = (
        done_received
        and status == _FINISHED
        and not in_ring
        and not out_ring
        and pending_out is None
        and delivered == params.batches
    )
    if accepting:
        return
    if not done_received:
        prop = "lost_terminal" if status == _FINISHED else "deadlock"
        record(
            prop,
            f"terminal state without DONE delivered "
            f"(worker={'finished' if status == _FINISHED else 'running'}, "
            f"delivered={delivered}/{params.batches})",
            state,
            "<stuck>",
        )
    elif delivered != params.batches:
        record(
            "lost_output",
            f"terminated with {delivered}/{params.batches} outputs "
            f"delivered",
            state,
            "<stuck>",
        )
    else:
        record(
            "deadlock",
            "terminal state with undrained rings",
            state,
            "<stuck>",
        )


def _trace(
    came_from: Dict[_State, Optional[Tuple[_State, str]]], state: _State
) -> List[str]:
    labels: List[str] = []
    cursor: Optional[_State] = state
    while cursor is not None:
        step = came_from.get(cursor)
        if step is None:
            break
        cursor, label = step
        labels.append(label)
    labels.reverse()
    return labels


