"""Static and runtime analysis for repro stream plans.

Coordinated passes (see the submodules for detail):

1. **Property flow** (:mod:`repro.analysis.propflow`) — infer
   per-operator :class:`StreamProperties` over a wired plan graph and
   judge every LMerge site's selected variant against the inferred
   restriction (unsound → error, over-conservative → warning);
2. **Punctuation monotonicity** (:mod:`repro.analysis.punct`) — prove,
   per operator class, that no ``Stable(...)`` emission can regress
   below an already-promised CTI; verdicts ride along in
   :func:`check_plan` output;
3. **Repo lint** (:mod:`repro.analysis.lint`) — AST + dataflow rules
   (REP101…REP113) encoding engine invariants: replayability,
   punctuation handling, element immutability, slotted layouts, no
   blocking inside ring reserve/commit windows, no pooled-object
   escapes, no unused suppressions;
4. **Ring-protocol verification** (:mod:`repro.analysis.protocol`) —
   statically check every :class:`ShmRing` ``put``/``get`` site against
   the declared :data:`FRAME_PROTOCOL` (producer role, terminal-ness,
   blocking discipline);
5. **Protocol model checking** (:mod:`repro.analysis.model`) —
   exhaustively explore the SPSC ring + supervisor-restart state space
   and assert deadlock freedom, no lost terminal frame, and exactly-once
   output delivery;
6. **Checked execution** (:mod:`repro.analysis.checked`) —
   :class:`PropertyChecker` operators that re-measure declared
   properties on live streams and raise on the first violating element,
   confirming the static verdicts dynamically.

Shared infrastructure lives in :mod:`repro.analysis.flow`: per-function
CFGs, a forward-dataflow solver, and :class:`ModuleContext`, which lets
every rule share one parse, one node-type index, and one CFG per
function per file.

CLI: ``python -m repro.analysis {lint,check-plan,protocol,model,rules}``.
"""

from repro.analysis.checked import (
    JointOrderTracker,
    MergeCheck,
    PropertyChecker,
    PropertyViolationError,
)
from repro.analysis.flow import (
    CFG,
    BasicBlock,
    ForwardAnalysis,
    ModuleContext,
    context_for_source,
)
from repro.analysis.lint import (
    RULES,
    Finding,
    LintReport,
    LintStats,
    lint_file,
    lint_paths,
    lint_paths_report,
    lint_source,
    render_docs_catalog,
    rules_markdown,
)
from repro.analysis.model import (
    MUTATIONS,
    ModelParams,
    ModelResult,
    check_model,
)
from repro.analysis.propflow import (
    GraphAnalysis,
    MergeSite,
    PlanCheck,
    SiteCheck,
    UnsoundPlanError,
    analyze_graph,
    check_plan,
    verify_plan,
)
from repro.analysis.protocol import (
    DEFAULT_PROTOCOL_PATHS,
    ProtocolReport,
    RingSite,
    verify_paths,
    verify_source,
)
from repro.analysis.punct import (
    ClassPunctuation,
    StableSite,
    classify_source,
    punctuation_of,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "ClassPunctuation",
    "DEFAULT_PROTOCOL_PATHS",
    "Finding",
    "ForwardAnalysis",
    "GraphAnalysis",
    "JointOrderTracker",
    "LintReport",
    "LintStats",
    "MUTATIONS",
    "MergeCheck",
    "MergeSite",
    "ModelParams",
    "ModelResult",
    "ModuleContext",
    "PlanCheck",
    "PropertyChecker",
    "PropertyViolationError",
    "ProtocolReport",
    "RULES",
    "RingSite",
    "SiteCheck",
    "StableSite",
    "UnsoundPlanError",
    "analyze_graph",
    "check_model",
    "check_plan",
    "classify_source",
    "context_for_source",
    "lint_file",
    "lint_paths",
    "lint_paths_report",
    "lint_source",
    "punctuation_of",
    "render_docs_catalog",
    "rules_markdown",
    "verify_paths",
    "verify_plan",
    "verify_source",
]
