"""Static and runtime analysis for repro stream plans.

Three coordinated passes (see :mod:`repro.analysis.propflow`,
:mod:`repro.analysis.lint`, :mod:`repro.analysis.checked`):

1. **Property flow** — infer per-operator :class:`StreamProperties` over
   a wired plan graph and judge every LMerge site's selected variant
   against the inferred restriction (unsound → error, over-conservative
   → warning);
2. **Repo lint** — AST rules (REP101…) encoding engine invariants:
   replayability, punctuation handling, element immutability, slotted
   layouts, no stray console output;
3. **Checked execution** — :class:`PropertyChecker` operators that
   re-measure declared properties on live streams and raise on the first
   violating element, confirming the static verdicts dynamically.

CLI: ``python -m repro.analysis {lint,check-plan,rules}``.
"""

from repro.analysis.checked import (
    JointOrderTracker,
    MergeCheck,
    PropertyChecker,
    PropertyViolationError,
)
from repro.analysis.lint import (
    RULES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.propflow import (
    GraphAnalysis,
    MergeSite,
    PlanCheck,
    SiteCheck,
    UnsoundPlanError,
    analyze_graph,
    check_plan,
    verify_plan,
)

__all__ = [
    "Finding",
    "GraphAnalysis",
    "JointOrderTracker",
    "MergeCheck",
    "MergeSite",
    "PlanCheck",
    "PropertyChecker",
    "PropertyViolationError",
    "RULES",
    "SiteCheck",
    "UnsoundPlanError",
    "analyze_graph",
    "check_plan",
    "lint_file",
    "lint_paths",
    "lint_source",
    "verify_plan",
]
