"""Runtime property sanitization: confirm static verdicts on live data.

The static analyzer (:mod:`repro.analysis.propflow`) proves which LMerge
variant a plan's properties justify — *assuming the declared transfer
functions are honest*.  This module closes the loop at runtime:

* :class:`PropertyChecker` is a transparent pass-through operator that
  incrementally re-measures the stream flowing through it (via
  :class:`repro.streams.properties.PropertyTracker`, the same machinery
  behind :func:`~repro.streams.properties.measure_properties`) and raises
  :class:`PropertyViolationError` on the first element that contradicts a
  *declared* guarantee.  Wired between a replica plan and its LMerge
  input, it turns a silent wrong-variant corruption into an immediate,
  attributed failure.
* :class:`JointOrderTracker` validates the one flag a single stream
  cannot witness — ``deterministic_same_vs_order`` — by comparing the
  same-Vs insert order *across* the checkers of one merge site.
* :class:`MergeCheck` bundles one checker per merge input plus the shared
  joint tracker, and reports the properties/restriction the live streams
  actually exhibited (:meth:`MergeCheck.observed_restriction`), directly
  comparable to the static inference.

``repro merge --checked`` and ``repro analysis check-plan --dynamic``
build on these.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.engine.operator import Operator
from repro.streams.properties import (
    PropertyTracker,
    Restriction,
    StreamProperties,
    classify,
    required_properties,
)
from repro.temporal.elements import Element, Insert
from repro.temporal.event import Payload
from repro.temporal.time import Timestamp


class PropertyViolationError(RuntimeError):
    """A live stream broke a guarantee it was declared to provide."""

    def __init__(
        self,
        stream: str,
        element: Element,
        index: int,
        violated: Sequence[str],
    ):
        self.stream = stream
        self.element = element
        self.index = index
        self.violated = tuple(violated)
        flags = ", ".join(violated)
        super().__init__(
            f"stream {stream!r} violated declared propert"
            f"{'ies' if len(self.violated) > 1 else 'y'} {flags} at "
            f"element #{index}: {element}"
        )


class JointOrderTracker:
    """Cross-replica same-Vs insert-order agreement, incremental.

    The first stream to deliver the inserts of a Vs establishes the
    reference payload order; every other stream must present that Vs's
    inserts as a prefix-consistent repetition of the reference.  Holds for
    rank-ordered outputs (Top-k) and fails for arrival-ordered ones
    (grouped aggregates) — exactly the R1/R2 boundary.
    """

    def __init__(self) -> None:
        #: Vs -> reference payload order (first stream's delivery order).
        self._reference: dict = {}
        #: (stream_index, Vs) -> how many inserts of that Vs the stream
        #: has delivered so far.
        self._positions: dict = {}
        self.agreed = True

    def observe_insert(
        self, stream_index: int, vs: Timestamp, payload: Payload
    ) -> bool:
        """Account one insert; return False on first order disagreement."""
        reference = self._reference.setdefault(vs, [])
        position = self._positions.get((stream_index, vs), 0)
        self._positions[(stream_index, vs)] = position + 1
        if position < len(reference):
            if reference[position] != payload:
                self.agreed = False
                return False
            return True
        if position > len(reference):
            # A stream ran ahead of the reference stream on this Vs —
            # irreconcilable with "same order on every input".
            self.agreed = False
            return False
        reference.append(payload)
        return True


class PropertyChecker(Operator):
    """Transparent operator asserting declared properties on a live stream.

    Standalone (no *joint* tracker) its semantics are exactly
    :func:`~repro.streams.properties.measure_properties` evaluated
    incrementally — empty and single-element streams uphold everything,
    and ``deterministic_same_vs_order`` is treated as broken by the first
    duplicated Vs (a single stream cannot prove cross-replica agreement).
    Attached to a :class:`JointOrderTracker` (see :class:`MergeCheck`),
    determinism is instead judged by cross-stream order agreement, so
    legitimately duplicate-Vs R1 streams (Top-k rank order) check clean.
    """

    kind = "property-checker"

    def __init__(
        self,
        declared: StreamProperties,
        name: str = "checked",
        joint: Optional[JointOrderTracker] = None,
        joint_index: int = 0,
    ):
        super().__init__(name)
        self.declared = declared
        self.tracker = PropertyTracker()
        self._joint = joint
        self._joint_index = joint_index

    # -- validation core ---------------------------------------------------

    def _check(self, element: Element) -> None:
        broken = self.tracker.observe(element)
        joint = self._joint
        if joint is not None:
            # Determinism is judged jointly; drop the single-stream
            # (vacuous-duplication) verdict and consult the shared tracker.
            broken = tuple(
                flag for flag in broken if flag != "deterministic_same_vs_order"
            )
            if element.__class__ is Insert and not joint.observe_insert(
                self._joint_index, element.vs, element.payload
            ):
                broken = broken + ("deterministic_same_vs_order",)
        violated = [
            flag for flag in broken if getattr(self.declared, flag)
        ]
        if violated:
            raise PropertyViolationError(
                self.name,
                element,
                self.tracker.elements_observed - 1,
                violated,
            )

    # -- operator surface --------------------------------------------------

    def receive(self, element: Element, port: int = 0) -> None:
        self.elements_in += 1
        self._check(element)
        self.emit(element)

    def receive_batch(
        self, elements: Sequence[Element], port: int = 0
    ) -> None:
        self.elements_in += len(elements)
        for element in elements:
            self._check(element)
        self.emit_batch(elements)

    def observed(self) -> StreamProperties:
        """The guarantees the stream has actually exhibited so far."""
        properties = self.tracker.current()
        if self._joint is not None:
            properties = properties.weaken(
                deterministic_same_vs_order=self._joint.agreed
            )
        return properties

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        # A checker is transparent: it forwards elements unchanged.
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]


class MergeCheck:
    """One checker per LMerge input, sharing a joint determinism tracker.

    >>> check = MergeCheck.for_restriction(Restriction.R2, 2)
    >>> checked_streams = [
    ...     check.wrap(i, stream) for i, stream in enumerate(streams)
    ... ]
    """

    def __init__(
        self,
        declared: StreamProperties,
        inputs: int,
        name: str = "merge-check",
    ):
        self.declared = declared
        self.joint = JointOrderTracker()
        self.checkers: Tuple[PropertyChecker, ...] = tuple(
            PropertyChecker(
                declared,
                name=f"{name}[{index}]",
                joint=self.joint,
                joint_index=index,
            )
            for index in range(inputs)
        )

    @staticmethod
    def for_restriction(
        restriction: Restriction, inputs: int, name: str = "merge-check"
    ) -> "MergeCheck":
        """Checkers asserting the guarantees *restriction* relies on."""
        return MergeCheck(
            required_properties(restriction), inputs, name=name
        )

    def checker(self, index: int) -> PropertyChecker:
        return self.checkers[index]

    def wrap(self, index: int, elements: Sequence[Element]) -> List[Element]:
        """Validate an offline stream through checker *index*; returns the
        elements unchanged (raises on the first violation)."""
        checker = self.checkers[index]
        for element in elements:
            checker._check(element)
        return list(elements)

    def observed_properties(self) -> StreamProperties:
        """The meet of what every input actually exhibited."""
        if not self.checkers:
            return StreamProperties.strongest()
        merged = self.checkers[0].observed()
        for checker in self.checkers[1:]:
            merged = merged.meet(checker.observed())
        return merged

    def observed_restriction(self) -> Restriction:
        """The restriction the live inputs jointly justified — the dynamic
        counterpart of the analyzer's inferred restriction."""
        return classify(self.observed_properties())
