"""``python -m repro.analysis`` — lint, plan checking, rule catalog.

Subcommands:

* ``lint <paths...>`` — run the repo-specific AST lint
  (:mod:`repro.analysis.lint`); exits non-zero on any error-severity
  finding (``--strict`` also fails on warnings);
* ``check-plan [--plans FILE]`` — build every plan in a plan-catalog
  module (default ``examples/plans.py``, a ``PLANS`` dict of factories),
  run the static soundness check (:mod:`repro.analysis.propflow`), and
  optionally (``--dynamic``) execute each plan to confirm the inferred
  restriction against what :class:`repro.analysis.checked.MergeCheck`
  observes on live data;
* ``rules`` — print the lint rule catalog.

Both analysis commands take ``--format json`` and ``--output PATH`` so CI
can archive machine-readable reports.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.analysis.lint import (
    RULES,
    SEVERITY_ERROR,
    Finding,
    lint_paths,
)
from repro.analysis.propflow import check_plan

DEFAULT_PLANS = "examples/plans.py"


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text + "\n", encoding="utf-8")
    else:
        sys.stdout.write(text + "\n")


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    findings: List[Finding] = lint_paths(args.paths, rules=args.rules)
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    warnings = [f for f in findings if f.severity != SEVERITY_ERROR]
    if args.format == "json":
        _emit(
            json.dumps(
                {
                    "ok": not errors,
                    "errors": len(errors),
                    "warnings": len(warnings),
                    "findings": [f.to_json() for f in findings],
                },
                indent=2,
            ),
            args.output,
        )
    else:
        lines = [f.render() for f in findings]
        lines.append(
            f"{len(errors)} error(s), {len(warnings)} warning(s) in "
            f"{len(args.paths)} path(s)"
        )
        _emit("\n".join(lines), args.output)
    if errors or (args.strict and warnings):
        return 1
    return 0


# ---------------------------------------------------------------------------
# check-plan
# ---------------------------------------------------------------------------


def load_plan_catalog(path: str) -> Dict[str, Callable[[], object]]:
    """Import a plan-catalog module by file path; return its ``PLANS``.

    The catalog convention: a module-level ``PLANS`` dict mapping plan
    name to a zero-argument factory returning an object with ``replicas``
    (queries feeding an LMerge) and optionally ``merge``/``run_inputs``.
    """
    location = Path(path)
    if not location.exists():
        raise FileNotFoundError(f"plan catalog not found: {path}")
    spec = importlib.util.spec_from_file_location(
        f"_repro_plans_{location.stem}", location
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load plan catalog from {path}")
    module = importlib.util.module_from_spec(spec)
    # dataclasses (and other annotation resolvers) look the module up in
    # sys.modules while the body executes; register it first.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    plans = getattr(module, "PLANS", None)
    if not isinstance(plans, dict) or not plans:
        raise ValueError(f"{path} defines no PLANS catalog")
    return plans


def _check_one(
    name: str, factory: Callable[[], object], dynamic: bool
) -> dict:
    plan = factory()
    try:
        replicas = list(getattr(plan, "replicas"))
        static = check_plan(*replicas, plan=name)
        result = static.to_json()
        if dynamic:
            observed = plan.run_checked()  # type: ignore[attr-defined]
            result["dynamic"] = {
                "observed": observed.name,
                "matches": [
                    site["inferred"] == observed.name
                    for site in result["sites"]
                ],
            }
            if not all(result["dynamic"]["matches"]):
                result["ok"] = False
    finally:
        close = getattr(plan, "close", None)
        if callable(close):
            close()
    return result


def _cmd_check_plan(args: argparse.Namespace) -> int:
    catalog = load_plan_catalog(args.plans)
    names = args.plan or sorted(catalog)
    results = []
    for name in names:
        if name not in catalog:
            sys.stderr.write(f"unknown plan {name!r} in {args.plans}\n")
            return 2
        results.append(_check_one(name, catalog[name], args.dynamic))
    ok = all(result["ok"] for result in results)
    if args.format == "json":
        _emit(
            json.dumps({"ok": ok, "plans": results}, indent=2), args.output
        )
    else:
        lines = []
        for result in results:
            for site in result["sites"]:
                status = site["verdict"]
                lines.append(
                    f"[{status}] {result['plan']}: {site['message']}"
                )
            if "dynamic" in result:
                lines.append(
                    f"[dynamic] {result['plan']}: observed "
                    f"{result['dynamic']['observed']} "
                    f"(match={all(result['dynamic']['matches'])})"
                )
        lines.append("OK" if ok else "FAILED")
        _emit("\n".join(lines), args.output)
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


def _cmd_rules(args: argparse.Namespace) -> int:
    if args.format == "json":
        _emit(
            json.dumps(
                [
                    {
                        "id": rule.id,
                        "severity": rule.severity,
                        "summary": rule.summary,
                    }
                    for rule in RULES.values()
                ],
                indent=2,
            ),
            args.output,
        )
        return 0
    for rule in RULES.values():
        _emit(f"{rule.id}  {rule.severity:8}  {rule.summary}", args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analysis",
        description="Static analysis for repro stream plans and code",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser("lint", help="repo-specific AST lint")
    lint.add_argument("paths", nargs="+")
    lint.add_argument("--rules", nargs="*", choices=sorted(RULES))
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--output", help="write the report here")
    lint.add_argument(
        "--strict", action="store_true", help="fail on warnings too"
    )
    lint.set_defaults(func=_cmd_lint)

    plan = commands.add_parser(
        "check-plan", help="LMerge soundness check over a plan catalog"
    )
    plan.add_argument(
        "--plans",
        default=DEFAULT_PLANS,
        help=f"plan catalog module (default {DEFAULT_PLANS})",
    )
    plan.add_argument(
        "--plan",
        action="append",
        help="check only this plan (repeatable; default: all)",
    )
    plan.add_argument(
        "--dynamic",
        action="store_true",
        help="also execute each plan and confirm the inferred restriction "
        "against the live-stream observation",
    )
    plan.add_argument("--format", choices=["text", "json"], default="text")
    plan.add_argument("--output", help="write the report here")
    plan.set_defaults(func=_cmd_check_plan)

    rules = commands.add_parser("rules", help="print the lint rule catalog")
    rules.add_argument("--format", choices=["text", "json"], default="text")
    rules.add_argument("--output", help="write the catalog here")
    rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
