"""``python -m repro.analysis`` — lint, plan checking, rule catalog.

Subcommands:

* ``lint <paths...>`` — run the repo-specific AST lint
  (:mod:`repro.analysis.lint`); exits non-zero on any error-severity
  finding (``--strict`` also fails on warnings);
* ``check-plan [--plans FILE]`` — build every plan in a plan-catalog
  module (default ``examples/plans.py``, a ``PLANS`` dict of factories),
  run the static soundness check (:mod:`repro.analysis.propflow`), and
  optionally (``--dynamic``) execute each plan to confirm the inferred
  restriction against what :class:`repro.analysis.checked.MergeCheck`
  observes on live data;
* ``protocol [paths...]`` — statically verify every :class:`ShmRing`
  frame site against the declared :data:`FRAME_PROTOCOL`
  (:mod:`repro.analysis.protocol`);
* ``model`` — exhaustively model-check the SPSC ring + supervisor
  restart protocol (:mod:`repro.analysis.model`);
* ``rules`` — print the lint rule catalog; ``--check-docs`` /
  ``--write-docs`` keep the generated table in ``docs/ANALYSIS.md`` in
  sync with the registry.

All analysis commands take ``--format json`` and ``--output PATH`` so CI
can archive machine-readable reports.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.analysis.lint import (
    CATALOG_BEGIN,
    RULES,
    SEVERITY_ERROR,
    lint_paths_report,
    render_docs_catalog,
    rules_markdown,
)
from repro.analysis.model import MUTATIONS, ModelParams, check_model
from repro.analysis.propflow import check_plan
from repro.analysis.protocol import DEFAULT_PROTOCOL_PATHS, verify_paths

DEFAULT_PLANS = "examples/plans.py"
DEFAULT_DOCS = "docs/ANALYSIS.md"


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text + "\n", encoding="utf-8")
    else:
        sys.stdout.write(text + "\n")


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    report = lint_paths_report(args.paths, rules=args.rules)
    elapsed = time.perf_counter() - started
    findings = report.findings
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    warnings = [f for f in findings if f.severity != SEVERITY_ERROR]
    over_budget = (
        args.budget_seconds is not None and elapsed > args.budget_seconds
    )
    if args.format == "json":
        stats = report.stats.to_json()
        stats["wall_seconds"] = round(elapsed, 4)
        if args.budget_seconds is not None:
            stats["budget_seconds"] = args.budget_seconds
            stats["within_budget"] = not over_budget
        _emit(
            json.dumps(
                {
                    "ok": not errors and not over_budget,
                    "errors": len(errors),
                    "warnings": len(warnings),
                    "findings": [f.to_json() for f in findings],
                    "stats": stats,
                },
                indent=2,
            ),
            args.output,
        )
    else:
        lines = [f.render() for f in findings]
        lines.append(
            f"{len(errors)} error(s), {len(warnings)} warning(s) in "
            f"{len(args.paths)} path(s)"
        )
        if over_budget:
            lines.append(
                f"BUDGET EXCEEDED: {elapsed:.2f}s > "
                f"{args.budget_seconds:.2f}s"
            )
        _emit("\n".join(lines), args.output)
    if errors or over_budget or (args.strict and warnings):
        return 1
    return 0


# ---------------------------------------------------------------------------
# check-plan
# ---------------------------------------------------------------------------


def load_plan_catalog(path: str) -> Dict[str, Callable[[], object]]:
    """Import a plan-catalog module by file path; return its ``PLANS``.

    The catalog convention: a module-level ``PLANS`` dict mapping plan
    name to a zero-argument factory returning an object with ``replicas``
    (queries feeding an LMerge) and optionally ``merge``/``run_inputs``.
    """
    location = Path(path)
    if not location.exists():
        raise FileNotFoundError(f"plan catalog not found: {path}")
    spec = importlib.util.spec_from_file_location(
        f"_repro_plans_{location.stem}", location
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load plan catalog from {path}")
    module = importlib.util.module_from_spec(spec)
    # dataclasses (and other annotation resolvers) look the module up in
    # sys.modules while the body executes; register it first.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    plans = getattr(module, "PLANS", None)
    if not isinstance(plans, dict) or not plans:
        raise ValueError(f"{path} defines no PLANS catalog")
    return plans


def _check_one(
    name: str, factory: Callable[[], object], dynamic: bool
) -> dict:
    plan = factory()
    try:
        replicas = list(getattr(plan, "replicas"))
        static = check_plan(*replicas, plan=name)
        result = static.to_json()
        if dynamic:
            observed = plan.run_checked()  # type: ignore[attr-defined]
            result["dynamic"] = {
                "observed": observed.name,
                "matches": [
                    site["inferred"] == observed.name
                    for site in result["sites"]
                ],
            }
            if not all(result["dynamic"]["matches"]):
                result["ok"] = False
    finally:
        close = getattr(plan, "close", None)
        if callable(close):
            close()
    return result


def _cmd_check_plan(args: argparse.Namespace) -> int:
    catalog = load_plan_catalog(args.plans)
    names = args.plan or sorted(catalog)
    results = []
    for name in names:
        if name not in catalog:
            sys.stderr.write(f"unknown plan {name!r} in {args.plans}\n")
            return 2
        results.append(_check_one(name, catalog[name], args.dynamic))
    ok = all(result["ok"] for result in results)
    if args.format == "json":
        _emit(
            json.dumps({"ok": ok, "plans": results}, indent=2), args.output
        )
    else:
        lines = []
        for result in results:
            for site in result["sites"]:
                status = site["verdict"]
                lines.append(
                    f"[{status}] {result['plan']}: {site['message']}"
                )
            if "dynamic" in result:
                lines.append(
                    f"[dynamic] {result['plan']}: observed "
                    f"{result['dynamic']['observed']} "
                    f"(match={all(result['dynamic']['matches'])})"
                )
        lines.append("OK" if ok else "FAILED")
        _emit("\n".join(lines), args.output)
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


def _cmd_protocol(args: argparse.Namespace) -> int:
    paths = args.paths or list(DEFAULT_PROTOCOL_PATHS)
    report = verify_paths(paths)
    if args.format == "json":
        _emit(json.dumps(report.to_json(), indent=2), args.output)
    else:
        _emit(report.render(), args.output)
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# model
# ---------------------------------------------------------------------------


def _cmd_model(args: argparse.Namespace) -> int:
    params = ModelParams(
        batches=args.batches,
        ring_capacity=args.ring_capacity,
        crashes=args.crashes,
        checkpoint_every=args.checkpoint_every,
        mutations=frozenset(args.mutate or ()),
    )
    started = time.perf_counter()
    result = check_model(params)
    elapsed = time.perf_counter() - started
    if args.format == "json":
        payload = result.to_json()
        payload["wall_seconds"] = round(elapsed, 4)
        _emit(json.dumps(payload, indent=2), args.output)
    else:
        _emit(result.render(), args.output)
    return 0 if result.ok else 1


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


def _cmd_rules(args: argparse.Namespace) -> int:
    docs = Path(args.docs)
    if args.check_docs or args.write_docs:
        if not docs.exists():
            sys.stderr.write(f"docs file not found: {docs}\n")
            return 2
        document = docs.read_text(encoding="utf-8")
        if CATALOG_BEGIN not in document:
            sys.stderr.write(
                f"{docs} has no rule-catalog markers; add them once "
                "(see repro.analysis.lint.CATALOG_BEGIN_LINE)\n"
            )
            return 2
        regenerated = render_docs_catalog(document)
        if args.write_docs:
            docs.write_text(regenerated, encoding="utf-8")
            return 0
        if regenerated != document:
            sys.stderr.write(
                f"{docs} rule catalog is out of date — run "
                "`python -m repro.analysis rules --write-docs`\n"
            )
            return 1
        return 0
    if args.format == "json":
        _emit(
            json.dumps(
                [
                    {
                        "id": rule.id,
                        "severity": rule.severity,
                        "summary": rule.summary,
                    }
                    for rule in RULES.values()
                ],
                indent=2,
            ),
            args.output,
        )
        return 0
    if args.format == "markdown":
        _emit(rules_markdown(), args.output)
        return 0
    for rule in RULES.values():
        _emit(f"{rule.id}  {rule.severity:8}  {rule.summary}", args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analysis",
        description="Static analysis for repro stream plans and code",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser("lint", help="repo-specific AST lint")
    lint.add_argument("paths", nargs="+")
    lint.add_argument("--rules", nargs="*", choices=sorted(RULES))
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--output", help="write the report here")
    lint.add_argument(
        "--strict", action="store_true", help="fail on warnings too"
    )
    lint.add_argument(
        "--budget-seconds",
        type=float,
        help="fail if the lint pass exceeds this wall-clock budget",
    )
    lint.set_defaults(func=_cmd_lint)

    plan = commands.add_parser(
        "check-plan", help="LMerge soundness check over a plan catalog"
    )
    plan.add_argument(
        "--plans",
        default=DEFAULT_PLANS,
        help=f"plan catalog module (default {DEFAULT_PLANS})",
    )
    plan.add_argument(
        "--plan",
        action="append",
        help="check only this plan (repeatable; default: all)",
    )
    plan.add_argument(
        "--dynamic",
        action="store_true",
        help="also execute each plan and confirm the inferred restriction "
        "against the live-stream observation",
    )
    plan.add_argument("--format", choices=["text", "json"], default="text")
    plan.add_argument("--output", help="write the report here")
    plan.set_defaults(func=_cmd_check_plan)

    protocol = commands.add_parser(
        "protocol", help="verify ShmRing frame sites against FRAME_PROTOCOL"
    )
    protocol.add_argument(
        "paths",
        nargs="*",
        help=f"modules to verify (default: {' '.join(DEFAULT_PROTOCOL_PATHS)})",
    )
    protocol.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    protocol.add_argument("--output", help="write the report here")
    protocol.set_defaults(func=_cmd_protocol)

    model = commands.add_parser(
        "model",
        help="exhaustively model-check the ring + supervisor protocol",
    )
    model.add_argument("--batches", type=int, default=4)
    model.add_argument("--ring-capacity", type=int, default=2)
    model.add_argument("--crashes", type=int, default=2)
    model.add_argument("--checkpoint-every", type=int, default=2)
    model.add_argument(
        "--mutate",
        action="append",
        choices=sorted(MUTATIONS),
        help="inject a protocol bug the checker must catch (repeatable)",
    )
    model.add_argument("--format", choices=["text", "json"], default="text")
    model.add_argument("--output", help="write the report here")
    model.set_defaults(func=_cmd_model)

    rules = commands.add_parser("rules", help="print the lint rule catalog")
    rules.add_argument(
        "--format",
        choices=["text", "json", "markdown"],
        default="text",
    )
    rules.add_argument("--output", help="write the catalog here")
    rules.add_argument(
        "--docs",
        default=DEFAULT_DOCS,
        help=f"docs file holding the generated catalog (default {DEFAULT_DOCS})",
    )
    rules.add_argument(
        "--check-docs",
        action="store_true",
        help="fail if the docs catalog is out of date with the registry",
    )
    rules.add_argument(
        "--write-docs",
        action="store_true",
        help="regenerate the docs catalog in place",
    )
    rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
