"""Punctuation-monotonicity analysis for operator classes.

Every operator's output stream must carry non-decreasing CTIs: emitting
``Stable(t)`` promises no future element with ``Vs < t``, so an operator
that emits a CTI *below* one it already emitted (or below the last one it
received) silently corrupts every downstream consumer — LMerge prunes
state at the CTI, aggregates freeze windows at it, joins purge matches at
it.  This pass proves the property statically, per class, by classifying
every ``Stable(...)`` construction site in the class body (and its
operator base classes — helper methods like the windowed aggregate's
``_emit_stable`` are covered by walking the MRO):

``pass-through``
    The constructed value is exactly a parameter of the enclosing
    handler (``Stable(vc)`` inside ``on_stable(self, vc, port)``): the
    output CTI equals the input CTI, so output monotonicity follows from
    input monotonicity, which the operator contract already guarantees.

``guarded-monotone``
    The construction is dominated by ``if x > self.<attr>:`` (or the
    mirrored ``self.<attr> < x``) where the same ``x`` is also stored
    into ``self.<attr>`` inside the guard — the classic high-water-mark
    idiom used by Union, Cleanse, Join, and the windowed aggregates.
    Each emitted CTI is strictly above the previous one by construction.

``violated``
    The constructed value is provably *below* a received parameter
    (``Stable(vc - 1)``): the operator re-opens time it already promised
    closed.  This is the only classification that fails a plan check.

``unknown``
    Anything else — a computed expression with no guard.  Reported but
    not failing: the pass is conservative, never claiming a proof it
    does not have, and never claiming a violation it cannot show.

The per-class verdict (``proved`` / ``unknown`` / ``violated``) joins the
property-flow report: :func:`repro.analysis.propflow.check_plan` attaches
one verdict per operator class in the analyzed graph, and only
``violated`` flips the plan's ``ok``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "PUNCT_PROVED",
    "PUNCT_UNKNOWN",
    "PUNCT_VIOLATED",
    "SITE_PASS_THROUGH",
    "SITE_GUARDED",
    "SITE_VIOLATED",
    "SITE_UNKNOWN",
    "StableSite",
    "ClassPunctuation",
    "sites_in_class",
    "classify_source",
    "punctuation_of",
]

PUNCT_PROVED = "proved"
PUNCT_UNKNOWN = "unknown"
PUNCT_VIOLATED = "violated"

SITE_PASS_THROUGH = "pass-through"
SITE_GUARDED = "guarded-monotone"
SITE_VIOLATED = "violated"
SITE_UNKNOWN = "unknown"


@dataclass(frozen=True)
class StableSite:
    """One ``Stable(...)`` construction inside an operator class."""

    class_name: str
    function: str
    line: int
    classification: str
    reason: str

    @property
    def ok(self) -> bool:
        return self.classification in (SITE_PASS_THROUGH, SITE_GUARDED)

    def to_json(self) -> dict:
        return {
            "class": self.class_name,
            "function": self.function,
            "line": self.line,
            "classification": self.classification,
            "reason": self.reason,
        }


@dataclass
class ClassPunctuation:
    """Monotonicity verdict for one operator class."""

    class_name: str
    verdict: str
    sites: List[StableSite] = field(default_factory=list)
    #: Names of operator instances of this class in the analyzed graph
    #: (filled in by propflow; empty for standalone classification).
    operators: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict != PUNCT_VIOLATED

    def summary(self) -> str:
        if not self.sites:
            return "no Stable construction sites"
        kinds = sorted({site.classification for site in self.sites})
        return ", ".join(kinds)

    def to_json(self) -> dict:
        return {
            "class": self.class_name,
            "verdict": self.verdict,
            "operators": list(self.operators),
            "sites": [site.to_json() for site in self.sites],
        }


def _is_stable_call(node: ast.AST) -> Optional[ast.expr]:
    """Return the CTI expression if *node* constructs ``Stable(x)``."""
    if not isinstance(node, ast.Call) or len(node.args) != 1:
        return None
    name = node.func
    if isinstance(name, ast.Attribute):
        name = name.attr
    elif isinstance(name, ast.Name):
        name = name.id
    else:
        return None
    return node.args[0] if name == "Stable" else None


def _param_names(fn: ast.AST) -> List[str]:
    args = fn.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [n for n in names if n != "self"]


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guard_attr(test: ast.expr, value_dump: str) -> Optional[str]:
    """The ``self.<attr>`` a high-water-mark guard compares against.

    Matches ``x > self.attr`` / ``x >= self.attr`` and the mirrored
    ``self.attr < x`` / ``self.attr <= x``, where ``x`` is the emitted
    expression (compared structurally).
    """
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if isinstance(op, (ast.Gt, ast.GtE)) and ast.dump(left) == value_dump:
        return _self_attr(right)
    if isinstance(op, (ast.Lt, ast.LtE)) and ast.dump(right) == value_dump:
        return _self_attr(left)
    return None


def _stores_watermark(guard: ast.If, attr: str, value_dump: str) -> bool:
    """Does the guard body update ``self.<attr>`` to the emitted value?"""
    for node in ast.walk(guard):
        if not isinstance(node, ast.Assign):
            continue
        if ast.dump(node.value) != value_dump:
            continue
        for target in node.targets:
            if _self_attr(target) == attr:
                return True
    return False


def _below_param(value: ast.expr, params: Iterable[str]) -> bool:
    """Is *value* provably less than a received parameter?

    Conservative: only ``param - <positive literal>`` qualifies — enough
    to catch the canonical regression (re-opening already-closed time)
    without guessing at arbitrary arithmetic.
    """
    if not isinstance(value, ast.BinOp) or not isinstance(value.op, ast.Sub):
        return False
    if not (
        isinstance(value.left, ast.Name) and value.left.id in set(params)
    ):
        return False
    right = value.right
    return (
        isinstance(right, ast.Constant)
        and isinstance(right.value, (int, float))
        and right.value > 0
    )


def _classify_site(
    value: ast.expr,
    fn: ast.AST,
    guards: Tuple[ast.If, ...],
) -> Tuple[str, str]:
    params = _param_names(fn)
    if isinstance(value, ast.Name) and value.id in params:
        return (
            SITE_PASS_THROUGH,
            f"emits the received CTI parameter {value.id!r} unchanged",
        )
    value_dump = ast.dump(value)
    for guard in reversed(guards):
        attr = _guard_attr(guard.test, value_dump)
        if attr is None:
            continue
        if _stores_watermark(guard, attr, value_dump):
            return (
                SITE_GUARDED,
                f"dominated by a high-water-mark guard on self.{attr}",
            )
        return (
            SITE_UNKNOWN,
            f"guarded by self.{attr} but the watermark is never updated",
        )
    if _below_param(value, params):
        return (
            SITE_VIOLATED,
            "emits a CTI strictly below the received parameter — "
            "re-opens time the operator already promised closed",
        )
    return (
        SITE_UNKNOWN,
        "computed CTI with no dominating high-water-mark guard",
    )


def _walk_function(
    fn: ast.AST,
    class_name: str,
    sites: List[StableSite],
) -> None:
    fn_name = fn.name  # type: ignore[attr-defined]

    def visit(node: ast.AST, guards: Tuple[ast.If, ...]) -> None:
        value = _is_stable_call(node)
        if value is not None:
            classification, reason = _classify_site(value, fn, guards)
            sites.append(
                StableSite(
                    class_name=class_name,
                    function=fn_name,
                    line=getattr(node, "lineno", 0),
                    classification=classification,
                    reason=reason,
                )
            )
        if isinstance(node, ast.If):
            for child in node.body:
                visit(child, guards + (node,))
            # The guard only dominates its own body; the else branch and
            # the test itself see the outer guard stack.
            for child in node.orelse:
                visit(child, guards)
            visit(node.test, guards)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                return  # nested defs are separate scopes
        for child in ast.iter_child_nodes(node):
            visit(child, guards)

    visit(fn, ())


def sites_in_class(classdef: ast.ClassDef) -> List[StableSite]:
    """Classify every ``Stable(...)`` construction in one class body."""
    sites: List[StableSite] = []
    for statement in classdef.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _walk_function(statement, classdef.name, sites)
    return sites


def _verdict(sites: List[StableSite]) -> str:
    if any(s.classification == SITE_VIOLATED for s in sites):
        return PUNCT_VIOLATED
    if any(s.classification == SITE_UNKNOWN for s in sites):
        return PUNCT_UNKNOWN
    return PUNCT_PROVED


def classify_source(
    source: str, path: str = "<source>"
) -> Dict[str, ClassPunctuation]:
    """Classify every class in *source* — fixture-friendly entry point."""
    tree = ast.parse(source, filename=path)
    results: Dict[str, ClassPunctuation] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            sites = sites_in_class(node)
            results[node.name] = ClassPunctuation(
                class_name=node.name,
                verdict=_verdict(sites),
                sites=sites,
            )
    return results


# ----------------------------------------------------------------------
# Live-class classification (used by propflow's check_plan)
# ----------------------------------------------------------------------

_class_cache: Dict[type, ClassPunctuation] = {}


def _class_sites(cls: type) -> Tuple[List[StableSite], bool]:
    """Sites of one class body; ``(sites, source_available)``."""
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return [], False
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return [], False
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return sites_in_class(node), True
    return [], True


def punctuation_of(cls: type) -> ClassPunctuation:
    """Monotonicity verdict for a live operator class.

    Walks the MRO up to (and excluding) the framework base
    ``repro.engine.operator.Operator`` so that helper methods inherited
    from intermediate bases — e.g. the windowed aggregate's guarded
    ``_emit_stable`` — count toward the subclass's verdict.  Results are
    cached per class; the pass runs once per class per process no matter
    how many operators or plans reference it.
    """
    cached = _class_cache.get(cls)
    if cached is not None:
        return cached
    sites: List[StableSite] = []
    unreadable = False
    for base in cls.__mro__:
        if base is object:
            continue
        if (
            base.__name__ == "Operator"
            and base.__module__ == "repro.engine.operator"
        ):
            break
        base_sites, available = _class_sites(base)
        sites.extend(base_sites)
        if not available:
            unreadable = True
    verdict = _verdict(sites)
    if verdict == PUNCT_PROVED and unreadable:
        # A class we cannot read may hide an unguarded emit.
        verdict = PUNCT_UNKNOWN
    result = ClassPunctuation(
        class_name=cls.__name__, verdict=verdict, sites=sites
    )
    _class_cache[cls] = result
    return result
