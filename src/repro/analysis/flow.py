"""Per-function control-flow graphs and forward dataflow for the lint.

PR 5's rules were single-pass AST walks: fine for "no ``print``", but
the concurrency invariants PRs 6-9 introduced are *path* properties — "no
blocking call **between** a ring-slot reserve and its commit", "a pooled
node must not **escape** the function", "every path through an except
handler re-raises or emits punctuation".  Those need a control-flow
graph and a fixpoint, not a walk.  This module provides both, plus the
shared per-module cache that keeps the growing rule count at one parse
(and one CFG build per function) per module:

* :func:`build_cfg` — a statement-level CFG for one function body:
  basic blocks, branch/loop/try edges, explicit entry/exit.  ``try``
  bodies edge into their handlers from every contained block (the
  conservative "an exception may fire anywhere" reading), ``finally``
  bodies are inlined on the fall-through path, ``break``/``continue``/
  ``return``/``raise`` cut the block.
* :class:`ForwardAnalysis` — a worklist solver over a CFG.  Subclasses
  provide the lattice (:meth:`initial`, :meth:`join`) and the transfer
  function (:meth:`transfer`); :meth:`run` iterates block transfers to a
  fixpoint and returns the state at entry of every block (and for
  convenience at every statement).
* :class:`ModuleContext` — one parsed module shared by every rule:
  source, AST, line table, the function/class index, and a lazily built,
  cached CFG per function.  :func:`context_for_source` stamps parse and
  CFG-build timings onto the context so the CLI's JSON report can prove
  the one-parse-per-module property CI budgets rely on.

The framework is deliberately conservative: anything it cannot model
(``with`` bodies, ``match`` statements, comprehension control flow) is
treated as straight-line fall-through, so analyses built on it can only
over-approximate reachability — rules err toward reporting, never toward
silently missing a path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BasicBlock",
    "CFG",
    "ForwardAnalysis",
    "FunctionInfo",
    "ModuleContext",
    "build_cfg",
    "call_name",
    "context_for_source",
    "is_literal",
    "iter_functions",
    "keyword_value",
    "receiver_text",
    "shallow_walk",
    "statement_tree",
]

@dataclass
class BasicBlock:
    """A maximal straight-line statement run in one function's CFG."""

    index: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    #: True for the synthetic exit block every return/raise/fall-off
    #: edge targets (it holds no statements).
    is_exit: bool = False

    def add_successor(self, index: int) -> None:
        if index not in self.successors:
            self.successors.append(index)


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    function: Any
    blocks: List[BasicBlock]
    entry: int
    exit: int

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def reachable_from(self, start: int) -> List[int]:
        """Block indices reachable from *start* (inclusive)."""
        seen = {start}
        stack = [start]
        while stack:
            for successor in self.blocks[stack.pop()].successors:
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return sorted(seen)

    def statements_after(
        self, block_index: int, statement_index: int
    ) -> List[ast.stmt]:
        """Every statement that may execute strictly after the given
        statement: the rest of its block plus all blocks reachable from
        its successors.  Conservative (ignores branch conditions)."""
        block = self.blocks[block_index]
        following = list(block.statements[statement_index + 1 :])
        seen = set()
        stack = list(block.successors)
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            successor = self.blocks[index]
            following.extend(successor.statements)
            stack.extend(successor.successors)
        return following


class _CFGBuilder:
    """Builds the block graph; one instance per function."""

    def __init__(self, function: Any):
        self.function = function
        self.blocks: List[BasicBlock] = []
        self.exit_index = self._new_block(is_exit=True)

    def _new_block(self, is_exit: bool = False) -> int:
        block = BasicBlock(index=len(self.blocks), is_exit=is_exit)
        self.blocks.append(block)
        return block.index

    def build(self) -> CFG:
        entry = self._new_block()
        end = self._sequence(self.function.body, entry, loop=None)
        if end is not None:
            self.blocks[end].add_successor(self.exit_index)
        return CFG(
            function=self.function,
            blocks=self.blocks,
            entry=entry,
            exit=self.exit_index,
        )

    # ``loop`` is (continue_target, break_targets_list) for the innermost
    # enclosing loop; break targets are patched once the loop exit exists.

    def _sequence(
        self,
        statements: Iterable[ast.stmt],
        current: int,
        loop: Optional[Tuple[int, List[int]]],
    ) -> Optional[int]:
        """Thread *statements* from block *current*; returns the block
        control falls out of, or None when every path left (return/raise/
        break/continue)."""
        for statement in statements:
            if current is None:
                # Unreachable code after a terminator: keep it in a
                # disconnected block so rules still see the statements.
                current = self._new_block()
            current = self._statement(statement, current, loop)
        return current

    def _statement(
        self,
        statement: ast.stmt,
        current: int,
        loop: Optional[Tuple[int, List[int]]],
    ) -> Optional[int]:
        blocks = self.blocks
        if isinstance(statement, ast.If):
            blocks[current].statements.append(statement)
            join = self._new_block()
            then_entry = self._new_block()
            blocks[current].add_successor(then_entry)
            then_end = self._sequence(statement.body, then_entry, loop)
            if then_end is not None:
                blocks[then_end].add_successor(join)
            if statement.orelse:
                else_entry = self._new_block()
                blocks[current].add_successor(else_entry)
                else_end = self._sequence(statement.orelse, else_entry, loop)
                if else_end is not None:
                    blocks[else_end].add_successor(join)
            else:
                blocks[current].add_successor(join)
            return join
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new_block()
            blocks[current].add_successor(head)
            blocks[head].statements.append(statement)
            after = self._new_block()
            body_entry = self._new_block()
            blocks[head].add_successor(body_entry)
            # ``while True:`` with no break never falls through, but the
            # conservative graph keeps the exit edge unless the condition
            # is literally True with no breaks — precision rules don't
            # currently need.
            blocks[head].add_successor(after)
            breaks: List[int] = []
            body_end = self._sequence(
                statement.body, body_entry, (head, breaks)
            )
            if body_end is not None:
                blocks[body_end].add_successor(head)
            for index in breaks:
                blocks[index].add_successor(after)
            if statement.orelse:
                else_end = self._sequence(statement.orelse, after, loop)
                return else_end if else_end is not None else after
            return after
        if isinstance(statement, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            entry = self._new_block()
            blocks[current].add_successor(entry)
            join = self._new_block()
            region_start = len(self.blocks)
            body_end = self._sequence(statement.body, entry, loop)
            # Conservative exception edges: any block of the try body may
            # transfer to any handler.  The region is every block the
            # builder allocated while sequencing the body (allocation is
            # append-only, so that is an index interval), plus the entry.
            body_blocks = [entry] + [
                index
                for index in range(region_start, len(self.blocks))
                if not self.blocks[index].is_exit
            ]
            handler_ends: List[Optional[int]] = []
            for handler in statement.handlers:
                handler_entry = self._new_block()
                for index in body_blocks:
                    blocks[index].add_successor(handler_entry)
                handler_ends.append(
                    self._sequence(handler.body, handler_entry, loop)
                )
            if statement.orelse and body_end is not None:
                body_end = self._sequence(statement.orelse, body_end, loop)
            ends = [body_end] + handler_ends
            if statement.finalbody:
                final_entry = self._new_block()
                for end in ends:
                    if end is not None:
                        blocks[end].add_successor(final_entry)
                final_end = self._sequence(
                    statement.finalbody, final_entry, loop
                )
                if final_end is not None:
                    blocks[final_end].add_successor(join)
                return join
            for end in ends:
                if end is not None:
                    blocks[end].add_successor(join)
            return join
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            blocks[current].statements.append(statement)
            return self._sequence(statement.body, current, loop)
        if isinstance(statement, (ast.Return, ast.Raise)):
            blocks[current].statements.append(statement)
            blocks[current].add_successor(self.exit_index)
            return None
        if isinstance(statement, ast.Break):
            blocks[current].statements.append(statement)
            if loop is not None:
                loop[1].append(current)
            return None
        if isinstance(statement, ast.Continue):
            blocks[current].statements.append(statement)
            if loop is not None:
                blocks[current].add_successor(loop[0])
            return None
        # Everything else — assignments, expression statements, nested
        # function/class definitions, match statements — is straight-line
        # as far as this CFG is concerned.
        blocks[current].statements.append(statement)
        return current

def build_cfg(function: Any) -> CFG:
    """The statement-level CFG of *function* (a FunctionDef node)."""
    return _CFGBuilder(function).build()


class ForwardAnalysis:
    """A forward dataflow pass over one CFG.

    Subclasses define the lattice and transfer::

        class Reserved(ForwardAnalysis):
            def initial(self): return False
            def join(self, a, b): return a or b
            def transfer(self, state, stmt): ...

    :meth:`run` returns ``(block_in, statement_in)`` where *block_in*
    maps block index -> state at block entry and *statement_in* maps
    ``id(stmt)`` -> state immediately before that statement.  States must
    be immutable values (bools, frozensets, tuples) — transfer returns a
    new state, never mutates.
    """

    #: Iteration safety valve; the lattices rules use are tiny, so a
    #: non-terminating transfer is a rule bug worth failing loudly on.
    max_iterations = 10_000

    def initial(self) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, state: Any, statement: ast.stmt) -> Any:
        raise NotImplementedError

    def run(self, cfg: CFG) -> Tuple[Dict[int, Any], Dict[int, Any]]:
        block_in: Dict[int, Any] = {cfg.entry: self.initial()}
        worklist: List[int] = [cfg.entry]
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > self.max_iterations:
                raise RuntimeError(
                    f"dataflow failed to converge in {self.max_iterations} "
                    f"iterations — non-monotone transfer?"
                )
            index = worklist.pop()
            state = block_in[index]
            for statement in cfg.blocks[index].statements:
                state = self.transfer(state, statement)
            for successor in cfg.blocks[index].successors:
                if successor not in block_in:
                    block_in[successor] = state
                    worklist.append(successor)
                else:
                    merged = self.join(block_in[successor], state)
                    if merged != block_in[successor]:
                        block_in[successor] = merged
                        worklist.append(successor)
        statement_in: Dict[int, Any] = {}
        for index, entry_state in block_in.items():
            state = entry_state
            for statement in cfg.blocks[index].statements:
                statement_in[id(statement)] = state
                state = self.transfer(state, statement)
        return block_in, statement_in


@dataclass
class FunctionInfo:
    """One function (or method) in a module's index."""

    node: Any
    #: Dotted location inside the module, e.g. ``Runtime.submit``.
    qualname: str
    #: Innermost enclosing class name, or None for module-level defs.
    class_name: Optional[str]


def iter_functions(tree: ast.Module) -> List[FunctionInfo]:
    """Every function/method in *tree* with its enclosing-class context."""
    found: List[FunctionInfo] = []

    def visit(node: ast.AST, class_name: Optional[str], prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found.append(FunctionInfo(child, qualname, class_name))
                visit(child, class_name, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name, f"{prefix}{child.name}.")
            else:
                visit(child, class_name, prefix)

    visit(tree, None, "")
    return found


@dataclass
class ModuleContext:
    """One module, parsed once, shared by every analysis pass.

    Rules receive the same context object, so the AST walk products they
    need repeatedly — the function index, per-function CFGs — are built
    once and memoized here.  The ``parse_seconds``/``cfg_seconds``
    counters feed the CLI's JSON ``stats`` block, which CI asserts a
    wall-clock budget over.
    """

    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    parse_seconds: float = 0.0
    cfg_seconds: float = 0.0
    _functions: Optional[List[FunctionInfo]] = None
    _cfgs: Dict[int, CFG] = field(default_factory=dict)
    _node_index: Optional[Dict[type, List[ast.AST]]] = None

    @property
    def functions(self) -> List[FunctionInfo]:
        if self._functions is None:
            self._functions = iter_functions(self.tree)
        return self._functions

    def walk(self, *types: type) -> List[ast.AST]:
        """All nodes of the given AST types, from one shared full walk.

        The index is built on first use and reused by every rule, so N
        rules asking for calls/classes/functions cost one traversal of
        the module, not N.
        """
        if self._node_index is None:
            index: Dict[type, List[ast.AST]] = {}
            for node in ast.walk(self.tree):
                index.setdefault(type(node), []).append(node)
            self._node_index = index
        found: List[ast.AST] = []
        for node_type in types:
            found.extend(self._node_index.get(node_type, []))
        return found

    def cfg(self, function: Any) -> CFG:
        """The (cached) CFG for one of this module's functions."""
        key = id(function)
        cached = self._cfgs.get(key)
        if cached is None:
            started = perf_counter()
            cached = build_cfg(function)
            self.cfg_seconds += perf_counter() - started
            self._cfgs[key] = cached
        return cached

    @property
    def cfg_builds(self) -> int:
        return len(self._cfgs)

    def enclosing_class(self, function: Any) -> Optional[str]:
        for info in self.functions:
            if info.node is function:
                return info.class_name
        return None


def context_for_source(source: str, path: str = "<string>") -> ModuleContext:
    """Parse *source* once into a shared :class:`ModuleContext`.

    Raises :class:`SyntaxError` like :func:`ast.parse` — callers that
    need a finding instead (the lint driver) catch it there.
    """
    started = perf_counter()
    tree = ast.parse(source, filename=path)
    elapsed = perf_counter() - started
    return ModuleContext(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        parse_seconds=elapsed,
    )


# ---------------------------------------------------------------------------
# Small shared helpers for rules built on the framework
# ---------------------------------------------------------------------------


def shallow_walk(statement: ast.stmt) -> Iterable[ast.AST]:
    """Walk the parts of *statement* the CFG attributes to the statement
    itself — i.e. excluding compound bodies, which the CFG sequences
    into their own blocks (walking them here would double-count their
    contents against every enclosing compound statement)."""
    roots: List[ast.AST]
    if isinstance(statement, (ast.If, ast.While)):
        roots = [statement.test]
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        roots = [statement.target, statement.iter]
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        roots = []
        for item in statement.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
    elif isinstance(
        statement,
        (
            ast.Try,
            ast.FunctionDef,
            ast.AsyncFunctionDef,
            ast.ClassDef,
        ),
    ):
        roots = []
    else:
        roots = [statement]
    for root in roots:
        yield from ast.walk(root)


def statement_tree(body: Iterable[ast.stmt]) -> List[ast.stmt]:
    """Every CFG-granularity statement in *body*: simple statements and
    compound heads, recursing through compound bodies but **not** into
    nested function/class definitions (those are separate CFGs)."""
    found: List[ast.stmt] = []
    stack: List[ast.stmt] = list(body)
    while stack:
        statement = stack.pop()
        if isinstance(
            statement,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        found.append(statement)
        if isinstance(statement, (ast.If, ast.While)):
            stack.extend(statement.body)
            stack.extend(statement.orelse)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            stack.extend(statement.body)
            stack.extend(statement.orelse)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            stack.extend(statement.body)
        elif isinstance(statement, ast.Try):
            stack.extend(statement.body)
            for handler in statement.handlers:
                stack.extend(handler.body)
            stack.extend(statement.orelse)
            stack.extend(statement.finalbody)
    return found


def call_name(node: ast.expr) -> Optional[str]:
    """The trailing name of a call target: ``f`` for ``f(...)``, ``m``
    for ``obj.a.m(...)``; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def receiver_text(node: ast.expr) -> str:
    """A lowercase dotted rendering of a call receiver, for name-pattern
    matching (``self._out_rings[shard]`` -> ``self._out_rings``)."""
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    return ".".join(reversed(parts)).lower()


def keyword_value(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_literal(node: Optional[ast.expr], value: Any) -> bool:
    return isinstance(node, ast.Constant) and node.value == value
