"""Repo-specific AST lint: engine invariants as checkable rules.

Generic linters cannot know that ``repro`` operators must be replayable
(no wall-clock reads in hot paths), that stream elements are immutable
value objects, or that punctuation handling is mandatory.  This module
encodes those invariants as AST rules with stable IDs:

=======  ========  ====================================================
ID       Severity  Invariant
=======  ========  ====================================================
REP101   error     No wall-clock reads (``time.time``/``datetime.now``)
                   in engine/operators/lmerge hot paths — results must
                   be a function of the element sequence alone
                   (``time.perf_counter`` for measurement is fine).
REP102   error     Direct ``Operator`` subclasses that handle data
                   elements (``on_insert``/``on_adjust``/
                   ``receive_batch``) must also handle punctuation:
                   define ``on_stable`` (or take over delivery wholesale
                   by overriding ``receive``).
REP103   error     Never mutate received elements: no attribute stores
                   on parameters typed ``Insert``/``Adjust``/``Element``
                   (or named ``element``) — elements are shared across
                   subscribers.
REP104   error     Classes declaring ``__slots__`` must not store
                   attributes outside them (``self.x = ...``,
                   ``object.__setattr__(self, "x", ...)``, or the
                   ``_set(self, "x", ...)`` idiom) — growing a
                   ``__dict__`` silently forfeits the slotted layout.
REP105   error     No bare ``print`` in library code under ``src/`` —
                   use the CLI surface or :mod:`repro.obs`.  CLI modules
                   (``__main__.py``, ``cli.py``) are exempt.
REP106   warning   No mutable default arguments (``def f(x=[])``).
REP107   error     Columnar hot paths must stay columnar: inside the
                   batch handlers of engine/operators/lmerge code
                   (``receive_columns``, ``process_columns``,
                   ``_insert_columns``, ...), do not loop over a
                   ``ColumnBatch`` row by row — no ``for e in batch``
                   and no iteration over ``batch.to_elements()`` /
                   ``batch.elements_slice(...)``.  Walk the columns
                   (``batch.vs``/``batch.kinds``/``batch.runs()``) and
                   materialize only surviving rows.
REP108   error     Index node allocation is pooled: no bare
                   ``_Node(...)`` / ``In2TNode(...)`` / ``In3TNode(...)``
                   outside the module that defines the class — construct
                   through the owning index (or the rbtree node pool) so
                   reclamation can recycle what it retires.
REP109   error     Registry instrument lookups stay out of hot loops: a
                   ``registry.counter/gauge/histogram/timeseries(...)``
                   call inside a ``for``/``while`` body (or a
                   comprehension) in engine/lmerge/structures code pays a
                   dict lookup + label-key build per iteration — resolve
                   the handle once before the loop and call
                   ``.inc()``/``.set()``/``.observe()`` on it inside.
=======  ========  ====================================================

Suppression: append ``# noqa: REP104`` (or a bare ``# noqa``) to the
offending line.  Run via ``python -m repro.analysis lint <paths>``;
programmatic entry points are :func:`lint_source`, :func:`lint_file`, and
:func:`lint_paths`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Module path fragments that count as merge-engine hot paths (REP101).
HOT_PATH_PARTS = (
    ("repro", "engine"),
    ("repro", "operators"),
    ("repro", "lmerge"),
)

#: Wall-clock call names (attribute or bare) REP101 flags.
WALL_CLOCK_ATTRS = {"time", "time_ns", "now", "utcnow", "today"}
WALL_CLOCK_ROOTS = {"time", "datetime", "date"}

#: Parameter annotations REP103 treats as shared stream elements.
ELEMENT_TYPES = {"Insert", "Adjust", "Stable", "Element"}

#: File names exempt from REP105 (they *are* the console surface).
PRINT_EXEMPT_FILES = {"__main__.py", "cli.py"}

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One lint hit."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable ID, severity, scope, and an AST check."""

    id: str
    severity: str
    summary: str
    applies: Callable[[Path], bool]
    check: Callable[[ast.Module, str], List["_RawFinding"]]


@dataclass(frozen=True)
class _RawFinding:
    line: int
    col: int
    message: str


def _parts(path: Path) -> tuple:
    return tuple(part for part in path.as_posix().split("/") if part)


def _in_hot_path(path: Path) -> bool:
    parts = _parts(path)
    for fragment in HOT_PATH_PARTS:
        for i in range(len(parts) - len(fragment) + 1):
            if parts[i : i + len(fragment)] == fragment:
                return True
    return False


def _in_src(path: Path) -> bool:
    return "src" in _parts(path) or "repro" in _parts(path)


def _always(_path: Path) -> bool:
    return True


# ---------------------------------------------------------------------------
# REP101 — wall-clock reads in hot paths
# ---------------------------------------------------------------------------


def _wall_clock_aliases(tree: ast.Module) -> Set[str]:
    """Names bound by ``from time import time`` style imports."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "time",
            "datetime",
        ):
            for alias in node.names:
                if alias.name in WALL_CLOCK_ATTRS:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _attr_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _check_wall_clock(tree: ast.Module, _source: str) -> List[_RawFinding]:
    aliases = _wall_clock_aliases(tree)
    findings: List[_RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in WALL_CLOCK_ATTRS
            and _attr_root(func) in WALL_CLOCK_ROOTS
        ):
            name = f"{_attr_root(func)}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in aliases:
            name = func.id
        else:
            continue
        findings.append(
            _RawFinding(
                node.lineno,
                node.col_offset,
                f"wall-clock read {name}() in a merge hot path; element "
                f"processing must be replayable (time.perf_counter is "
                f"allowed for measurement)",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# REP102 — Operator subclasses must handle punctuation
# ---------------------------------------------------------------------------


def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _check_on_stable(tree: ast.Module, _source: str) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_base_name(base) == "Operator" for base in node.bases):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        handles_data = methods & {"on_insert", "on_adjust", "receive_batch"}
        if not handles_data:
            continue  # output-only operator (source, bridge): no input
        if "on_stable" in methods or "receive" in methods:
            continue
        findings.append(
            _RawFinding(
                node.lineno,
                node.col_offset,
                f"Operator subclass {node.name!r} handles data elements "
                f"({', '.join(sorted(handles_data))}) but defines neither "
                f"on_stable nor receive — punctuation would be dropped "
                f"and downstream frontiers never advance",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# REP103 — no mutation of received elements
# ---------------------------------------------------------------------------


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.split(".")[-1].strip()
    return None


def _element_params(
    function: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    names: Set[str] = set()
    args = function.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
    ]:
        annotated = _annotation_name(arg.annotation)
        if annotated in ELEMENT_TYPES or (
            annotated is None and arg.arg == "element"
        ):
            names.add(arg.arg)
    return names


def _check_element_mutation(
    tree: ast.Module, _source: str
) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for function in ast.walk(tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _element_params(function)
        if not params:
            continue
        for node in ast.walk(function):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    findings.append(
                        _RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"mutation of received element parameter "
                            f"{target.value.id!r} "
                            f"({target.value.id}.{target.attr} = ...); "
                            f"elements are immutable and shared across "
                            f"subscribers — build a new element instead",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# REP104 — slotted classes must not grow attributes
# ---------------------------------------------------------------------------


def _slot_names(node: ast.ClassDef) -> Optional[Set[str]]:
    """The literal ``__slots__`` of a class body, or None when absent."""
    for item in node.body:
        values: Optional[ast.expr] = None
        if isinstance(item, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in item.targets
            ):
                values = item.value
        elif isinstance(item, ast.AnnAssign):
            if (
                isinstance(item.target, ast.Name)
                and item.target.id == "__slots__"
            ):
                values = item.value
        if values is None:
            continue
        if isinstance(values, (ast.Tuple, ast.List, ast.Set)):
            names = {
                el.value
                for el in values.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            }
            return names
        if isinstance(values, ast.Constant) and isinstance(values.value, str):
            return {values.value}
        return None  # dynamic __slots__: not checkable
    return None


def _setattr_string_target(node: ast.Call) -> Optional[str]:
    """The attribute name of ``object.__setattr__(self, "name", ...)`` or
    ``_set(self, "name", ...)`` calls targeting ``self``."""
    func = node.func
    is_object_setattr = (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    )
    is_set_alias = isinstance(func, ast.Name) and func.id == "_set"
    if not (is_object_setattr or is_set_alias):
        return None
    if len(node.args) < 2:
        return None
    target, name = node.args[0], node.args[1]
    if not (isinstance(target, ast.Name) and target.id == "self"):
        return None
    if isinstance(name, ast.Constant) and isinstance(name.value, str):
        return name.value
    return None


def _check_slot_growth(tree: ast.Module, _source: str) -> List[_RawFinding]:
    # Union slots along the (same-module) base chain so subclasses may
    # store into inherited slots.
    class_slots: Dict[str, Optional[Set[str]]] = {}
    class_bases: Dict[str, List[str]] = {}
    classes: List[ast.ClassDef] = [
        node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    ]
    for node in classes:
        class_slots[node.name] = _slot_names(node)
        class_bases[node.name] = [
            name
            for name in (_base_name(base) for base in node.bases)
            if name is not None
        ]

    def effective_slots(name: str, seen: Set[str]) -> Optional[Set[str]]:
        if name in seen or name not in class_slots:
            # Base outside this module: unknown layout, skip the class.
            return None
        seen.add(name)
        own = class_slots[name]
        if own is None:
            return None
        merged = set(own)
        for base in class_bases[name]:
            if base == "object":
                continue
            inherited = effective_slots(base, seen)
            if inherited is None:
                return None
            merged |= inherited
        return merged

    findings: List[_RawFinding] = []
    for node in classes:
        if class_slots.get(node.name) is None:
            continue
        slots = effective_slots(node.name, set())
        if slots is None:
            continue
        for sub in ast.walk(node):
            attr: Optional[str] = None
            line, col = 0, 0
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr, line, col = (
                            target.attr,
                            sub.lineno,
                            sub.col_offset,
                        )
            elif isinstance(sub, ast.Call):
                named = _setattr_string_target(sub)
                if named is not None:
                    attr, line, col = named, sub.lineno, sub.col_offset
            if attr is not None and attr not in slots:
                findings.append(
                    _RawFinding(
                        line,
                        col,
                        f"attribute {attr!r} stored outside __slots__ of "
                        f"{node.name!r}; slotted element classes must not "
                        f"grow __dict__ entries",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP105 — no bare print in library code
# ---------------------------------------------------------------------------


def _print_applies(path: Path) -> bool:
    return _in_src(path) and path.name not in PRINT_EXEMPT_FILES


def _check_print(tree: ast.Module, _source: str) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            findings.append(
                _RawFinding(
                    node.lineno,
                    node.col_offset,
                    "bare print() in library code; route output through "
                    "the CLI layer or repro.obs",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP106 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


def _check_mutable_default(
    tree: ast.Module, _source: str
) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for function in ast.walk(tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(function.args.defaults) + [
            d for d in function.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    _RawFinding(
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {function.name}(); "
                        f"shared across calls — default to None and build "
                        f"inside",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP107 — columnar hot paths must not fall back to per-element loops
# ---------------------------------------------------------------------------

#: Hot-path handler names whose bodies REP107 inspects.
COLUMNAR_HOT_FUNCS = {
    "receive_columns",
    "process_columns",
    "emit_columns",
    "_insert_columns",
    "_adjust_columns",
    "_stable_columns",
    "_insert_batch",
    "_adjust_batch",
    "_stable_batch",
    "receive_batch",
}

#: ColumnBatch boundary converters whose results must not be looped over
#: inside a hot handler.
_BOUNDARY_CONVERTERS = {"to_elements", "elements_slice"}


def _batch_params(
    function: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    """Parameters of *function* that carry a ColumnBatch: annotated
    ``ColumnBatch``, or (in the columnar handlers) simply named ``batch``."""
    names: Set[str] = set()
    args = function.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        annotated = _annotation_name(arg.annotation)
        if annotated == "ColumnBatch" or (
            annotated is None and arg.arg == "batch"
        ):
            names.add(arg.arg)
    return names


def _check_columnar_loops(tree: ast.Module, _source: str) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for function in ast.walk(tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if function.name not in COLUMNAR_HOT_FUNCS:
            continue
        params = _batch_params(function)
        if not params:
            continue
        for node in ast.walk(function):
            iterables: List[ast.expr] = []
            if isinstance(node, ast.For):
                iterables = [node.iter]
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
            ):
                iterables = [generator.iter for generator in node.generators]
            for iterable in iterables:
                if isinstance(iterable, ast.Name) and iterable.id in params:
                    what = f"for ... in {iterable.id}"
                elif (
                    isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Attribute)
                    and iterable.func.attr in _BOUNDARY_CONVERTERS
                    and _attr_root(iterable.func) in params
                ):
                    root = _attr_root(iterable.func)
                    what = f"for ... in {root}.{iterable.func.attr}(...)"
                else:
                    continue
                findings.append(
                    _RawFinding(
                        iterable.lineno,
                        iterable.col_offset,
                        f"per-element loop over a ColumnBatch ({what}) in "
                        f"hot handler {function.name}(); walk the columns "
                        f"(batch.vs/batch.kinds/batch.runs()) and "
                        f"materialize only surviving rows",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP108 — pooled index node classes are only constructed in their home module
# ---------------------------------------------------------------------------

#: Classes whose instances are recycled through freelists (see
#: repro.structures.pool): constructing one elsewhere bypasses the pool
#: and, worse, can alias an object the index later recycles.
POOLED_NODE_CLASSES = {"_Node", "In2TNode", "In3TNode"}


def _check_bare_node_alloc(tree: ast.Module, _source: str) -> List[_RawFinding]:
    # The defining module is exempt: a file that holds `class In2TNode`
    # IS the pool-aware home of that class (rbtree.py for _Node, etc.).
    defined_here = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and node.name in POOLED_NODE_CLASSES
    }
    findings: List[_RawFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in POOLED_NODE_CLASSES and name not in defined_here:
            findings.append(
                _RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"bare {name}(...) outside its defining module: index "
                    f"nodes are pool-recycled — go through the owning "
                    f"index's add/find_or_add (or NODE_POOL.acquire) "
                    f"instead",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP109 — registry instrument lookups stay out of hot loops
# ---------------------------------------------------------------------------

#: Module path fragments REP109 patrols: the merge hot paths that meet
#: the <5% disabled-overhead budget.  obs/ and resilience/ are exempt —
#: observers and recovery code run at sampling cadence, not per element.
REGISTRY_LOOP_PARTS = (
    ("repro", "engine"),
    ("repro", "lmerge"),
    ("repro", "structures"),
)

#: MetricRegistry factory methods: each call is a labels-key build plus a
#: dict lookup (get-or-create), cheap once but not per loop iteration.
REGISTRY_FACTORY_METHODS = {"counter", "gauge", "histogram", "timeseries"}


def _in_registry_loop_scope(path: Path) -> bool:
    parts = _parts(path)
    for fragment in REGISTRY_LOOP_PARTS:
        for i in range(len(parts) - len(fragment) + 1):
            if parts[i : i + len(fragment)] == fragment:
                return True
    return False


def _is_registry_receiver(node: ast.expr) -> bool:
    """True when *node* is the object a factory call is made on and it
    looks like a registry (``registry.counter``, ``self.registry.gauge``,
    ``self._registry.histogram``)."""
    if isinstance(node, ast.Name):
        return "registry" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "registry" in node.attr.lower()
    return False


def _registry_factory_calls(root: ast.AST) -> List[ast.Call]:
    calls: List[ast.Call] = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in REGISTRY_FACTORY_METHODS
            and _is_registry_receiver(node.func.value)
        ):
            calls.append(node)
    return calls


def _check_registry_in_loop(
    tree: ast.Module, _source: str
) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    seen: Set[tuple] = set()  # nested loops: report each call once

    def report(call: ast.Call, where: str) -> None:
        key = (call.lineno, call.col_offset)
        if key in seen:
            return
        seen.add(key)
        findings.append(
            _RawFinding(
                call.lineno,
                call.col_offset,
                f"registry.{call.func.attr}(...) inside {where}: the "  # type: ignore[union-attr]
                f"get-or-create lookup rebuilds the labels key every "
                f"iteration — resolve the instrument handle before the "
                f"loop and call .inc()/.set()/.observe() on it inside",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            kind = "a while loop" if isinstance(node, ast.While) else "a for loop"
            for stmt in [*node.body, *node.orelse]:
                for call in _registry_factory_calls(stmt):
                    report(call, kind)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for call in _registry_factory_calls(node):
                report(call, "a comprehension")
    return findings


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="REP101",
            severity=SEVERITY_ERROR,
            summary="no wall-clock reads in engine/operators/lmerge",
            applies=_in_hot_path,
            check=_check_wall_clock,
        ),
        Rule(
            id="REP102",
            severity=SEVERITY_ERROR,
            summary="data-handling Operator subclasses must define "
            "on_stable or receive",
            applies=_always,
            check=_check_on_stable,
        ),
        Rule(
            id="REP103",
            severity=SEVERITY_ERROR,
            summary="no mutation of received Insert/Adjust/Element params",
            applies=_always,
            check=_check_element_mutation,
        ),
        Rule(
            id="REP104",
            severity=SEVERITY_ERROR,
            summary="slotted classes must not grow attributes",
            applies=_always,
            check=_check_slot_growth,
        ),
        Rule(
            id="REP105",
            severity=SEVERITY_ERROR,
            summary="no bare print() in src/ library code",
            applies=_print_applies,
            check=_check_print,
        ),
        Rule(
            id="REP106",
            severity=SEVERITY_WARNING,
            summary="no mutable default arguments",
            applies=_always,
            check=_check_mutable_default,
        ),
        Rule(
            id="REP107",
            severity=SEVERITY_ERROR,
            summary="no per-element loops over ColumnBatch in columnar "
            "hot handlers",
            applies=_in_hot_path,
            check=_check_columnar_loops,
        ),
        Rule(
            id="REP108",
            severity=SEVERITY_ERROR,
            summary="pooled index node classes are only constructed in "
            "their defining module",
            applies=_always,
            check=_check_bare_node_alloc,
        ),
        Rule(
            id="REP109",
            severity=SEVERITY_ERROR,
            summary="no registry instrument lookups inside "
            "engine/lmerge/structures loops",
            applies=_in_registry_loop_scope,
            check=_check_registry_in_loop,
        ),
    )
}


def _suppressed(source_line: str, rule_id: str) -> bool:
    match = _NOQA_RE.search(source_line)
    if not match:
        return False
    codes = match.group("codes")
    if not codes:
        return True  # bare `# noqa` silences everything on the line
    return rule_id.upper() in {
        code.strip().upper() for code in codes.split(",")
    }


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module's source; *path* scopes path-dependent rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="REP100",
                severity=SEVERITY_ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    selected = (
        [RULES[rule_id] for rule_id in rules]
        if rules is not None
        else list(RULES.values())
    )
    location = Path(path)
    findings: List[Finding] = []
    for rule in selected:
        if not rule.applies(location):
            continue
        for raw in rule.check(tree, source):
            source_line = (
                lines[raw.line - 1] if 0 < raw.line <= len(lines) else ""
            )
            if _suppressed(source_line, rule.id):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=raw.line,
                    col=raw.col,
                    rule=rule.id,
                    severity=rule.severity,
                    message=raw.message,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: "Path | str", rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    location = Path(path)
    return lint_source(
        location.read_text(encoding="utf-8"),
        path=location.as_posix(),
        rules=rules,
    )


def iter_python_files(paths: Sequence["Path | str"]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        location = Path(entry)
        if location.is_dir():
            files.extend(sorted(location.rglob("*.py")))
        elif location.suffix == ".py":
            files.append(location)
    return files


def lint_paths(
    paths: Sequence["Path | str"], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file, rules=rules))
    return findings
