"""Repo-specific AST lint: engine invariants as checkable rules.

Generic linters cannot know that ``repro`` operators must be replayable
(no wall-clock reads in hot paths), that stream elements are immutable
value objects, or that punctuation handling is mandatory.  This module
encodes those invariants as AST rules with stable IDs:

=======  ========  ====================================================
ID       Severity  Invariant
=======  ========  ====================================================
REP101   error     No wall-clock reads (``time.time``/``datetime.now``)
                   in engine/operators/lmerge hot paths — results must
                   be a function of the element sequence alone
                   (``time.perf_counter`` for measurement is fine).
REP102   error     Direct ``Operator`` subclasses that handle data
                   elements (``on_insert``/``on_adjust``/
                   ``receive_batch``) must also handle punctuation:
                   define ``on_stable`` (or take over delivery wholesale
                   by overriding ``receive``).
REP103   error     Never mutate received elements: no attribute stores
                   on parameters typed ``Insert``/``Adjust``/``Element``
                   (or named ``element``) — elements are shared across
                   subscribers.
REP104   error     Classes declaring ``__slots__`` must not store
                   attributes outside them (``self.x = ...``,
                   ``object.__setattr__(self, "x", ...)``, or the
                   ``_set(self, "x", ...)`` idiom) — growing a
                   ``__dict__`` silently forfeits the slotted layout.
REP105   error     No bare ``print`` in library code under ``src/`` —
                   use the CLI surface or :mod:`repro.obs`.  CLI modules
                   (``__main__.py``, ``cli.py``) are exempt.
REP106   warning   No mutable default arguments (``def f(x=[])``).
REP107   error     Columnar hot paths must stay columnar: inside the
                   batch handlers of engine/operators/lmerge code
                   (``receive_columns``, ``process_columns``,
                   ``_insert_columns``, ...), do not loop over a
                   ``ColumnBatch`` row by row — no ``for e in batch``
                   and no iteration over ``batch.to_elements()`` /
                   ``batch.elements_slice(...)``.  Walk the columns
                   (``batch.vs``/``batch.kinds``/``batch.runs()``) and
                   materialize only surviving rows.
REP108   error     Index node allocation is pooled: no bare
                   ``_Node(...)`` / ``In2TNode(...)`` / ``In3TNode(...)``
                   outside the module that defines the class — construct
                   through the owning index (or the rbtree node pool) so
                   reclamation can recycle what it retires.
REP109   error     Registry instrument lookups stay out of hot loops: a
                   ``registry.counter/gauge/histogram/timeseries(...)``
                   call inside a ``for``/``while`` body (or a
                   comprehension) in engine/lmerge/structures code pays a
                   dict lookup + label-key build per iteration — resolve
                   the handle once before the loop and call
                   ``.inc()``/``.set()``/``.observe()`` on it inside.
REP110   error     No blocking calls (bare lock ``.acquire()``, untimed
                   ring/queue ``.get()``, unbounded ``sleep``) inside
                   hot-path element handlers, nor anywhere between a
                   ring-slot reserve (binding a ``memoryview`` of ring
                   storage) and its commit/release — tracked through
                   branches by the CFG dataflow in
                   :mod:`repro.analysis.flow`.
REP111   error     Pool escape: an object acquired from a freelist
                   (``NODE_POOL.acquire()``, ``pool.acquire()``) must
                   not be stored into an attribute, subscript, or
                   container outside the module that defines the pooled
                   class — the pool recycles it, and an escaped alias
                   becomes a use-after-release.
REP112   error     Exception handlers in hot paths must not swallow
                   punctuation: an ``except`` wrapping a ``Stable`` emit
                   must re-raise or emit — silently dropping the stable
                   stalls every downstream frontier (REP102's dynamic
                   cousin, caught statically).
REP113   warning   Unused suppression: a ``# noqa: REPxxx`` comment
                   that names REP rules but suppresses no finding on its
                   line is dead and hides future regressions — remove
                   it.  Comments naming only foreign (ruff) codes are
                   ignored, as is bare ``# noqa``.
=======  ========  ====================================================

Suppression: append ``# noqa: REP104`` (or a bare ``# noqa``) to the
offending line.  Run via ``python -m repro.analysis lint <paths>``;
programmatic entry points are :func:`lint_source`, :func:`lint_file`, and
:func:`lint_paths` (or :func:`lint_paths_report` for findings plus the
shared-pass timing stats the CI budget assertion consumes).

Rules receive a :class:`repro.analysis.flow.ModuleContext`: one parse,
one node-type index, and one CFG per function, shared by every rule —
adding a rule does not add a traversal.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from .flow import (
    ForwardAnalysis,
    ModuleContext,
    context_for_source,
    receiver_text,
    shallow_walk,
    statement_tree,
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Module path fragments that count as merge-engine hot paths (REP101).
HOT_PATH_PARTS = (
    ("repro", "engine"),
    ("repro", "operators"),
    ("repro", "lmerge"),
)

#: Wall-clock call names (attribute or bare) REP101 flags.
WALL_CLOCK_ATTRS = {"time", "time_ns", "now", "utcnow", "today"}
WALL_CLOCK_ROOTS = {"time", "datetime", "date"}

#: Parameter annotations REP103 treats as shared stream elements.
ELEMENT_TYPES = {"Insert", "Adjust", "Stable", "Element"}

#: File names exempt from REP105 (they *are* the console surface).
PRINT_EXEMPT_FILES = {"__main__.py", "cli.py"}

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One lint hit."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable ID, severity, scope, and a context check.

    ``check`` receives the shared :class:`ModuleContext` — parse, node
    index, and CFGs are built once per module and reused across rules.
    ``detail`` is the long-form description the generated rule catalog
    in docs/ANALYSIS.md renders (see ``rules_markdown``).
    """

    id: str
    severity: str
    summary: str
    applies: Callable[[Path], bool]
    check: Callable[[ModuleContext], List["_RawFinding"]]
    detail: str = ""


@dataclass(frozen=True)
class _RawFinding:
    line: int
    col: int
    message: str


def _parts(path: Path) -> tuple:
    return tuple(part for part in path.as_posix().split("/") if part)


def _in_hot_path(path: Path) -> bool:
    parts = _parts(path)
    for fragment in HOT_PATH_PARTS:
        for i in range(len(parts) - len(fragment) + 1):
            if parts[i : i + len(fragment)] == fragment:
                return True
    return False


def _in_src(path: Path) -> bool:
    return "src" in _parts(path) or "repro" in _parts(path)


def _always(_path: Path) -> bool:
    return True


# ---------------------------------------------------------------------------
# REP101 — wall-clock reads in hot paths
# ---------------------------------------------------------------------------


def _wall_clock_aliases(ctx: ModuleContext) -> Set[str]:
    """Names bound by ``from time import time`` style imports."""
    aliases: Set[str] = set()
    for node in ctx.walk(ast.ImportFrom):
        if node.module in ("time", "datetime"):
            for alias in node.names:
                if alias.name in WALL_CLOCK_ATTRS:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _attr_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _check_wall_clock(ctx: ModuleContext) -> List[_RawFinding]:
    aliases = _wall_clock_aliases(ctx)
    findings: List[_RawFinding] = []
    for node in ctx.walk(ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in WALL_CLOCK_ATTRS
            and _attr_root(func) in WALL_CLOCK_ROOTS
        ):
            name = f"{_attr_root(func)}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in aliases:
            name = func.id
        else:
            continue
        findings.append(
            _RawFinding(
                node.lineno,
                node.col_offset,
                f"wall-clock read {name}() in a merge hot path; element "
                f"processing must be replayable (time.perf_counter is "
                f"allowed for measurement)",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# REP102 — Operator subclasses must handle punctuation
# ---------------------------------------------------------------------------


def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _check_on_stable(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for node in ctx.walk(ast.ClassDef):
        if not any(_base_name(base) == "Operator" for base in node.bases):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        handles_data = methods & {"on_insert", "on_adjust", "receive_batch"}
        if not handles_data:
            continue  # output-only operator (source, bridge): no input
        if "on_stable" in methods or "receive" in methods:
            continue
        findings.append(
            _RawFinding(
                node.lineno,
                node.col_offset,
                f"Operator subclass {node.name!r} handles data elements "
                f"({', '.join(sorted(handles_data))}) but defines neither "
                f"on_stable nor receive — punctuation would be dropped "
                f"and downstream frontiers never advance",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# REP103 — no mutation of received elements
# ---------------------------------------------------------------------------


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.split(".")[-1].strip()
    return None


def _element_params(
    function: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    names: Set[str] = set()
    args = function.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
    ]:
        annotated = _annotation_name(arg.annotation)
        if annotated in ELEMENT_TYPES or (
            annotated is None and arg.arg == "element"
        ):
            names.add(arg.arg)
    return names


def _check_element_mutation(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for function in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        params = _element_params(function)
        if not params:
            continue
        for node in ast.walk(function):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    findings.append(
                        _RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"mutation of received element parameter "
                            f"{target.value.id!r} "
                            f"({target.value.id}.{target.attr} = ...); "
                            f"elements are immutable and shared across "
                            f"subscribers — build a new element instead",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# REP104 — slotted classes must not grow attributes
# ---------------------------------------------------------------------------


def _slot_names(node: ast.ClassDef) -> Optional[Set[str]]:
    """The literal ``__slots__`` of a class body, or None when absent."""
    for item in node.body:
        values: Optional[ast.expr] = None
        if isinstance(item, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in item.targets
            ):
                values = item.value
        elif isinstance(item, ast.AnnAssign):
            if (
                isinstance(item.target, ast.Name)
                and item.target.id == "__slots__"
            ):
                values = item.value
        if values is None:
            continue
        if isinstance(values, (ast.Tuple, ast.List, ast.Set)):
            names = {
                el.value
                for el in values.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            }
            return names
        if isinstance(values, ast.Constant) and isinstance(values.value, str):
            return {values.value}
        return None  # dynamic __slots__: not checkable
    return None


def _setattr_string_target(node: ast.Call) -> Optional[str]:
    """The attribute name of ``object.__setattr__(self, "name", ...)`` or
    ``_set(self, "name", ...)`` calls targeting ``self``."""
    func = node.func
    is_object_setattr = (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    )
    is_set_alias = isinstance(func, ast.Name) and func.id == "_set"
    if not (is_object_setattr or is_set_alias):
        return None
    if len(node.args) < 2:
        return None
    target, name = node.args[0], node.args[1]
    if not (isinstance(target, ast.Name) and target.id == "self"):
        return None
    if isinstance(name, ast.Constant) and isinstance(name.value, str):
        return name.value
    return None


def _check_slot_growth(ctx: ModuleContext) -> List[_RawFinding]:
    # Union slots along the (same-module) base chain so subclasses may
    # store into inherited slots.
    class_slots: Dict[str, Optional[Set[str]]] = {}
    class_bases: Dict[str, List[str]] = {}
    classes: List[ast.ClassDef] = list(ctx.walk(ast.ClassDef))
    for node in classes:
        class_slots[node.name] = _slot_names(node)
        class_bases[node.name] = [
            name
            for name in (_base_name(base) for base in node.bases)
            if name is not None
        ]

    def effective_slots(name: str, seen: Set[str]) -> Optional[Set[str]]:
        if name in seen or name not in class_slots:
            # Base outside this module: unknown layout, skip the class.
            return None
        seen.add(name)
        own = class_slots[name]
        if own is None:
            return None
        merged = set(own)
        for base in class_bases[name]:
            if base == "object":
                continue
            inherited = effective_slots(base, seen)
            if inherited is None:
                return None
            merged |= inherited
        return merged

    findings: List[_RawFinding] = []
    for node in classes:
        if class_slots.get(node.name) is None:
            continue
        slots = effective_slots(node.name, set())
        if slots is None:
            continue
        for sub in ast.walk(node):
            attr: Optional[str] = None
            line, col = 0, 0
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr, line, col = (
                            target.attr,
                            sub.lineno,
                            sub.col_offset,
                        )
            elif isinstance(sub, ast.Call):
                named = _setattr_string_target(sub)
                if named is not None:
                    attr, line, col = named, sub.lineno, sub.col_offset
            if attr is not None and attr not in slots:
                findings.append(
                    _RawFinding(
                        line,
                        col,
                        f"attribute {attr!r} stored outside __slots__ of "
                        f"{node.name!r}; slotted element classes must not "
                        f"grow __dict__ entries",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP105 — no bare print in library code
# ---------------------------------------------------------------------------


def _print_applies(path: Path) -> bool:
    return _in_src(path) and path.name not in PRINT_EXEMPT_FILES


def _check_print(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for node in ctx.walk(ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            findings.append(
                _RawFinding(
                    node.lineno,
                    node.col_offset,
                    "bare print() in library code; route output through "
                    "the CLI layer or repro.obs",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP106 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


def _check_mutable_default(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for function in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        defaults = list(function.args.defaults) + [
            d for d in function.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    _RawFinding(
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {function.name}(); "
                        f"shared across calls — default to None and build "
                        f"inside",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP107 — columnar hot paths must not fall back to per-element loops
# ---------------------------------------------------------------------------

#: Hot-path handler names whose bodies REP107 inspects.
COLUMNAR_HOT_FUNCS = {
    "receive_columns",
    "process_columns",
    "emit_columns",
    "_insert_columns",
    "_adjust_columns",
    "_stable_columns",
    "_insert_batch",
    "_adjust_batch",
    "_stable_batch",
    "receive_batch",
}

#: ColumnBatch boundary converters whose results must not be looped over
#: inside a hot handler.
_BOUNDARY_CONVERTERS = {"to_elements", "elements_slice"}


def _batch_params(
    function: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Set[str]:
    """Parameters of *function* that carry a ColumnBatch: annotated
    ``ColumnBatch``, or (in the columnar handlers) simply named ``batch``."""
    names: Set[str] = set()
    args = function.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        annotated = _annotation_name(arg.annotation)
        if annotated == "ColumnBatch" or (
            annotated is None and arg.arg == "batch"
        ):
            names.add(arg.arg)
    return names


def _check_columnar_loops(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for function in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        if function.name not in COLUMNAR_HOT_FUNCS:
            continue
        params = _batch_params(function)
        if not params:
            continue
        for node in ast.walk(function):
            iterables: List[ast.expr] = []
            if isinstance(node, ast.For):
                iterables = [node.iter]
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
            ):
                iterables = [generator.iter for generator in node.generators]
            for iterable in iterables:
                if isinstance(iterable, ast.Name) and iterable.id in params:
                    what = f"for ... in {iterable.id}"
                elif (
                    isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Attribute)
                    and iterable.func.attr in _BOUNDARY_CONVERTERS
                    and _attr_root(iterable.func) in params
                ):
                    root = _attr_root(iterable.func)
                    what = f"for ... in {root}.{iterable.func.attr}(...)"
                else:
                    continue
                findings.append(
                    _RawFinding(
                        iterable.lineno,
                        iterable.col_offset,
                        f"per-element loop over a ColumnBatch ({what}) in "
                        f"hot handler {function.name}(); walk the columns "
                        f"(batch.vs/batch.kinds/batch.runs()) and "
                        f"materialize only surviving rows",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP108 — pooled index node classes are only constructed in their home module
# ---------------------------------------------------------------------------

#: Classes whose instances are recycled through freelists (see
#: repro.structures.pool): constructing one elsewhere bypasses the pool
#: and, worse, can alias an object the index later recycles.
POOLED_NODE_CLASSES = {"_Node", "In2TNode", "In3TNode"}


def _check_bare_node_alloc(ctx: ModuleContext) -> List[_RawFinding]:
    # The defining module is exempt: a file that holds `class In2TNode`
    # IS the pool-aware home of that class (rbtree.py for _Node, etc.).
    defined_here = {
        node.name
        for node in ctx.walk(ast.ClassDef)
        if node.name in POOLED_NODE_CLASSES
    }
    findings: List[_RawFinding] = []
    for node in ctx.walk(ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in POOLED_NODE_CLASSES and name not in defined_here:
            findings.append(
                _RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"bare {name}(...) outside its defining module: index "
                    f"nodes are pool-recycled — go through the owning "
                    f"index's add/find_or_add (or NODE_POOL.acquire) "
                    f"instead",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP109 — registry instrument lookups stay out of hot loops
# ---------------------------------------------------------------------------

#: Module path fragments REP109 patrols: the merge hot paths that meet
#: the <5% disabled-overhead budget.  obs/ and resilience/ are exempt —
#: observers and recovery code run at sampling cadence, not per element.
REGISTRY_LOOP_PARTS = (
    ("repro", "engine"),
    ("repro", "lmerge"),
    ("repro", "structures"),
)

#: MetricRegistry factory methods: each call is a labels-key build plus a
#: dict lookup (get-or-create), cheap once but not per loop iteration.
REGISTRY_FACTORY_METHODS = {"counter", "gauge", "histogram", "timeseries"}


def _in_registry_loop_scope(path: Path) -> bool:
    parts = _parts(path)
    for fragment in REGISTRY_LOOP_PARTS:
        for i in range(len(parts) - len(fragment) + 1):
            if parts[i : i + len(fragment)] == fragment:
                return True
    return False


def _is_registry_receiver(node: ast.expr) -> bool:
    """True when *node* is the object a factory call is made on and it
    looks like a registry (``registry.counter``, ``self.registry.gauge``,
    ``self._registry.histogram``)."""
    if isinstance(node, ast.Name):
        return "registry" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "registry" in node.attr.lower()
    return False


def _registry_factory_calls(root: ast.AST) -> List[ast.Call]:
    calls: List[ast.Call] = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in REGISTRY_FACTORY_METHODS
            and _is_registry_receiver(node.func.value)
        ):
            calls.append(node)
    return calls


def _check_registry_in_loop(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    seen: Set[tuple] = set()  # nested loops: report each call once

    def report(call: ast.Call, where: str) -> None:
        key = (call.lineno, call.col_offset)
        if key in seen:
            return
        seen.add(key)
        findings.append(
            _RawFinding(
                call.lineno,
                call.col_offset,
                f"registry.{call.func.attr}(...) inside {where}: the "  # type: ignore[union-attr]
                f"get-or-create lookup rebuilds the labels key every "
                f"iteration — resolve the instrument handle before the "
                f"loop and call .inc()/.set()/.observe() on it inside",
            )
        )

    for node in ctx.walk(ast.For, ast.AsyncFor, ast.While):
        kind = "a while loop" if isinstance(node, ast.While) else "a for loop"
        for stmt in [*node.body, *node.orelse]:
            for call in _registry_factory_calls(stmt):
                report(call, kind)
    for node in ctx.walk(
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp
    ):
        for call in _registry_factory_calls(node):
            report(call, "a comprehension")
    return findings


# ---------------------------------------------------------------------------
# REP110 — no blocking calls in hot handlers or reserve→commit windows
# ---------------------------------------------------------------------------

#: Per-element delivery handlers: code on the element path, where one
#: blocked call stalls the whole shard.  Top-level worker loops
#: (``_shard_loop`` etc.) are *not* handlers — their blocking ``get`` on
#: an idle in-ring is the design.
HOT_HANDLER_NAMES = {
    "receive",
    "receive_batch",
    "receive_columns",
    "process",
    "process_batch",
    "process_columns",
    "on_insert",
    "on_adjust",
    "on_stable",
    "emit",
    "emit_batch",
    "emit_columns",
    "_insert",
    "_adjust",
    "_stable",
    "_insert_batch",
    "_adjust_batch",
    "_stable_batch",
    "_insert_columns",
    "_adjust_columns",
    "_stable_columns",
}

#: Receiver-name fragments identifying a lock-like object whose
#: ``.acquire()`` blocks.  Pool/freelist ``acquire`` is allocation, not
#: synchronization, and stays legal.
_LOCK_RECEIVER_HINTS = ("lock", "mutex", "sem", "cond")

#: Receiver-name fragments identifying a channel whose zero-argument
#: ``.get()`` blocks until a peer produces.
_CHANNEL_RECEIVER_HINTS = ("ring", "queue")


def _blocking_reason(node: ast.Call) -> Optional[str]:
    """Why *node* is a potentially unbounded blocking call, or None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        receiver = receiver_text(func.value)
        if func.attr == "acquire" and any(
            hint in receiver for hint in _LOCK_RECEIVER_HINTS
        ):
            has_bound = any(k.arg == "timeout" for k in node.keywords) or any(
                k.arg == "blocking"
                and isinstance(k.value, ast.Constant)
                and k.value.value is False
                for k in node.keywords
            )
            if not has_bound:
                return f"{receiver}.acquire() without timeout/blocking=False"
        if func.attr == "get" and any(
            hint in receiver for hint in _CHANNEL_RECEIVER_HINTS
        ):
            has_timeout = bool(node.args) or any(
                k.arg == "timeout" for k in node.keywords
            )
            if not has_timeout:
                return f"untimed {receiver}.get()"
        if func.attr == "sleep" and node.args:
            if not isinstance(node.args[0], ast.Constant):
                return "sleep() with a non-constant duration"
    elif isinstance(func, ast.Name) and func.id == "sleep" and node.args:
        if not isinstance(node.args[0], ast.Constant):
            return "sleep() with a non-constant duration"
    return None


class _ReserveWindow(ForwardAnalysis):
    """Dataflow: is a reserved-but-uncommitted ring slot live here?

    Reserve = binding the result of a ``memoryview(...)`` call (the
    zero-copy encode window ``ShmRing.put_frame`` hands out); commit =
    releasing the view or publishing the tail (``.release()`` /
    ``pack_into``).  The state is the set of live view names — a
    blocking call while it is non-empty stalls the ring slot itself.
    """

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(
        self, state: FrozenSet[str], statement: ast.stmt
    ) -> FrozenSet[str]:
        live = set(state)
        for node in shallow_walk(statement):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "release",
                    "pack_into",
                ):
                    root = receiver_text(func.value)
                    live.discard(root.split(".")[0])
                    if func.attr == "pack_into":
                        live.clear()  # tail publish commits the frame
                elif (
                    isinstance(func, ast.Name) and func.id == "pack_into"
                ):
                    live.clear()  # bare `from struct import pack_into`
        if isinstance(statement, ast.Assign):
            value = statement.value
            # Unwrap slicing: ``memoryview(buf)[a:b]`` reserves too.
            while isinstance(value, ast.Subscript):
                value = value.value
            is_view = (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "memoryview"
            )
            if is_view:
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        live.add(target.id)
        return frozenset(live)


def _check_blocking_calls(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for info in ctx.functions:
        function = info.node
        in_handler = function.name in HOT_HANDLER_NAMES
        # Cheap pre-scan: functions with no memoryview binding cannot
        # open a reserve window, so skip the CFG entirely unless this is
        # a handler (whose whole body is checked anyway).
        has_view = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "memoryview"
            for node in ast.walk(function)
        )
        if not in_handler and not has_view:
            continue
        statement_in: Dict[int, FrozenSet[str]] = {}
        if has_view:
            cfg = ctx.cfg(function)
            _, statement_in = _ReserveWindow().run(cfg)
            statements = [
                statement
                for block in cfg.blocks
                for statement in block.statements
            ]
        else:
            statements = statement_tree(function.body)
        for statement in statements:
            window = statement_in.get(id(statement), frozenset())
            for node in shallow_walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node)
                if reason is None:
                    continue
                if window:
                    findings.append(
                        _RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"blocking call ({reason}) while ring slot "
                            f"view {sorted(window)[0]!r} is reserved but "
                            f"not committed — the consumer cannot pass "
                            f"the unpublished frame",
                        )
                    )
                elif in_handler:
                    findings.append(
                        _RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"blocking call ({reason}) inside hot-path "
                            f"handler {function.name}(); one stalled "
                            f"element stalls the shard — bound the wait "
                            f"and surface backpressure instead",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# REP111 — pooled objects must not escape their function
# ---------------------------------------------------------------------------

#: Receiver fragments identifying a freelist-style allocator.
_POOL_RECEIVER_HINTS = ("pool", "free_list", "freelist")

#: Escaping container methods: storing the pooled object somewhere that
#: outlives the function frame.
_ESCAPE_METHODS = {"append", "add", "insert", "push", "appendleft", "extend"}


def _is_pool_acquire(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
        and any(
            hint in receiver_text(node.func.value)
            for hint in _POOL_RECEIVER_HINTS
        )
    )


class _PoolTaint(ForwardAnalysis):
    """Dataflow: which local names alias a pool-acquired object?"""

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(
        self, state: FrozenSet[str], statement: ast.stmt
    ) -> FrozenSet[str]:
        if not isinstance(statement, ast.Assign):
            return state
        value = statement.value
        tainted_value = _is_pool_acquire(value) or (
            isinstance(value, ast.Name) and value.id in state
        )
        live = set(state)
        for target in statement.targets:
            if isinstance(target, ast.Name):
                if tainted_value:
                    live.add(target.id)
                else:
                    live.discard(target.id)  # strong update: rebound
        return frozenset(live)


def _pool_exempt_module(ctx: ModuleContext) -> bool:
    """Modules that own the pooled lifecycle: those defining a pooled
    node class or the freelist itself may store pool objects into their
    index structures — that IS the pool discipline."""
    for node in ctx.walk(ast.ClassDef):
        if node.name in POOLED_NODE_CLASSES or node.name == "FreeList":
            return True
    return False


def _check_pool_escape(ctx: ModuleContext) -> List[_RawFinding]:
    if _pool_exempt_module(ctx):
        return []
    findings: List[_RawFinding] = []
    for info in ctx.functions:
        function = info.node
        if not any(
            _is_pool_acquire(node) for node in ast.walk(function)
        ):
            continue
        cfg = ctx.cfg(function)
        _, statement_in = _PoolTaint().run(cfg)
        analysis = _PoolTaint()
        for block in cfg.blocks:
            for statement in block.statements:
                before = statement_in.get(id(statement), frozenset())
                # The state *after* this statement catches the
                # single-statement idiom `x = pool.acquire()` followed
                # by an escape in the same statement list.
                after = analysis.transfer(before, statement)
                findings.extend(
                    _escapes_in(statement, before | after)
                )
    return findings


def _escapes_in(
    statement: ast.stmt, tainted: FrozenSet[str]
) -> List[_RawFinding]:
    findings: List[_RawFinding] = []

    def names_in(node: ast.expr) -> Set[str]:
        return {
            sub.id
            for sub in ast.walk(node)
            if isinstance(sub, ast.Name) and sub.id in tainted
        }

    if isinstance(statement, ast.Assign):
        escaped = names_in(statement.value)
        if _is_pool_acquire(statement.value):
            escaped = escaped | {"<acquire() result>"}
        if escaped:
            for target in statement.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    where = (
                        "an attribute"
                        if isinstance(target, ast.Attribute)
                        else "a container"
                    )
                    findings.append(
                        _RawFinding(
                            statement.lineno,
                            statement.col_offset,
                            f"pool-acquired object "
                            f"{sorted(escaped)[0]!r} stored into {where} "
                            f"that outlives this function; the pool will "
                            f"recycle it — release it here or construct "
                            f"an unpooled object",
                        )
                    )
    for node in shallow_walk(statement):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ESCAPE_METHODS
        ):
            escaped = set()
            for argument in node.args:
                escaped |= names_in(argument)
                if _is_pool_acquire(argument):
                    escaped.add("<acquire() result>")
            if escaped:
                findings.append(
                    _RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"pool-acquired object {sorted(escaped)[0]!r} "
                        f"passed to .{node.func.attr}(...) on a "
                        f"container that outlives this function; the "
                        f"pool will recycle it — release it here or "
                        f"construct an unpooled object",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# REP112 — except handlers must not swallow punctuation
# ---------------------------------------------------------------------------


def _is_punctuation_emit(node: ast.AST) -> bool:
    """A call that emits a Stable downstream: ``emit(Stable(...))``,
    ``receive(Stable(...))``, ``sink(Stable(...))``, or the dedicated
    helpers ``_output_stable`` / ``_emit_stable`` / ``emit_stable``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in ("_output_stable", "_emit_stable", "emit_stable"):
        return True
    if name in ("emit", "receive", "sink", "_emit"):
        for argument in node.args:
            if (
                isinstance(argument, ast.Call)
                and isinstance(argument.func, ast.Name)
                and argument.func.id == "Stable"
            ):
                return True
    return False


def _contains_punctuation_emit(statements: Iterable[ast.stmt]) -> bool:
    for statement in statement_tree(statements):
        for node in shallow_walk(statement):
            if _is_punctuation_emit(node):
                return True
    return False


def _handler_reraises_or_emits(handler: ast.ExceptHandler) -> bool:
    for statement in statement_tree(handler.body):
        if isinstance(statement, ast.Raise):
            return True
        for node in shallow_walk(statement):
            if _is_punctuation_emit(node):
                return True
    return False


def _check_swallowed_punctuation(ctx: ModuleContext) -> List[_RawFinding]:
    findings: List[_RawFinding] = []
    for node in ctx.walk(ast.Try):
        if not _contains_punctuation_emit(node.body):
            continue
        for handler in node.handlers:
            if _handler_reraises_or_emits(handler):
                continue
            caught = (
                ast.unparse(handler.type)
                if handler.type is not None
                else "BaseException"
            )
            findings.append(
                _RawFinding(
                    handler.lineno,
                    handler.col_offset,
                    f"except {caught} wraps a Stable emit but neither "
                    f"re-raises nor emits punctuation; swallowing the "
                    f"stable stalls every downstream frontier — re-raise "
                    f"or emit the punctuation in the handler",
                )
            )
    return findings


def _check_no_op(_ctx: ModuleContext) -> List[_RawFinding]:
    """REP113 is evaluated by the driver (it needs the pre-suppression
    finding set across all rules); the registry entry carries its
    metadata for the catalog and CLI."""
    return []


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="REP101",
            severity=SEVERITY_ERROR,
            summary="no wall-clock reads in engine/operators/lmerge",
            applies=_in_hot_path,
            check=_check_wall_clock,
            detail="no wall-clock reads (`time.time`, `datetime.now`, "
            "...) in `repro/engine`, `repro/operators`, `repro/lmerge` "
            "hot paths (`perf_counter` for measurement is fine)",
        ),
        Rule(
            id="REP102",
            severity=SEVERITY_ERROR,
            summary="data-handling Operator subclasses must define "
            "on_stable or receive",
            applies=_always,
            check=_check_on_stable,
            detail="data-handling `Operator` subclasses (defining "
            "`on_insert`/`on_adjust`/`receive_batch`) must also define "
            "`on_stable` or `receive` — swallowing punctuation stalls "
            "every downstream consumer",
        ),
        Rule(
            id="REP103",
            severity=SEVERITY_ERROR,
            summary="no mutation of received Insert/Adjust/Element params",
            applies=_always,
            check=_check_element_mutation,
            detail="no mutation of received `Insert`/`Adjust`/`Element` "
            "parameters — elements are shared, immutable values; "
            "rebuild instead",
        ),
        Rule(
            id="REP104",
            severity=SEVERITY_ERROR,
            summary="slotted classes must not grow attributes",
            applies=_always,
            check=_check_slot_growth,
            detail="classes with `__slots__` must not assign attributes "
            "outside the slot set (including via `object.__setattr__` / "
            "`_set` aliases)",
        ),
        Rule(
            id="REP105",
            severity=SEVERITY_ERROR,
            summary="no bare print() in src/ library code",
            applies=_print_applies,
            check=_check_print,
            detail="no bare `print()` in `src/` library code (CLI "
            "modules `__main__.py`/`cli.py` exempt)",
        ),
        Rule(
            id="REP106",
            severity=SEVERITY_WARNING,
            summary="no mutable default arguments",
            applies=_always,
            check=_check_mutable_default,
            detail="no mutable default arguments",
        ),
        Rule(
            id="REP107",
            severity=SEVERITY_ERROR,
            summary="no per-element loops over ColumnBatch in columnar "
            "hot handlers",
            applies=_in_hot_path,
            check=_check_columnar_loops,
            detail="columnar hot handlers (`receive_columns`, "
            "`process_columns`, `_insert_columns`, ...) must not loop "
            "over a `ColumnBatch` row by row — walk the columns and "
            "materialize only surviving rows",
        ),
        Rule(
            id="REP108",
            severity=SEVERITY_ERROR,
            summary="pooled index node classes are only constructed in "
            "their defining module",
            applies=_always,
            check=_check_bare_node_alloc,
            detail="pooled index node classes (`_Node`, `In2TNode`, "
            "`In3TNode`) are only constructed in their defining module "
            "— go through the owning index so reclamation can recycle "
            "nodes",
        ),
        Rule(
            id="REP109",
            severity=SEVERITY_ERROR,
            summary="no registry instrument lookups inside "
            "engine/lmerge/structures loops",
            applies=_in_registry_loop_scope,
            check=_check_registry_in_loop,
            detail="no registry instrument lookups "
            "(`registry.counter/gauge/histogram/timeseries(...)`) "
            "inside `for`/`while` loops or comprehensions in "
            "`repro/engine`, `repro/lmerge`, `repro/structures` — the "
            "get-or-create lookup rebuilds the labels key per "
            "iteration; resolve the handle once before the loop and "
            "call `.inc()`/`.set()`/`.observe()` inside",
        ),
        Rule(
            id="REP110",
            severity=SEVERITY_ERROR,
            summary="no blocking calls in hot handlers or between "
            "ring-slot reserve and commit",
            applies=_in_hot_path,
            check=_check_blocking_calls,
            detail="no blocking calls (bare lock `.acquire()`, untimed "
            "ring/queue `.get()`, `sleep` with a non-constant duration) "
            "inside hot-path element handlers, nor anywhere between "
            "reserving a ring-slot `memoryview` and committing it — "
            "one blocked element handler stalls the whole shard, and a "
            "blocked reserve stalls the ring's consumer too (CFG "
            "dataflow tracks the window across branches)",
        ),
        Rule(
            id="REP111",
            severity=SEVERITY_ERROR,
            summary="pool-acquired objects must not escape their "
            "function outside pool-owning modules",
            applies=_always,
            check=_check_pool_escape,
            detail="an object acquired from a freelist "
            "(`NODE_POOL.acquire()`, `pool.acquire()`) must not be "
            "stored into an attribute, subscript, or container that "
            "outlives the function, outside the modules that define "
            "the pooled classes — the pool recycles released objects, "
            "so an escaped alias becomes a use-after-release "
            "(taint-tracked through local aliases by the CFG dataflow)",
        ),
        Rule(
            id="REP112",
            severity=SEVERITY_ERROR,
            summary="except handlers around Stable emits must re-raise "
            "or emit",
            applies=_in_hot_path,
            check=_check_swallowed_punctuation,
            detail="no exception handler in a hot path may swallow "
            "punctuation: an `except` whose `try` body emits a "
            "`Stable` must re-raise or itself emit — dropping the "
            "stable silently stalls every downstream frontier",
        ),
        Rule(
            id="REP113",
            severity=SEVERITY_WARNING,
            summary="no unused # noqa: REPxxx suppressions",
            applies=_always,
            check=_check_no_op,
            detail="a `# noqa: REPxxx` comment whose named REP rules "
            "suppress no finding on that line is dead — remove it "
            "(checked by the lint driver against the pre-suppression "
            "finding set; bare `# noqa` and foreign ruff codes are "
            "left to ruff)",
        ),
    )
}


def _suppressed(source_line: str, rule_id: str) -> bool:
    match = _NOQA_RE.search(source_line)
    if not match:
        return False
    codes = match.group("codes")
    if not codes:
        return True  # bare `# noqa` silences everything on the line
    return rule_id.upper() in {
        code.strip().upper() for code in codes.split(",")
    }


_REP_CODE_RE = re.compile(r"^REP\d+$")


def _noqa_comments(source: str) -> List[tuple]:
    """Actual ``# noqa`` COMMENT tokens as ``(line, col, codes)``.

    Tokenizing (rather than scanning raw lines) keeps noqa-shaped text
    inside docstrings and string fixtures from looking like
    suppressions."""
    import io
    import tokenize

    comments = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match:
                comments.append(
                    (token.start[0], token.start[1], match.group("codes"))
                )
    except tokenize.TokenizeError:  # pragma: no cover - REP100 owns this
        pass
    return comments


def _unused_noqa_findings(
    source: str, hits_by_line: Dict[int, Set[str]]
) -> List[Finding]:
    """REP113: ``# noqa`` comments naming REP codes none of which
    suppressed a finding on their line.  *hits_by_line* maps line number
    to the rule IDs that produced (pre-suppression) findings there.
    Bare ``# noqa`` and comments naming only foreign codes are ruff's
    jurisdiction and are left alone."""
    findings: List[Finding] = []
    for line, col, raw_codes in _noqa_comments(source):
        if not raw_codes:
            continue
        codes = [
            code.strip().upper()
            for code in raw_codes.split(",")
            if code.strip()
        ]
        rep_codes = [code for code in codes if _REP_CODE_RE.match(code)]
        if not rep_codes:
            continue
        hits = hits_by_line.get(line, set())
        if any(code in hits for code in rep_codes):
            continue
        findings.append(
            Finding(
                path="",  # filled by the caller
                line=line,
                col=col,
                rule="REP113",
                severity=SEVERITY_WARNING,
                message=f"unused suppression: # noqa: "
                f"{', '.join(rep_codes)} suppresses nothing on this "
                f"line — remove it",
            )
        )
    return findings


@dataclass
class LintStats:
    """Shared-pass accounting across one lint run.

    ``parse_seconds``/``cfg_seconds`` measure the *single* parse and the
    cached CFG builds per module; ``rule_seconds`` is everything the
    rule bodies spent on the shared context.  The CI analysis job
    asserts a wall-clock budget over these, and ``cfg_functions`` being
    far below ``files × rules`` is the evidence the AST/CFG pass is
    cached, not rebuilt per rule.
    """

    files: int = 0
    rules: int = 0
    parse_seconds: float = 0.0
    cfg_seconds: float = 0.0
    rule_seconds: float = 0.0
    cfg_functions: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "files": self.files,
            "rules": self.rules,
            "parse_seconds": round(self.parse_seconds, 6),
            "cfg_seconds": round(self.cfg_seconds, 6),
            "rule_seconds": round(self.rule_seconds, 6),
            "cfg_functions": self.cfg_functions,
            "parses_per_file": 1,
        }


@dataclass
class LintReport:
    """Findings plus the shared-pass stats for one lint run."""

    findings: List[Finding]
    stats: LintStats


def _lint_context(
    ctx: ModuleContext,
    rules: Optional[Iterable[str]],
    stats: Optional[LintStats],
) -> List[Finding]:
    from time import perf_counter

    selected = (
        [RULES[rule_id] for rule_id in rules]
        if rules is not None
        else list(RULES.values())
    )
    location = Path(ctx.path)
    findings: List[Finding] = []
    hits_by_line: Dict[int, Set[str]] = {}
    started = perf_counter()
    for rule in selected:
        if not rule.applies(location):
            continue
        for raw in rule.check(ctx):
            hits_by_line.setdefault(raw.line, set()).add(rule.id)
            source_line = (
                ctx.lines[raw.line - 1]
                if 0 < raw.line <= len(ctx.lines)
                else ""
            )
            if _suppressed(source_line, rule.id):
                continue
            findings.append(
                Finding(
                    path=ctx.path,
                    line=raw.line,
                    col=raw.col,
                    rule=rule.id,
                    severity=rule.severity,
                    message=raw.message,
                )
            )
    # REP113 needs the full pre-suppression hit map, so it only runs
    # when every rule did (a filtered run would see false "unused").
    if rules is None:
        for finding in _unused_noqa_findings(ctx.source, hits_by_line):
            findings.append(
                Finding(
                    path=ctx.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    severity=finding.severity,
                    message=finding.message,
                )
            )
    elapsed = perf_counter() - started
    if stats is not None:
        stats.files += 1
        stats.rules = len(selected)
        stats.parse_seconds += ctx.parse_seconds
        stats.cfg_seconds += ctx.cfg_seconds
        stats.rule_seconds += max(0.0, elapsed - ctx.cfg_seconds)
        stats.cfg_functions += ctx.cfg_builds
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint one module's source; *path* scopes path-dependent rules."""
    try:
        ctx = context_for_source(source, path)
    except SyntaxError as exc:
        if stats is not None:
            stats.files += 1
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="REP100",
                severity=SEVERITY_ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    return _lint_context(ctx, rules, stats)


def lint_file(
    path: "Path | str",
    rules: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    location = Path(path)
    return lint_source(
        location.read_text(encoding="utf-8"),
        path=location.as_posix(),
        rules=rules,
        stats=stats,
    )


def iter_python_files(paths: Sequence["Path | str"]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        location = Path(entry)
        if location.is_dir():
            files.extend(sorted(location.rglob("*.py")))
        elif location.suffix == ".py":
            files.append(location)
    return files


def lint_paths(
    paths: Sequence["Path | str"], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    return lint_paths_report(paths, rules=rules).findings


def lint_paths_report(
    paths: Sequence["Path | str"], rules: Optional[Iterable[str]] = None
) -> LintReport:
    """Like :func:`lint_paths`, but also returns the shared-pass stats."""
    stats = LintStats()
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file, rules=rules, stats=stats))
    return LintReport(findings=findings, stats=stats)


# ---------------------------------------------------------------------------
# Rule catalog rendering (docs/ANALYSIS.md is generated from this)
# ---------------------------------------------------------------------------

#: Markers delimiting the generated table inside docs/ANALYSIS.md.
CATALOG_BEGIN = "<!-- rule-catalog:begin (generated by"
CATALOG_BEGIN_LINE = (
    "<!-- rule-catalog:begin (generated by `python -m repro.analysis "
    "rules --write-docs`; do not edit by hand) -->"
)
CATALOG_END_LINE = "<!-- rule-catalog:end -->"


def rules_markdown() -> str:
    """The rule catalog as a markdown table, from the live registry."""
    lines = ["| rule | severity | meaning |", "|---|---|---|"]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        meaning = rule.detail or rule.summary
        lines.append(f"| {rule.id} | {rule.severity} | {meaning} |")
    return "\n".join(lines)


def render_docs_catalog(document: str) -> str:
    """Replace the marked catalog region of *document* with the current
    registry table.  Raises ValueError when the markers are missing —
    the docs file must opt in once."""
    begin = document.find(CATALOG_BEGIN)
    end = document.find(CATALOG_END_LINE)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            "docs file lacks rule-catalog markers "
            f"({CATALOG_BEGIN_LINE!r} ... {CATALOG_END_LINE!r})"
        )
    head = document[:begin]
    tail = document[end + len(CATALOG_END_LINE) :]
    table = (
        CATALOG_BEGIN_LINE + "\n" + rules_markdown() + "\n" + CATALOG_END_LINE
    )
    return head + table + tail
