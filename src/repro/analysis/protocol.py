"""Static verification of ShmRing call sites against the frame protocol.

:data:`repro.engine.shm.FRAME_PROTOCOL` declares, per frame kind, who
may produce it (driver or worker), whether it is terminal, and the put
discipline it requires (blocking / bounded / best-effort).  This module
finds every ring ``put`` / ``put_pickle`` / ``put_frame`` / ``get``
call in a set of Python files and checks it against that table,
reporting a site-level verdict per call the way ``check_plan`` reports
one per merge site.

What counts as a ring site
    A call whose receiver's dotted name contains ``ring`` (``out_ring``,
    ``self._out_rings[shard]``, ...), or any call whose first argument
    resolves to a declared frame-kind constant (``shm_rings.TELEM``, a
    bare ``DONE``, or the literal byte).  ``store.put(key, ...)`` — the
    StateStore — matches neither and is skipped.

Role inference
    Frame producers are identified by the code that calls them, not by
    annotations: a module-level function whose name contains
    ``shard_loop``/``worker`` (or that takes ``in_ring``/``out_ring``
    parameters) runs in the worker; a method of a ``*Runtime`` /
    ``*Supervisor`` class runs in the driver.  Sites whose role cannot
    be inferred get an ``unknown-role`` warning instead of silently
    passing.

Checks per put site
    * the frame kind is declared in the protocol;
    * the producing role matches the spec (a worker emitting CTRL is
      the canonical violation);
    * the discipline holds: ``best_effort`` requires a literal
      ``timeout=0``; ``bounded`` requires a finite timeout argument
      (any expression — configs are fine — but not ``None``);
      ``blocking`` sites may block by design (OUT backpressure, DONE);
    * terminality: from a terminal put (DONE/ERR), no **non-terminal**
      put on the same ring may be reachable in the CFG.  ERR after DONE
      stays legal — the exception path is itself terminal.

Checks per get site
    The driver multiplexes many rings, so a driver-side ``get`` must be
    bounded (pass a timeout).  Worker loops own exactly one inbound
    ring and may block on it — their liveness probe handles a dead
    driver.

Every verdict (including the passing ones) lands in the JSON report, so
"zero violations" is distinguishable from "found zero sites".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine import shm as shm_rings

from .flow import (
    CFG,
    ModuleContext,
    context_for_source,
    keyword_value,
    receiver_text,
    shallow_walk,
    statement_tree,
)

__all__ = [
    "ProtocolReport",
    "RingSite",
    "verify_paths",
    "verify_source",
    "DEFAULT_PROTOCOL_PATHS",
]

#: The modules that currently speak the ring protocol; the CLI default.
DEFAULT_PROTOCOL_PATHS = (
    "src/repro/engine/parallel.py",
    "src/repro/resilience/supervisor.py",
    "src/repro/obs/telemetry.py",
)

_PUT_METHODS = ("put", "put_pickle", "put_frame")
_KIND_BY_NAME = {spec.name: spec for spec in shm_rings.FRAME_PROTOCOL.values()}

#: Positional index of the ``timeout`` parameter per put method (after
#: the receiver): ``put(kind, payload, timeout)``,
#: ``put_pickle(kind, obj, timeout)``, ``put_frame(kind, size, fill,
#: timeout)``, ``get(timeout)``.
_TIMEOUT_POSITION = {"put": 2, "put_pickle": 2, "put_frame": 3, "get": 0}


@dataclass
class RingSite:
    """One verified ring call site."""

    path: str
    line: int
    function: str
    role: str  #: "driver" / "worker" / "unknown"
    ring: str  #: dotted receiver, e.g. ``out_ring``
    op: str  #: put / put_pickle / put_frame / get
    kind: Optional[str]  #: frame-kind name, None for ``get``
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "role": self.role,
            "ring": self.ring,
            "op": self.op,
            "kind": self.kind,
            "ok": self.ok,
            "violations": list(self.violations),
        }


@dataclass
class ProtocolReport:
    """Every ring site found, with per-site verdicts."""

    sites: List[RingSite]

    @property
    def ok(self) -> bool:
        return all(site.ok for site in self.sites)

    @property
    def violations(self) -> List[RingSite]:
        return [site for site in self.sites if not site.ok]

    def to_json(self) -> Dict[str, Any]:
        return {
            "protocol": [
                {
                    "kind": spec.kind,
                    "name": spec.name,
                    "producer": spec.producer,
                    "terminal": spec.terminal,
                    "discipline": spec.discipline,
                }
                for spec in shm_rings.FRAME_PROTOCOL.values()
            ],
            "ok": self.ok,
            "sites": [site.to_json() for site in self.sites],
            "summary": {
                "sites": len(self.sites),
                "violations": sum(1 for s in self.sites if not s.ok),
            },
        }

    def render(self) -> str:
        lines = []
        for site in self.sites:
            kind = f" {site.kind}" if site.kind else ""
            head = (
                f"{site.path}:{site.line} [{site.role}] "
                f"{site.ring}.{site.op}{kind}"
            )
            if site.ok:
                lines.append(f"[ok]    {head}")
            else:
                for violation in site.violations:
                    lines.append(f"[ERROR] {head} — {violation}")
        lines.append(
            f"{len(self.sites)} ring sites, "
            f"{sum(1 for s in self.sites if not s.ok)} in violation"
        )
        return "\n".join(lines)


def _frame_kind(node: Optional[ast.expr]) -> Optional[Tuple[str, Any]]:
    """Resolve a call's first argument to a declared frame kind.

    Returns ``(name, spec)`` or None when the expression is not a frame
    constant.  Handles ``shm_rings.TELEM`` attributes, bare ``TELEM``
    names, and raw int literals that collide with a declared byte.
    """
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, int):
        spec = shm_rings.FRAME_PROTOCOL.get(node.value)
        if spec is not None:
            return spec.name, spec
        return None
    if name is not None and name in _KIND_BY_NAME:
        return name, _KIND_BY_NAME[name]
    return None


def _is_ring_receiver(receiver: str) -> bool:
    return "ring" in receiver


def _infer_role(ctx: ModuleContext, function: Any) -> str:
    """driver / worker / unknown for the function containing a site."""
    class_name = ctx.enclosing_class(function)
    if class_name is not None:
        if class_name.endswith("Runtime") or class_name.endswith(
            "Supervisor"
        ):
            return "driver"
        return "unknown"
    name = function.name.lower()
    if "shard_loop" in name or "worker" in name:
        return "worker"
    params = {arg.arg for arg in function.args.args}
    if {"in_ring", "out_ring"} & params:
        return "worker"
    return "unknown"


def _timeout_argument(call: ast.Call, op: str) -> Optional[ast.expr]:
    """The timeout argument of a ring call, keyword or positional."""
    keyword = keyword_value(call, "timeout")
    if keyword is not None:
        return keyword
    position = _TIMEOUT_POSITION[op]
    if len(call.args) > position:
        return call.args[position]
    return None


def _call_sites(
    ctx: ModuleContext,
) -> List[Tuple[Any, ast.stmt, ast.Call, str, str]]:
    """Every ring call in the module as
    ``(function, statement, call, op, receiver)`` tuples."""
    sites = []
    for info in ctx.functions:
        for statement in statement_tree(info.node.body):
            for node in shallow_walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                op = func.attr
                if op not in _PUT_METHODS and op != "get":
                    continue
                receiver = receiver_text(func.value)
                is_ring = _is_ring_receiver(receiver)
                if op in _PUT_METHODS:
                    kind = _frame_kind(node.args[0] if node.args else None)
                    if kind is None and not is_ring:
                        continue  # dict.get / StateStore.put / similar
                elif not is_ring:
                    continue  # .get on something that is not a ring
                sites.append((info.node, statement, node, op, receiver))
    return sites


def _locate(cfg: CFG, statement: ast.stmt) -> Optional[Tuple[int, int]]:
    for block in cfg.blocks:
        for index, candidate in enumerate(block.statements):
            if candidate is statement:
                return block.index, index
    return None


def _puts_in(statements: Sequence[ast.stmt], receiver: str) -> List[ast.Call]:
    """Ring put calls on *receiver* inside the given statements."""
    calls = []
    for statement in statements:
        for node in shallow_walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _PUT_METHODS
                and receiver_text(node.func.value) == receiver
            ):
                calls.append(node)
    return calls


def verify_source(source: str, path: str = "<string>") -> List[RingSite]:
    """Verify every ring site in one module's source."""
    ctx = context_for_source(source, path)
    return verify_context(ctx)


def verify_context(ctx: ModuleContext) -> List[RingSite]:
    sites: List[RingSite] = []
    for function, statement, call, op, receiver in _call_sites(ctx):
        role = _infer_role(ctx, function)
        resolved = _frame_kind(call.args[0] if call.args else None)
        kind_name = resolved[0] if resolved else None
        site = RingSite(
            path=ctx.path,
            line=call.lineno,
            function=function.name,
            role=role,
            ring=receiver,
            op=op,
            kind=kind_name,
        )
        if op == "get":
            _check_get(site, call, role)
        else:
            _check_put(site, ctx, function, statement, call, op, receiver)
        sites.append(site)
    sites.sort(key=lambda s: (s.path, s.line))
    return sites


def _check_get(site: RingSite, call: ast.Call, role: str) -> None:
    timeout = _timeout_argument(call, "get")
    if role == "driver" and timeout is None:
        site.violations.append(
            "driver-side ring get must be bounded (pass timeout=): the "
            "driver multiplexes rings and cannot wedge on one"
        )
    if role == "unknown":
        site.violations.append(
            "cannot infer driver/worker role for this ring site"
        )


def _check_put(
    site: RingSite,
    ctx: ModuleContext,
    function: Any,
    statement: ast.stmt,
    call: ast.Call,
    op: str,
    receiver: str,
) -> None:
    resolved = _frame_kind(call.args[0] if call.args else None)
    if resolved is None:
        site.violations.append(
            "put on a ring with an unrecognized frame kind — declare the "
            "kind in repro.engine.shm.FRAME_PROTOCOL"
        )
        return
    name, spec = resolved
    role = site.role
    if role == "unknown":
        site.violations.append(
            "cannot infer driver/worker role for this ring site"
        )
    elif role != spec.producer:
        site.violations.append(
            f"{name} frames are produced by the {spec.producer}; this "
            f"site runs in the {role}"
        )
    timeout = _timeout_argument(call, op)
    if spec.discipline == "best_effort":
        if not (
            isinstance(timeout, ast.Constant) and timeout.value == 0
        ):
            site.violations.append(
                f"{name} is best-effort: the put must pass literal "
                f"timeout=0 and tolerate the drop"
            )
    elif spec.discipline == "bounded":
        if timeout is None or (
            isinstance(timeout, ast.Constant) and timeout.value is None
        ):
            site.violations.append(
                f"{name} puts must be bounded (pass a finite timeout=): "
                f"a wedged peer must not block this side forever"
            )
    # Terminality: no non-terminal put on the same ring reachable after
    # a terminal frame.  ERR-after-DONE is legal (the exception path is
    # itself terminal), so only non-terminal successors count.
    if spec.terminal:
        cfg = ctx.cfg(function)
        location = _locate(cfg, statement)
        if location is not None:
            following = cfg.statements_after(*location)
            for later in _puts_in(following, receiver):
                if later is call:
                    continue
                later_kind = _frame_kind(
                    later.args[0] if later.args else None
                )
                if later_kind is not None and later_kind[1].terminal:
                    continue
                label = later_kind[0] if later_kind else "unknown-kind"
                site.violations.append(
                    f"non-terminal {label} put at line {later.lineno} is "
                    f"reachable after terminal {name}"
                )


def verify_paths(paths: Sequence[str]) -> ProtocolReport:
    """Verify every ring site under the given files/directories."""
    sites: List[RingSite] = []
    for path in _python_files(paths):
        text = path.read_text(encoding="utf-8")
        try:
            sites.extend(verify_source(text, str(path)))
        except SyntaxError as error:
            sites.append(
                RingSite(
                    path=str(path),
                    line=error.lineno or 0,
                    function="<module>",
                    role="unknown",
                    ring="",
                    op="parse",
                    kind=None,
                    violations=[f"file does not parse: {error.msg}"],
                )
            )
    sites.sort(key=lambda s: (s.path, s.line))
    return ProtocolReport(sites=sites)


def _python_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


