"""Static property-flow analysis over operator graphs (Section IV-G).

The paper's compile-time story is a dataflow analysis: every operator
declares a *transfer function* (:meth:`Operator.derive_properties`)
mapping its inputs' :class:`StreamProperties` to its output's, and the
restriction class at each LMerge site follows from the fixpoint of those
functions over the plan graph.  This module makes that analysis explicit
and checkable:

* :func:`analyze_graph` walks the full reachable graph (upstream *and*
  downstream of the given roots), evaluates transfer functions in
  topological order, and returns the per-operator property map.  Operators
  caught in a dependency cycle are pessimized to
  ``StreamProperties.unknown()`` — a cycle provides no base case, so no
  guarantee can be proven.
* :func:`check_plan` locates every LMerge site in the graph (any adapter
  carrying ``.lmerge``/``.stream_id``, however the merge was wired),
  compares the variant the site actually runs against the variant the
  inferred input properties justify, and issues a verdict per site:

  ======================  =======================================  ========
  Verdict                 Meaning                                  Severity
  ======================  =======================================  ========
  ``exact``               selected == inferred                     ok
  ``unsound``             selected is *stronger* than inferred —   error
                          the algorithm assumes guarantees the
                          inputs do not provide; output may be
                          silently corrupted
  ``over-conservative``   selected is *weaker* than inferred —     warning
                          correct, but a cheaper algorithm is
                          provably valid (a free perf win)
  ======================  =======================================  ========

* :func:`verify_plan` raises :class:`UnsoundPlanError` on any error
  verdict, so tests and CI can gate on soundness.

The runtime counterpart — confirming the static verdicts on live data —
is :mod:`repro.analysis.checked`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.operator import Operator
from repro.streams.properties import (
    Restriction,
    StreamProperties,
    classify,
)

from .punct import ClassPunctuation, punctuation_of

#: Flag names in declaration order, reused by reports.
PROPERTY_FLAGS: Tuple[str, ...] = (
    "ordered",
    "strictly_increasing",
    "insert_only",
    "deterministic_same_vs_order",
    "key_vs_payload",
)


def _as_operators(roots: Sequence[object]) -> List[Operator]:
    """Accept bare operators or Query-likes (anything with ``.tail``)."""
    operators: List[Operator] = []
    for root in roots:
        tail = getattr(root, "tail", None)
        operators.append(tail if isinstance(tail, Operator) else root)
    for operator in operators:
        if not isinstance(operator, Operator):
            raise TypeError(f"not an operator or query: {operator!r}")
    return operators


def collect_graph(roots: Sequence[Operator]) -> List[Operator]:
    """Every operator reachable from *roots* along either edge direction.

    LMerge sites sit *downstream* of the replica tails a caller naturally
    holds, so the walk must follow subscriber edges too — the analyzer
    sees the whole wired plan no matter which operator it was handed.
    """
    seen: Dict[int, Operator] = {}
    stack = list(roots)
    while stack:
        operator = stack.pop()
        if id(operator) in seen:
            continue
        seen[id(operator)] = operator
        stack.extend(operator.upstreams)
        for downstream, _port in operator.subscribers:
            stack.append(downstream)
        if _is_merge_adapter(operator):
            # Cross the merge: its other input adapters (and, through
            # their upstreams, the sibling replicas) are part of the plan
            # even though the merge itself is not an Operator.
            for sibling in getattr(
                _merge_of(operator), "input_adapters", ()
            ):
                if isinstance(sibling, Operator):
                    stack.append(sibling)
    return list(seen.values())


def _toposort(
    operators: Sequence[Operator],
) -> Tuple[List[Operator], List[Operator]]:
    """Kahn's algorithm over upstream edges.

    Returns ``(order, cyclic)`` where *cyclic* holds operators with no
    admissible evaluation order (mutually dependent inputs).
    """
    members = {id(op) for op in operators}
    indegree: Dict[int, int] = {}
    for operator in operators:
        indegree[id(operator)] = sum(
            1 for up in operator.upstreams if id(up) in members
        )
    ready = [op for op in operators if indegree[id(op)] == 0]
    order: List[Operator] = []
    while ready:
        operator = ready.pop()
        order.append(operator)
        for downstream, _port in operator.subscribers:
            if id(downstream) not in members:
                continue
            indegree[id(downstream)] -= 1
            if indegree[id(downstream)] == 0:
                ready.append(downstream)
    ordered_ids = {id(op) for op in order}
    cyclic = [op for op in operators if id(op) not in ordered_ids]
    return order, cyclic


def _is_merge_adapter(operator: Operator) -> bool:
    """Duck-typed LMerge-input detection.

    Matches :class:`repro.engine.query._LMergeAdapter`,
    :class:`repro.__main__._MergeInput`, and any future bridge that
    forwards a port into ``lmerge.process(element, stream_id)``.
    """
    target = getattr(operator, "lmerge", None) or getattr(
        operator, "merge", None
    )
    return target is not None and hasattr(operator, "stream_id")


def _merge_of(adapter: Operator) -> object:
    return getattr(adapter, "lmerge", None) or getattr(adapter, "merge")


@dataclass
class MergeSite:
    """One LMerge instance and the adapters feeding it (by stream id)."""

    merge: object
    adapters: List[Operator] = field(default_factory=list)

    @property
    def name(self) -> str:
        return getattr(self.merge, "name", type(self.merge).__name__)

    @property
    def algorithm(self) -> str:
        return getattr(self.merge, "algorithm", "?")

    def selected_restriction(self) -> Restriction:
        from repro.lmerge.selector import restriction_of

        return restriction_of(self.merge)


@dataclass
class GraphAnalysis:
    """Result of :func:`analyze_graph`."""

    #: Topological evaluation order (cyclic operators excluded).
    order: List[Operator]
    #: Inferred output properties per operator (id-keyed via operator
    #: identity — operators hash by identity).
    properties: Dict[Operator, StreamProperties]
    #: Operators pessimized to unknown() because they sit on a cycle.
    cyclic: List[Operator]
    #: Every LMerge discovered in the graph, with its input adapters.
    sites: List[MergeSite]

    def properties_of(self, operator: Operator) -> StreamProperties:
        return self.properties[operator]

    def describe(self) -> str:
        """Human-readable per-operator inference table."""
        lines = []
        for operator in self.order:
            properties = self.properties[operator]
            flags = (
                ",".join(
                    flag
                    for flag in PROPERTY_FLAGS
                    if getattr(properties, flag)
                )
                or "-"
            )
            transfer = getattr(operator, "property_transfer", "")
            lines.append(
                f"{operator.name:24} {classify(properties).name}  "
                f"[{flags}]  {transfer}"
            )
        for operator in self.cyclic:
            lines.append(f"{operator.name:24} R4  [cycle: pessimized]")
        return "\n".join(lines)

    def site_input_properties(self, site: MergeSite) -> StreamProperties:
        """The meet of the properties arriving at a site's inputs.

        The adapters themselves are transparent bridges (their transfer
        function is unknown()), so the site's inputs are the adapters'
        *upstreams* — exactly the streams LMerge consumes.
        """
        inputs: List[StreamProperties] = []
        for adapter in site.adapters:
            for upstream in adapter.upstreams:
                inputs.append(self.properties[upstream])
        if not inputs:
            return StreamProperties.unknown()
        merged = inputs[0]
        for item in inputs[1:]:
            merged = merged.meet(item)
        return merged


def analyze_graph(*roots: object) -> GraphAnalysis:
    """Infer per-operator properties over the whole reachable graph."""
    operators = collect_graph(_as_operators(roots))
    order, cyclic = _toposort(operators)
    properties: Dict[Operator, StreamProperties] = {
        operator: StreamProperties.unknown() for operator in cyclic
    }
    for operator in order:
        inputs = [
            properties.get(up, StreamProperties.unknown())
            for up in operator.upstreams
        ]
        properties[operator] = operator.derive_properties(inputs)
    sites: Dict[int, MergeSite] = {}
    for operator in operators:
        if not _is_merge_adapter(operator):
            continue
        merge = _merge_of(operator)
        site = sites.setdefault(id(merge), MergeSite(merge))
        site.adapters.append(operator)
    for site in sites.values():
        site.adapters.sort(key=lambda a: a.stream_id)  # type: ignore[attr-defined]
    return GraphAnalysis(
        order=order,
        properties=properties,
        cyclic=cyclic,
        sites=list(sites.values()),
    )


VERDICT_EXACT = "exact"
VERDICT_UNSOUND = "unsound"
VERDICT_OVER_CONSERVATIVE = "over-conservative"


@dataclass
class SiteCheck:
    """Soundness verdict for one LMerge site."""

    merge_name: str
    algorithm: str
    selected: Restriction
    inferred: Restriction
    input_properties: StreamProperties
    verdict: str
    message: str

    @property
    def is_error(self) -> bool:
        return self.verdict == VERDICT_UNSOUND

    @property
    def is_warning(self) -> bool:
        return self.verdict == VERDICT_OVER_CONSERVATIVE

    def to_json(self) -> dict:
        return {
            "merge": self.merge_name,
            "algorithm": self.algorithm,
            "selected": self.selected.name,
            "inferred": self.inferred.name,
            "input_properties": {
                flag: getattr(self.input_properties, flag)
                for flag in PROPERTY_FLAGS
            },
            "verdict": self.verdict,
            "message": self.message,
        }


@dataclass
class PlanCheck:
    """All site verdicts for one analyzed plan."""

    sites: List[SiteCheck]
    plan: str = "plan"
    #: Punctuation-monotonicity verdict per operator class in the graph
    #: (see :mod:`repro.analysis.punct`).  Only ``violated`` flips ``ok``;
    #: ``unknown`` is reported but tolerated — the pass is conservative.
    punctuation: List[ClassPunctuation] = field(default_factory=list)

    @property
    def errors(self) -> List[SiteCheck]:
        return [site for site in self.sites if site.is_error]

    @property
    def warnings(self) -> List[SiteCheck]:
        return [site for site in self.sites if site.is_warning]

    @property
    def punctuation_violations(self) -> List[ClassPunctuation]:
        return [entry for entry in self.punctuation if not entry.ok]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.punctuation_violations

    def to_json(self) -> dict:
        return {
            "plan": self.plan,
            "ok": self.ok,
            "sites": [site.to_json() for site in self.sites],
            "punctuation": [
                entry.to_json() for entry in self.punctuation
            ],
        }

    def render(self) -> str:
        lines = []
        if not self.sites:
            lines.append(f"{self.plan}: no LMerge sites found")
        for site in self.sites:
            marker = (
                "ERROR"
                if site.is_error
                else "WARN" if site.is_warning else "ok"
            )
            lines.append(f"[{marker:5}] {self.plan}: {site.message}")
        for entry in self.punctuation:
            marker = "ERROR" if not entry.ok else "ok"
            operators = (
                f" ({', '.join(entry.operators)})" if entry.operators else ""
            )
            lines.append(
                f"[{marker:5}] {self.plan}: punctuation {entry.verdict} "
                f"for {entry.class_name}{operators} — {entry.summary()}"
            )
        return "\n".join(lines)


class UnsoundPlanError(Exception):
    """An LMerge site runs a variant its inputs do not justify."""

    def __init__(
        self, check: PlanCheck, offending: Optional[List[SiteCheck]] = None
    ):
        self.check = check
        self.offending = offending if offending is not None else check.errors
        details = [site.message for site in self.offending]
        details.extend(
            f"punctuation {entry.verdict} for {entry.class_name}"
            for entry in check.punctuation_violations
        )
        super().__init__(
            f"unsound plan {check.plan!r}: " + "; ".join(details)
        )


def _check_site(analysis: GraphAnalysis, site: MergeSite) -> SiteCheck:
    input_properties = analysis.site_input_properties(site)
    inferred = classify(input_properties)
    selected = site.selected_restriction()
    if selected < inferred:
        verdict = VERDICT_UNSOUND
        message = (
            f"{site.name} runs {site.algorithm} (assumes "
            f"{selected.name}) but its inputs only justify "
            f"{inferred.name} — guarantees the algorithm relies on are "
            f"not provided; output may be silently wrong"
        )
    elif selected > inferred:
        verdict = VERDICT_OVER_CONSERVATIVE
        message = (
            f"{site.name} runs {site.algorithm} ({selected.name}) but its "
            f"inputs justify {inferred.name} — a cheaper variant is "
            f"provably valid"
        )
    else:
        verdict = VERDICT_EXACT
        message = (
            f"{site.name} runs {site.algorithm}, matching the inferred "
            f"{inferred.name}"
        )
    return SiteCheck(
        merge_name=site.name,
        algorithm=site.algorithm,
        selected=selected,
        inferred=inferred,
        input_properties=input_properties,
        verdict=verdict,
        message=message,
    )


def _check_punctuation(operators: Sequence[Operator]) -> List[ClassPunctuation]:
    """One punctuation verdict per operator *class* in the graph.

    The verdict is a property of the class body, so operators sharing a
    class share an entry; the entry lists which instances it covers.
    """
    by_class: Dict[type, List[str]] = {}
    for operator in operators:
        by_class.setdefault(type(operator), []).append(operator.name)
    entries: List[ClassPunctuation] = []
    for cls, names in by_class.items():
        verdict = punctuation_of(cls)
        entries.append(
            ClassPunctuation(
                class_name=verdict.class_name,
                verdict=verdict.verdict,
                sites=verdict.sites,
                operators=sorted(names),
            )
        )
    entries.sort(key=lambda entry: entry.class_name)
    return entries


def check_plan(*roots: object, plan: str = "plan") -> PlanCheck:
    """Analyze the graph around *roots* and judge every LMerge site."""
    analysis = analyze_graph(*roots)
    checks = [_check_site(analysis, site) for site in analysis.sites]
    checks.sort(key=lambda check: check.merge_name)
    punctuation = _check_punctuation(analysis.order + analysis.cyclic)
    return PlanCheck(sites=checks, plan=plan, punctuation=punctuation)


def verify_plan(
    *roots: object, plan: str = "plan", strict: bool = False
) -> PlanCheck:
    """Like :func:`check_plan` but raise on unsound (or, with
    ``strict=True``, on over-conservative) selections."""
    check = check_plan(*roots, plan=plan)
    offending = check.errors + (check.warnings if strict else [])
    if offending or check.punctuation_violations:
        raise UnsoundPlanError(check, offending)
    return check
