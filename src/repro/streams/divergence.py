"""Physical-divergence transforms.

Given one reference stream, these transforms derive *physically different
but logically equivalent* presentations — the inputs LMerge exists to
merge.  They model the real-world causes catalogued in Section I:

* :func:`reorder_within_stability` — transmission disorder: data elements
  are permuted, but never across a stable() boundary and never breaking an
  event's insert-before-adjust chain;
* :func:`speculate` — speculative/revision behaviour: an insert is replaced
  by an early insert with a provisional Ve plus later adjust(s) converging
  on the true Ve (the aggressive-operator pattern of the data-center
  example);
* :func:`thin_stables` — different punctuation cadence: stables are
  dropped (the TDB limit is unchanged);
* :func:`inject_gap` / :func:`duplicate_inserts` — failure artifacts: a
  re-attaching input may miss elements or re-produce prior ones
  (Section I-B issue 4).  These produce *mutually consistent*, not
  equivalent, streams.

All transforms are deterministic given their ``random.Random``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.time import INFINITY, Timestamp


def _segments(stream: PhysicalStream) -> List[Tuple[List[Element], Optional[Stable]]]:
    """Split into (data-elements, trailing-stable) segments."""
    segments: List[Tuple[List[Element], Optional[Stable]]] = []
    current: List[Element] = []
    for element in stream:
        if isinstance(element, Stable):
            segments.append((current, element))
            current = []
        else:
            current.append(element)
    if current:
        segments.append((current, None))
    return segments


def _rebuild(
    segments: List[Tuple[List[Element], Optional[Stable]]], name: str
) -> PhysicalStream:
    out: List[Element] = []
    for data, stable in segments:
        out.extend(data)
        if stable is not None:
            out.append(stable)
    return PhysicalStream(out, name=name)


def reorder_within_stability(
    stream: PhysicalStream, rng: random.Random
) -> PhysicalStream:
    """Randomly permute data elements without changing the logical stream.

    Elements never cross a stable() boundary (that could violate the
    punctuation contract) and elements touching the same ``(Vs, payload)``
    keep their relative order (an adjust must follow the insert it names).
    """
    segments = _segments(stream)
    shuffled: List[Tuple[List[Element], Optional[Stable]]] = []
    for data, stable in segments:
        queues: Dict[Tuple, List[Element]] = {}
        order: List[Tuple] = []
        for element in data:
            key = element.key  # Insert and Adjust both expose .key
            if key not in queues:
                queues[key] = []
                order.append(key)
            queues[key].append(element)
        result: List[Element] = []
        live = [key for key in order if queues[key]]
        while live:
            index = rng.randrange(len(live))
            key = live[index]
            result.append(queues[key].pop(0))
            if not queues[key]:
                live.pop(index)
        shuffled.append((result, stable))
    return _rebuild(shuffled, name=f"{stream.name}+reorder")


def speculate(
    stream: PhysicalStream,
    rng: random.Random,
    fraction: float = 0.3,
    max_revisions: int = 2,
    provisional_infinite: float = 0.5,
) -> PhysicalStream:
    """Replace some inserts with a speculative insert + adjust chain.

    The provisional Ve is either ``+inf`` (the "process started, end
    unknown" pattern) or a random point past Vs; each revision moves Ve,
    and the chain always converges on the original Ve, so the final TDB is
    unchanged.  The chain stays inside the insert's stability segment,
    preserving punctuation validity.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    segments = _segments(stream)
    rebuilt: List[Tuple[List[Element], Optional[Stable]]] = []
    for data, stable in segments:
        expanded: List[Element] = []
        chains: List[List[Adjust]] = []
        for element in data:
            if not isinstance(element, Insert) or rng.random() >= fraction:
                expanded.append(element)
                continue
            provisional = _provisional_ve(element, rng, provisional_infinite)
            expanded.append(Insert(element.payload, element.vs, provisional))
            chain: List[Adjust] = []
            current = provisional
            revisions = rng.randint(1, max_revisions)
            for step in range(revisions):
                target = (
                    element.ve
                    if step == revisions - 1
                    else _provisional_ve(element, rng, provisional_infinite)
                )
                if target != current:
                    chain.append(
                        Adjust(element.payload, element.vs, current, target)
                    )
                    current = target
            if current != element.ve:
                chain.append(
                    Adjust(element.payload, element.vs, current, element.ve)
                )
            chains.append(chain)
        # Interleave the adjust chains at random positions *after* their
        # inserts within the segment.
        for chain in chains:
            for adjust in chain:
                insert_pos = _position_of_key(expanded, adjust.key)
                pos = rng.randint(insert_pos + 1, len(expanded))
                expanded.insert(pos, adjust)
        rebuilt.append((expanded, stable))
    return _rebuild(rebuilt, name=f"{stream.name}+speculate")


def _provisional_ve(
    insert: Insert, rng: random.Random, provisional_infinite: float
) -> Timestamp:
    if rng.random() < provisional_infinite:
        return INFINITY
    true_span = 100 if insert.ve == INFINITY else max(1, int(insert.ve - insert.vs))
    return insert.vs + rng.randint(1, 2 * true_span)


def _position_of_key(elements: List[Element], key: Tuple) -> int:
    """Index of the last element bearing *key* (insert or prior adjust)."""
    for index in range(len(elements) - 1, -1, -1):
        element = elements[index]
        if not isinstance(element, Stable) and element.key == key:
            return index
    raise ValueError(f"no element with key {key!r}")


def thin_stables(
    stream: PhysicalStream, rng: random.Random, keep_probability: float = 0.5
) -> PhysicalStream:
    """Drop stables at random (keeping any final ``stable(+inf)``).

    Punctuation only promises — removing promises is always sound, so the
    result is logically equivalent; it just reveals stability later.
    """
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError("keep_probability must be in [0, 1]")
    out: List[Element] = []
    for index, element in enumerate(stream):
        is_final = index == len(stream) - 1
        if (
            isinstance(element, Stable)
            and not is_final
            and element.vc != INFINITY
            and rng.random() >= keep_probability
        ):
            continue
        out.append(element)
    return PhysicalStream(out, name=f"{stream.name}+thin")


def inject_gap(
    stream: PhysicalStream, rng: random.Random, gap_fraction: float = 0.1
) -> PhysicalStream:
    """Remove a contiguous run of data elements (a failure gap).

    The result is **not** equivalent to the input — it models an input that
    missed elements (Section V-C).  Adjusts whose insert fell in the gap
    are removed too, keeping the stream internally well-formed.
    """
    data_indices = [
        i for i, e in enumerate(stream) if not isinstance(e, Stable)
    ]
    if not data_indices or gap_fraction <= 0:
        return PhysicalStream(list(stream), name=f"{stream.name}+gap")
    gap_len = max(1, int(len(data_indices) * gap_fraction))
    start = rng.randrange(max(1, len(data_indices) - gap_len + 1))
    removed = set(data_indices[start : start + gap_len])
    removed_keys = {
        stream[i].key for i in removed if isinstance(stream[i], Insert)
    }
    out: List[Element] = []
    for index, element in enumerate(stream):
        if index in removed:
            continue
        if isinstance(element, Adjust) and element.key in removed_keys:
            continue
        out.append(element)
    return PhysicalStream(out, name=f"{stream.name}+gap")


def duplicate_inserts(
    stream: PhysicalStream, rng: random.Random, fraction: float = 0.1
) -> PhysicalStream:
    """Re-emit some inserts immediately (an R4 duplicate-bearing stream).

    Breaks the ``(Vs, payload)`` key property on purpose; only the R4
    algorithm accepts such streams.
    """
    out: List[Element] = []
    for element in stream:
        out.append(element)
        if isinstance(element, Insert) and rng.random() < fraction:
            out.append(element)
    return PhysicalStream(out, name=f"{stream.name}+dups")


def diverge(
    stream: PhysicalStream,
    seed: int,
    speculate_fraction: float = 0.0,
    reorder: bool = True,
    stable_keep_probability: float = 1.0,
) -> PhysicalStream:
    """Compose the equivalence-preserving transforms with one seed.

    The canonical way to build LMerge inputs in tests and benches::

        inputs = [diverge(ref, seed=i, speculate_fraction=0.3)
                  for i in range(n)]
    """
    rng = random.Random(seed)
    result = stream
    if stable_keep_probability < 1.0:
        result = thin_stables(result, rng, stable_keep_probability)
    if speculate_fraction > 0.0:
        result = speculate(result, rng, fraction=speculate_fraction)
    if reorder:
        result = reorder_within_stability(result, rng)
    return PhysicalStream(list(result), name=f"{stream.name}+div{seed}")
