"""Stream properties and the R0-R4 restriction spectrum.

Section III-C defines a spectrum of input restrictions that enable
progressively simpler LMerge algorithms:

* **R0** — insert/stable only, strictly increasing Vs (deterministic order,
  no duplicate timestamps);
* **R1** — insert/stable only, non-decreasing Vs, and elements sharing a Vs
  appear in a deterministic order (the same on every input);
* **R2** — like R1 but equal-Vs order may differ across inputs, and
  ``(Vs, payload)`` is a key of every prefix TDB;
* **R3** — all element kinds, no ordering constraint beyond stable()
  semantics, ``(Vs, payload)`` still a key;
* **R4** — no restriction at all (multiset TDB, duplicates allowed).

:class:`StreamProperties` carries the facts; :func:`classify` maps them to
the weakest restriction they justify, which in turn selects the cheapest
LMerge algorithm (Section IV-G).  Properties are produced three ways:
stipulated by sources, *inferred* through query plans
(:meth:`repro.engine.query.Query.output_properties`), or *measured* from a
concrete stream (:func:`measure_properties`, useful in tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Set, Tuple

from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.time import MINUS_INFINITY


class Restriction(enum.IntEnum):
    """The paper's input-restriction cases, ordered weakest-algorithm first.

    Lower values are stronger restrictions and admit cheaper algorithms.
    """

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4


@dataclass(frozen=True)
class StreamProperties:
    """Compile-time (or measured) facts about a stream.

    The flags are conjunctive guarantees; ``StreamProperties.unknown()``
    guarantees nothing and therefore classifies as R4.
    """

    #: Vs values are non-decreasing over the element sequence.
    ordered: bool = False
    #: Vs values are strictly increasing (implies ``ordered``).
    strictly_increasing: bool = False
    #: The stream contains no adjust() elements (insert/stable only).
    insert_only: bool = False
    #: Elements sharing a Vs appear in the same order on every replica
    #: (e.g. rank order out of a Top-k aggregate).
    deterministic_same_vs_order: bool = False
    #: ``(Vs, payload)`` is a key of every prefix TDB (no duplicates).
    key_vs_payload: bool = False

    def __post_init__(self) -> None:
        if self.strictly_increasing and not self.ordered:
            # Strictly increasing subsumes ordered; normalize eagerly so
            # property algebra can rely on it.
            object.__setattr__(self, "ordered", True)

    @staticmethod
    def unknown() -> "StreamProperties":
        """No guarantees: the fully general R4 case."""
        return StreamProperties()

    @staticmethod
    def strongest() -> "StreamProperties":
        """Every guarantee: the R0 case."""
        return StreamProperties(
            ordered=True,
            strictly_increasing=True,
            insert_only=True,
            deterministic_same_vs_order=True,
            key_vs_payload=True,
        )

    def meet(self, other: "StreamProperties") -> "StreamProperties":
        """Greatest lower bound: guarantees that hold on *both* streams.

        LMerge requires one property set describing all inputs; the meet of
        the individual input properties is the correct (weakest safe)
        choice.
        """
        return StreamProperties(
            ordered=self.ordered and other.ordered,
            strictly_increasing=self.strictly_increasing
            and other.strictly_increasing,
            insert_only=self.insert_only and other.insert_only,
            deterministic_same_vs_order=self.deterministic_same_vs_order
            and other.deterministic_same_vs_order,
            key_vs_payload=self.key_vs_payload and other.key_vs_payload,
        )

    def weaken(self, **changes: bool) -> "StreamProperties":
        """A copy with some guarantees revoked (or granted)."""
        return replace(self, **changes)


def classify(properties: StreamProperties) -> Restriction:
    """Map guarantees to the strongest restriction they justify.

    This is the compile-time algorithm-selection rule of Section IV-G: the
    returned restriction indexes directly into the LMerge algorithm family
    (R0 -> LMergeR0, ..., R4 -> LMergeR4).
    """
    if properties.insert_only and properties.strictly_increasing:
        return Restriction.R0
    if (
        properties.insert_only
        and properties.ordered
        and properties.deterministic_same_vs_order
    ):
        return Restriction.R1
    if (
        properties.insert_only
        and properties.ordered
        and properties.key_vs_payload
    ):
        return Restriction.R2
    if properties.key_vs_payload:
        return Restriction.R3
    return Restriction.R4


def measure_properties(elements: Iterable[Element]) -> StreamProperties:
    """Measure which guarantees actually hold on a concrete stream.

    Used by tests (generated workloads must exhibit the properties their
    configuration promises) and available for runtime diagnostics.  The
    ``deterministic_same_vs_order`` flag cannot be established from a single
    stream, so it is reported as True exactly when no Vs is duplicated
    (making same-Vs order vacuous).
    """
    ordered = True
    strictly = True
    insert_only = True
    key = True
    last_vs = MINUS_INFINITY
    vs_duplicated = False
    seen_keys: Set[Tuple] = set()
    for element in elements:
        if isinstance(element, Stable):
            continue
        if isinstance(element, Adjust):
            insert_only = False
            continue
        assert isinstance(element, Insert)
        if element.vs < last_vs:
            ordered = False
            strictly = False
        elif element.vs == last_vs:
            strictly = False
            vs_duplicated = True
        last_vs = max(last_vs, element.vs)
        if element.key in seen_keys:
            key = False
        seen_keys.add(element.key)
    return StreamProperties(
        ordered=ordered,
        strictly_increasing=strictly and ordered,
        insert_only=insert_only,
        deterministic_same_vs_order=not vs_duplicated,
        key_vs_payload=key and insert_only,
    )
