"""Stream properties and the R0-R4 restriction spectrum.

Section III-C defines a spectrum of input restrictions that enable
progressively simpler LMerge algorithms:

* **R0** — insert/stable only, strictly increasing Vs (deterministic order,
  no duplicate timestamps);
* **R1** — insert/stable only, non-decreasing Vs, and elements sharing a Vs
  appear in a deterministic order (the same on every input);
* **R2** — like R1 but equal-Vs order may differ across inputs, and
  ``(Vs, payload)`` is a key of every prefix TDB;
* **R3** — all element kinds, no ordering constraint beyond stable()
  semantics, ``(Vs, payload)`` still a key;
* **R4** — no restriction at all (multiset TDB, duplicates allowed).

:class:`StreamProperties` carries the facts; :func:`classify` maps them to
the weakest restriction they justify, which in turn selects the cheapest
LMerge algorithm (Section IV-G).  Properties are produced three ways:
stipulated by sources, *inferred* through query plans
(:meth:`repro.engine.query.Query.output_properties`), or *measured* from a
concrete stream (:func:`measure_properties`, useful in tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.event import Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp


class Restriction(enum.IntEnum):
    """The paper's input-restriction cases, ordered weakest-algorithm first.

    Lower values are stronger restrictions and admit cheaper algorithms.
    """

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4


@dataclass(frozen=True)
class StreamProperties:
    """Compile-time (or measured) facts about a stream.

    The flags are conjunctive guarantees; ``StreamProperties.unknown()``
    guarantees nothing and therefore classifies as R4.
    """

    #: Vs values are non-decreasing over the element sequence.
    ordered: bool = False
    #: Vs values are strictly increasing (implies ``ordered``).
    strictly_increasing: bool = False
    #: The stream contains no adjust() elements (insert/stable only).
    insert_only: bool = False
    #: Elements sharing a Vs appear in the same order on every replica
    #: (e.g. rank order out of a Top-k aggregate).
    deterministic_same_vs_order: bool = False
    #: ``(Vs, payload)`` is a key of every prefix TDB (no duplicates).
    key_vs_payload: bool = False

    def __post_init__(self) -> None:
        if self.strictly_increasing and not self.ordered:
            # Strictly increasing subsumes ordered; normalize eagerly so
            # property algebra can rely on it.
            object.__setattr__(self, "ordered", True)

    @staticmethod
    def unknown() -> "StreamProperties":
        """No guarantees: the fully general R4 case."""
        return StreamProperties()

    @staticmethod
    def strongest() -> "StreamProperties":
        """Every guarantee: the R0 case."""
        return StreamProperties(
            ordered=True,
            strictly_increasing=True,
            insert_only=True,
            deterministic_same_vs_order=True,
            key_vs_payload=True,
        )

    def meet(self, other: "StreamProperties") -> "StreamProperties":
        """Greatest lower bound: guarantees that hold on *both* streams.

        LMerge requires one property set describing all inputs; the meet of
        the individual input properties is the correct (weakest safe)
        choice.
        """
        return StreamProperties(
            ordered=self.ordered and other.ordered,
            strictly_increasing=self.strictly_increasing
            and other.strictly_increasing,
            insert_only=self.insert_only and other.insert_only,
            deterministic_same_vs_order=self.deterministic_same_vs_order
            and other.deterministic_same_vs_order,
            key_vs_payload=self.key_vs_payload and other.key_vs_payload,
        )

    def weaken(self, **changes: bool) -> "StreamProperties":
        """A copy with some guarantees revoked (or granted)."""
        return replace(self, **changes)


def classify(properties: StreamProperties) -> Restriction:
    """Map guarantees to the strongest restriction they justify.

    This is the compile-time algorithm-selection rule of Section IV-G: the
    returned restriction indexes directly into the LMerge algorithm family
    (R0 -> LMergeR0, ..., R4 -> LMergeR4).
    """
    if properties.insert_only and properties.strictly_increasing:
        return Restriction.R0
    if (
        properties.insert_only
        and properties.ordered
        and properties.deterministic_same_vs_order
    ):
        return Restriction.R1
    if (
        properties.insert_only
        and properties.ordered
        and properties.key_vs_payload
    ):
        return Restriction.R2
    if properties.key_vs_payload:
        return Restriction.R3
    return Restriction.R4


#: Minimal property sets per restriction: the guarantees a stream must
#: provide before the matching LMerge algorithm is sound on it.  These are
#: exactly the clause conditions of :func:`classify`, so
#: ``classify(required_properties(r)) is r`` for every restriction.
_REQUIRED: Dict[Restriction, StreamProperties] = {
    Restriction.R0: StreamProperties(
        strictly_increasing=True, insert_only=True
    ),
    Restriction.R1: StreamProperties(
        ordered=True, insert_only=True, deterministic_same_vs_order=True
    ),
    Restriction.R2: StreamProperties(
        ordered=True, insert_only=True, key_vs_payload=True
    ),
    Restriction.R3: StreamProperties(key_vs_payload=True),
    Restriction.R4: StreamProperties(),
}


def required_properties(restriction: Restriction) -> StreamProperties:
    """The weakest guarantees that justify *restriction*.

    Running algorithm R\\ *n* is sound on a stream iff the stream provides
    (at least) ``required_properties(Rn)`` — this is the contract the
    runtime :class:`repro.analysis.checked.PropertyChecker` enforces when a
    variant is forced.
    """
    return _REQUIRED[restriction]


class PropertyTracker:
    """Incrementally measure which guarantees hold on a concrete stream.

    Feed elements through :meth:`observe`; :meth:`current` reports the
    guarantees the prefix seen so far still upholds.  Guarantees only ever
    *break* (the observation lattice is monotone downward), so
    :meth:`observe` returns the names of the flags the element just broke —
    the hook :class:`repro.analysis.checked.PropertyChecker` uses to raise
    on the first element that contradicts a declared property.

    Pinned edge-case semantics (shared with :func:`measure_properties`,
    which delegates here):

    * an **empty** prefix upholds every guarantee
      (``StreamProperties.strongest()``);
    * a **single element** of any kind leaves order guarantees intact —
      one ``adjust()`` breaks exactly ``insert_only`` (and nothing else);
    * ``deterministic_same_vs_order`` cannot be established from a single
      stream, so it is True exactly while no Vs is duplicated (making
      same-Vs order vacuous) — see :func:`measure_joint_properties` for
      the cross-replica measurement;
    * ``key_vs_payload`` tracks the *prefix-TDB* key property: an insert
      breaks it only while another event with the same ``(Vs, payload)``
      is live, so cancel-then-reinsert sequences (speculative aggregates)
      keep the key — adjusts alone never break it.
    """

    _FLAGS = (
        "ordered",
        "strictly_increasing",
        "insert_only",
        "deterministic_same_vs_order",
        "key_vs_payload",
    )

    def __init__(self) -> None:
        self._ordered = True
        self._strictly = True
        self._insert_only = True
        self._key = True
        self._vs_duplicated = False
        self._last_vs: Timestamp = MINUS_INFINITY
        self._live_keys: Set[Tuple[Timestamp, Payload]] = set()
        self.elements_observed = 0

    def current(self) -> StreamProperties:
        """The guarantees the observed prefix still upholds."""
        return StreamProperties(
            ordered=self._ordered,
            strictly_increasing=self._strictly and self._ordered,
            insert_only=self._insert_only,
            deterministic_same_vs_order=not self._vs_duplicated,
            key_vs_payload=self._key,
        )

    def observe(self, element: Element) -> Tuple[str, ...]:
        """Account one element; return the flags it newly broke."""
        before = self.current()
        self.elements_observed += 1
        cls = element.__class__
        if cls is Insert:
            vs = element.vs
            if vs < self._last_vs:
                self._ordered = False
                self._strictly = False
            elif vs == self._last_vs:
                self._strictly = False
                self._vs_duplicated = True
            else:
                self._last_vs = vs
            key = element.key
            if key in self._live_keys:
                self._key = False
            else:
                self._live_keys.add(key)
        elif cls is Adjust:
            self._insert_only = False
            if element.is_cancel:
                self._live_keys.discard(element.key)
        elif cls is not Stable:
            raise TypeError(f"not a stream element: {element!r}")
        after = self.current()
        return tuple(
            flag
            for flag in self._FLAGS
            if getattr(before, flag) and not getattr(after, flag)
        )

    def observe_all(self, elements: Iterable[Element]) -> "PropertyTracker":
        """Account a whole sequence (chainable)."""
        for element in elements:
            self.observe(element)
        return self


def measure_properties(elements: Iterable[Element]) -> StreamProperties:
    """Measure which guarantees actually hold on a concrete stream.

    Used by tests (generated workloads must exhibit the properties their
    configuration promises), by ``repro merge`` algorithm selection, and
    for runtime diagnostics.  Delegates to :class:`PropertyTracker`, so the
    offline measurement and the incremental checker agree element for
    element — including on empty and single-element streams.
    """
    return PropertyTracker().observe_all(elements).current()


def measure_joint_properties(
    streams: Sequence[Iterable[Element]],
) -> StreamProperties:
    """Measure the guarantees a *set* of replica streams jointly upholds.

    Per-stream flags are measured with :class:`PropertyTracker` and met
    (every input must satisfy the restriction LMerge runs under).  The one
    flag a single stream cannot witness — ``deterministic_same_vs_order``
    — is established *across* replicas: it holds when every stream
    presents the inserts of each duplicated Vs in the same payload order.
    This is the dynamic counterpart of the compile-time inference, used to
    confirm static verdicts on live data.
    """
    materialized: List[List[Element]] = [list(stream) for stream in streams]
    if not materialized:
        return StreamProperties.strongest()
    trackers = [
        PropertyTracker().observe_all(elements) for elements in materialized
    ]
    merged = trackers[0].current()
    for tracker in trackers[1:]:
        merged = merged.meet(tracker.current())
    return merged.weaken(
        deterministic_same_vs_order=_same_vs_orders_agree(materialized)
    )


def _same_vs_orders_agree(streams: Sequence[Sequence[Element]]) -> bool:
    """True when all streams order same-Vs inserts identically.

    Vacuously true when no Vs is duplicated anywhere.  Only Vs values with
    several inserts matter, and only streams containing that Vs take part
    in the comparison.
    """
    per_stream: List[Dict[Timestamp, List[Payload]]] = []
    for elements in streams:
        groups: Dict[Timestamp, List[Payload]] = {}
        for element in elements:
            if element.__class__ is Insert:
                groups.setdefault(element.vs, []).append(element.payload)
        per_stream.append(groups)
    duplicated = {
        vs
        for groups in per_stream
        for vs, payloads in groups.items()
        if len(payloads) > 1
    }
    for vs in duplicated:
        reference: List[Payload] = []
        for groups in per_stream:
            payloads = groups.get(vs)
            if payloads is None:
                continue
            if not reference:
                reference = payloads
            elif payloads != reference:
                return False
    return True
