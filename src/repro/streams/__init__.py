"""Physical streams, stream properties, and workload generation.

* :mod:`repro.streams.stream` — :class:`PhysicalStream`, a concrete element
  sequence with prefix/TDB helpers;
* :mod:`repro.streams.properties` — the compile-time property lattice of
  Section IV-G and the R0–R4 restriction classification of Section III-C;
* :mod:`repro.streams.generator` — the synthetic stream generator of
  Section VI-B (StableFreq / EventDuration / MaxGap / Disorder knobs);
* :mod:`repro.streams.divergence` — transforms that derive physically
  different but logically equivalent presentations of a reference stream
  (reordering, speculation/revision, stable thinning, gaps, duplication).
"""

from repro.streams.stream import PhysicalStream
from repro.streams.properties import (
    Restriction,
    StreamProperties,
    classify,
    measure_properties,
)
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.analyze import DisorderStats, measure_disorder
from repro.streams.punctuation import (
    WatermarkTracker,
    strip_stables,
    with_heartbeats,
)
from repro.streams.divergence import (
    diverge,
    inject_gap,
    reorder_within_stability,
    speculate,
    thin_stables,
)

__all__ = [
    "PhysicalStream",
    "Restriction",
    "StreamProperties",
    "classify",
    "measure_properties",
    "GeneratorConfig",
    "StreamGenerator",
    "diverge",
    "reorder_within_stability",
    "speculate",
    "thin_stables",
    "inject_gap",
    "WatermarkTracker",
    "with_heartbeats",
    "strip_stables",
    "DisorderStats",
    "measure_disorder",
]
