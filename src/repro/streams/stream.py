"""Concrete physical streams.

A :class:`PhysicalStream` is a finite element sequence ``e1, e2, ...`` with
the prefix notation of Section III-A: ``stream[i]`` / ``stream.prefix(i)``
is ``S[i]``, and ``stream.tdb(i)`` is the reconstitution ``tdb(S, i)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, overload

from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.tdb import TDB, reconstitute
from repro.temporal.time import MINUS_INFINITY, Timestamp


class PhysicalStream:
    """A finite sequence of stream elements with TDB helpers.

    Physical streams are value-like: equality is element-sequence equality
    (use :meth:`equivalent` for *logical* equivalence).
    """

    __slots__ = ("_elements", "name")

    def __init__(
        self, elements: Optional[Iterable[Element]] = None, name: str = ""
    ):
        self._elements: List[Element] = list(elements) if elements else []
        self.name = name

    # -- sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    @overload
    def __getitem__(self, index: int) -> Element: ...

    @overload
    def __getitem__(self, index: slice) -> "PhysicalStream": ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PhysicalStream(self._elements[index], name=self.name)
        return self._elements[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhysicalStream):
            return NotImplemented
        return self._elements == other._elements

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover
        label = f" {self.name!r}" if self.name else ""
        return f"PhysicalStream{label}({len(self)} elements)"

    def append(self, element: Element) -> None:
        """Append one element."""
        self._elements.append(element)

    def extend(self, elements: Iterable[Element]) -> None:
        """Append several elements."""
        self._elements.extend(elements)

    @property
    def elements(self) -> Sequence[Element]:
        """Read-only view of the element sequence."""
        return tuple(self._elements)

    # -- prefixes and reconstitution --------------------------------------

    def prefix(self, length: int) -> "PhysicalStream":
        """``S[length]``: the first *length* elements."""
        if length < 0 or length > len(self._elements):
            raise IndexError(f"prefix length {length} out of range")
        return PhysicalStream(self._elements[:length], name=self.name)

    def tdb(self, length: Optional[int] = None, strict: bool = True) -> TDB:
        """``tdb(S, length)`` — or ``tdb(S)`` when *length* is omitted."""
        if length is None:
            return reconstitute(self._elements, strict=strict)
        return reconstitute(self.prefix(length), strict=strict)

    def equivalent(self, other: "PhysicalStream") -> bool:
        """Logical equivalence: equal reconstituted TDBs (``S == U``)."""
        return self.tdb() == other.tdb()

    # -- statistics --------------------------------------------------------

    def count_inserts(self) -> int:
        return sum(1 for e in self._elements if isinstance(e, Insert))

    def count_adjusts(self) -> int:
        return sum(1 for e in self._elements if isinstance(e, Adjust))

    def count_stables(self) -> int:
        return sum(1 for e in self._elements if isinstance(e, Stable))

    def max_stable(self) -> Timestamp:
        """Largest ``stable()`` timestamp, ``-inf`` when there is none."""
        best = MINUS_INFINITY
        for element in self._elements:
            if isinstance(element, Stable) and element.vc > best:
                best = element.vc
        return best

    def data_elements(self) -> Iterator[Element]:
        """Inserts and adjusts, skipping punctuation."""
        return (e for e in self._elements if not isinstance(e, Stable))
