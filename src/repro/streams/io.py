"""Stream serialization: JSON-lines persistence of physical streams.

One element per line; payloads must be JSON-representable (tuples are
round-tripped as tagged lists).  ``+inf`` timestamps serialize as the
string ``"inf"``.  This is the interchange format the command-line tool
(``python -m repro``) speaks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO, Iterable, List, Union

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.time import INFINITY


def _encode_time(t) -> Union[int, float, str]:
    return "inf" if t == INFINITY else t


def _decode_time(value):
    return INFINITY if value == "inf" else value


def _encode_payload(payload) -> Any:
    if isinstance(payload, tuple):
        return {"__tuple__": [_encode_payload(item) for item in payload]}
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    raise TypeError(
        f"payload {payload!r} is not JSON-serializable; use tuples of "
        "scalars or strings"
    )


def _decode_payload(value) -> Any:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_payload(item) for item in value["__tuple__"])
    if isinstance(value, list):
        return tuple(_decode_payload(item) for item in value)
    return value


def element_to_dict(element: Element) -> dict:
    """One element as a JSON-ready dict."""
    if isinstance(element, Insert):
        return {
            "t": "insert",
            "p": _encode_payload(element.payload),
            "vs": _encode_time(element.vs),
            "ve": _encode_time(element.ve),
        }
    if isinstance(element, Adjust):
        return {
            "t": "adjust",
            "p": _encode_payload(element.payload),
            "vs": _encode_time(element.vs),
            "vold": _encode_time(element.v_old),
            "ve": _encode_time(element.ve),
        }
    if isinstance(element, Stable):
        return {"t": "stable", "vc": _encode_time(element.vc)}
    raise TypeError(f"not a stream element: {element!r}")


def element_from_dict(record: dict) -> Element:
    """Inverse of :func:`element_to_dict`.

    Files are untrusted input, so elements are built with ``validate=True``
    — this is exactly the trust boundary the constructors' opt-in
    validation exists for.
    """
    kind = record.get("t")
    if kind == "insert":
        return Insert(
            _decode_payload(record["p"]),
            _decode_time(record["vs"]),
            _decode_time(record["ve"]),
            validate=True,
        )
    if kind == "adjust":
        return Adjust(
            _decode_payload(record["p"]),
            _decode_time(record["vs"]),
            _decode_time(record["vold"]),
            _decode_time(record["ve"]),
            validate=True,
        )
    if kind == "stable":
        return Stable(_decode_time(record["vc"]), validate=True)
    raise ValueError(f"unknown element kind {kind!r}")


def dump_stream(stream: Iterable[Element], fp: IO[str]) -> int:
    """Write elements to *fp* as JSON lines; returns the element count."""
    count = 0
    for element in stream:
        fp.write(json.dumps(element_to_dict(element), separators=(",", ":")))
        fp.write("\n")
        count += 1
    return count


def load_stream(fp: IO[str], name: str = "") -> PhysicalStream:
    """Read a JSON-lines stream from *fp*."""
    elements: List[Element] = []
    for line_number, line in enumerate(fp, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            elements.append(element_from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"line {line_number}: {exc}") from exc
    return PhysicalStream(elements, name=name)


def save_stream(stream: Iterable[Element], path: Union[str, Path]) -> int:
    """Write a stream to *path*."""
    with open(path, "w", encoding="utf-8") as fp:
        return dump_stream(stream, fp)


def read_stream(path: Union[str, Path]) -> PhysicalStream:
    """Read a stream from *path*."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_stream(fp, name=str(path))
