"""Synthetic stream generator (Section VI-B).

Reimplements the paper's test workload generator [26] with the same knobs:

* ``stable_freq`` — probability that an element is a ``stable()``; at least
  one insert is generated between consecutive stables;
* ``event_duration`` — event lifetime, controlling how many events are
  alive (contributing to output) at any instant;
* ``max_gap`` — the application-time gap between consecutive elements is
  drawn uniformly from ``[0, max_gap]``;
* ``disorder`` — the fraction of inserts whose Vs is moved *back* by a
  random amount, best-effort (a backshift never crosses the preceding
  stable point, so heavy punctuation limits achievable disorder — exactly
  the paper's "we cannot have 100% disorder with StableFreq=1").

Payloads mirror the paper's: an integer drawn from ``[0, 400]`` plus a
1000-byte random string, extended with a unique sequence number so that
``(Vs, payload)`` is a key (the property the R2/R3 algorithms assume; the
paper's grouped-aggregation workloads provide it the same way).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Element, Insert, Stable
from repro.temporal.time import INFINITY, MINUS_INFINITY

_BLOB_POOL_SIZE = 256
_ALPHABET = string.ascii_letters + string.digits


@dataclass
class GeneratorConfig:
    """Workload parameters (paper defaults in brackets)."""

    #: Total number of elements to generate (paper: 200K-400K).
    count: int = 10_000
    #: Probability that an element is a stable() [1%].
    stable_freq: float = 0.01
    #: Event lifetime in time units; the paper tunes this so ~10K events
    #: are alive at once (alive ~= event_duration / average_gap).
    event_duration: int = 1_000
    #: Maximum application-time gap between consecutive elements [20].
    max_gap: int = 20
    #: Minimum gap; set to 1 to force strictly increasing Vs (case R0).
    min_gap: int = 0
    #: Fraction of inserts that are disordered (Vs moved back) [20%].
    disorder: float = 0.20
    #: Maximum backshift applied to a disordered element's Vs.
    disorder_window: int = 500
    #: Size of the random string in each payload [1000 bytes].
    payload_blob_bytes: int = 1000
    #: Inclusive range of the integer payload field [0, 400].
    value_range: Tuple[int, int] = (0, 400)
    #: Append stable(+inf) at the end, finalizing the stream.
    final_stable: bool = True
    #: RNG seed; the same seed reproduces the same stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be positive")
        if not 0.0 <= self.stable_freq <= 1.0:
            raise ValueError("stable_freq must be a probability")
        if not 0.0 <= self.disorder <= 1.0:
            raise ValueError("disorder must be a fraction in [0, 1]")
        if self.event_duration < 1:
            raise ValueError("event_duration must be positive")
        if self.max_gap < 0:
            raise ValueError("max_gap must be non-negative")
        if not 0 <= self.min_gap <= self.max_gap and not (self.min_gap >= 0 and self.max_gap == 0):
            raise ValueError("min_gap must lie in [0, max_gap]")


@dataclass
class GeneratorStats:
    """What the generator actually produced (disorder is best-effort)."""

    inserts: int = 0
    stables: int = 0
    disordered: int = 0

    @property
    def achieved_disorder(self) -> float:
        return self.disordered / self.inserts if self.inserts else 0.0


class StreamGenerator:
    """Seedable generator of ordered-or-disordered insert/stable streams.

    >>> gen = StreamGenerator(GeneratorConfig(count=100, seed=7))
    >>> stream = gen.generate()
    >>> stream.count_inserts() + stream.count_stables() >= 100
    True
    """

    def __init__(self, config: Optional[GeneratorConfig] = None):
        self.config = config or GeneratorConfig()
        self.stats = GeneratorStats()
        self._rng = random.Random(self.config.seed)
        self._blob_pool = self._make_blob_pool()

    def _make_blob_pool(self) -> List[str]:
        size = self.config.payload_blob_bytes
        if size == 0:
            return [""]
        rng = random.Random(self.config.seed ^ 0x5EED)
        return [
            "".join(rng.choices(_ALPHABET, k=size))
            for _ in range(_BLOB_POOL_SIZE)
        ]

    def generate(self) -> PhysicalStream:
        """Generate one physical stream per the configuration."""
        cfg = self.config
        rng = self._rng
        self.stats = GeneratorStats()
        elements: List[Element] = []
        vs = 0
        seq = 0
        last_was_stable = True  # forces the stream to start with an insert
        last_stable_vc = MINUS_INFINITY
        lo, hi = cfg.value_range
        while len(elements) < cfg.count:
            emit_stable = (
                not last_was_stable and rng.random() < cfg.stable_freq
            )
            if emit_stable:
                elements.append(Stable(vs))
                last_stable_vc = vs
                last_was_stable = True
                self.stats.stables += 1
                continue
            vs += rng.randint(cfg.min_gap, max(cfg.min_gap, cfg.max_gap))
            actual_vs = vs
            if rng.random() < cfg.disorder:
                backshift = rng.randint(1, cfg.disorder_window)
                floor = max(0, last_stable_vc)
                shifted = max(floor, vs - backshift)
                if shifted < vs:
                    actual_vs = shifted
                    self.stats.disordered += 1
            payload = (rng.randint(lo, hi), seq, rng.choice(self._blob_pool))
            elements.append(
                Insert(payload, actual_vs, actual_vs + cfg.event_duration)
            )
            seq += 1
            last_was_stable = False
            self.stats.inserts += 1
        if cfg.final_stable:
            elements.append(Stable(INFINITY))
        return PhysicalStream(elements, name=f"gen(seed={cfg.seed})")

    def generate_ordered(self) -> PhysicalStream:
        """Convenience: generate with disorder forced to zero."""
        saved = self.config.disorder
        try:
            self.config.disorder = 0.0
            return self.generate()
        finally:
            self.config.disorder = saved
