"""Stream analysis: disorder and punctuation statistics.

The right configuration for Cleanse buffers, heartbeat watermarks
(:mod:`repro.streams.punctuation`), and the stable-lag policy all hinge on
one question: *how far back can an element reach?*  :func:`measure_disorder`
answers it from a sample of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.time import INFINITY, MINUS_INFINITY, Timestamp


@dataclass
class DisorderStats:
    """Disorder profile of an element sequence.

    *Backshift* of an insert is how far its Vs lies behind the largest Vs
    seen before it (0 for in-order elements).
    """

    inserts: int = 0
    disordered: int = 0
    max_backshift: Timestamp = 0
    total_backshift: float = 0.0
    #: Histogram of backshifts in power-of-two buckets: bucket k counts
    #: backshifts in [2^k, 2^(k+1)).
    histogram: Dict[int, int] = field(default_factory=dict)
    stables: int = 0
    #: Smallest gap between any stable's promise Vc and the smallest Vs
    #: arriving after it.  Negative would mean a broken stream; a small
    #: positive margin means the producer punctuates aggressively.
    min_stable_margin: Optional[Timestamp] = None

    @property
    def disorder_fraction(self) -> float:
        return self.disordered / self.inserts if self.inserts else 0.0

    @property
    def mean_backshift(self) -> float:
        return (
            self.total_backshift / self.disordered if self.disordered else 0.0
        )

    def suggested_max_delay(self, slack: float = 1.25) -> Timestamp:
        """A ``max_delay`` for :class:`~repro.streams.punctuation.WatermarkTracker`
        covering every observed backshift, with *slack* headroom."""
        return type(self.max_backshift)(self.max_backshift * slack)


def measure_disorder(elements: Iterable[Element]) -> DisorderStats:
    """Profile the disorder of *elements*.

    ``min_stable_margin`` exposes how close the producer's punctuation
    sails to its data: the minimum, over all mid-stream stables, of
    (smallest subsequent data Vs) − Vc.  Zero means some element landed
    exactly on a promise; a generous margin means conservative
    watermarking.
    """
    stats = DisorderStats()
    materialized: List[Element] = list(elements)
    frontier: Timestamp = MINUS_INFINITY
    for element in materialized:
        if isinstance(element, Stable):
            stats.stables += 1
            continue
        if not isinstance(element, (Insert, Adjust)):
            raise TypeError(f"not a stream element: {element!r}")
        if isinstance(element, Insert):
            stats.inserts += 1
            if frontier != MINUS_INFINITY and element.vs < frontier:
                backshift = frontier - element.vs
                stats.disordered += 1
                stats.total_backshift += backshift
                if backshift > stats.max_backshift:
                    stats.max_backshift = backshift
                bucket = max(0, int(backshift).bit_length() - 1)
                stats.histogram[bucket] = stats.histogram.get(bucket, 0) + 1
            if element.vs > frontier:
                frontier = element.vs
    # Stable margins need the minimum Vs *after* each stable: suffix scan.
    min_vs_after: Timestamp = INFINITY
    for element in reversed(materialized):
        if isinstance(element, Stable):
            if element.vc != INFINITY and min_vs_after != INFINITY:
                margin = min_vs_after - element.vc
                if (
                    stats.min_stable_margin is None
                    or margin < stats.min_stable_margin
                ):
                    stats.min_stable_margin = margin
        elif isinstance(element, Insert):
            if element.vs < min_vs_after:
                min_vs_after = element.vs
    return stats
