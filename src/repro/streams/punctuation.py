"""Punctuation utilities: watermarks and heartbeats.

stable() elements are promises, and emitting an unsafe one corrupts a
stream forever (a later disordered element would violate it).  These
helpers make producing correct punctuation easy:

* :class:`WatermarkTracker` — source-side: given a bound on how far back
  a future element's Vs (or adjusted Ve) can reach, tracks the largest
  stable point that is currently safe to promise;
* :func:`with_heartbeats` — rewrite a stream to carry periodic stables at
  the tracker's watermark (the paper's heartbeat/CTI mechanism [6, 22],
  used "to constrain future elements and avoid arbitrary disorder");
* :func:`strip_stables` — remove punctuation (keeping an optional final
  ``stable(+inf)``), modelling a source that never promises anything.
"""

from __future__ import annotations

from typing import List, Optional

from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.time import INFINITY, MINUS_INFINITY, Timestamp


class WatermarkTracker:
    """Tracks the largest safe stable point for a stream being produced.

    *max_delay* bounds the disorder: every future element's Vs (and any
    adjust's Vold/Ve) is promised to be at least ``observed_frontier -
    max_delay``.  :meth:`watermark` is then safe to put in a ``stable()``.
    """

    def __init__(self, max_delay: Timestamp):
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.max_delay = max_delay
        self._frontier: Timestamp = MINUS_INFINITY

    def observe(self, element: Element) -> None:
        """Advance the frontier with one produced element."""
        if isinstance(element, Insert):
            if element.vs > self._frontier:
                self._frontier = element.vs
        elif isinstance(element, Adjust):
            if element.vs > self._frontier:
                self._frontier = element.vs
        # stables do not move the data frontier

    @property
    def frontier(self) -> Timestamp:
        return self._frontier

    def watermark(self) -> Timestamp:
        """The largest Vc such that ``stable(Vc)`` is currently safe."""
        if self._frontier == MINUS_INFINITY:
            return MINUS_INFINITY
        return self._frontier - self.max_delay

    def safe_stable(self) -> Optional[Stable]:
        """A stable() at the current watermark, or None if none is safe."""
        point = self.watermark()
        if point == MINUS_INFINITY:
            return None
        return Stable(point)


def with_heartbeats(
    stream: PhysicalStream,
    max_delay: Timestamp,
    every: int = 100,
    final_infinity: bool = True,
) -> PhysicalStream:
    """Re-punctuate *stream*: a heartbeat stable every *every* data
    elements, at the watermark implied by *max_delay*.

    Existing stables are dropped (replaced by the heartbeat discipline).
    The data elements must actually honour *max_delay*; a violating
    element raises ValueError rather than producing a corrupt stream.
    """
    if every < 1:
        raise ValueError("every must be positive")
    tracker = WatermarkTracker(max_delay)
    out: List[Element] = []
    emitted_stable: Timestamp = MINUS_INFINITY
    since_heartbeat = 0
    for element in stream:
        if isinstance(element, Stable):
            continue
        anchor = element.vs
        if anchor < emitted_stable or (
            isinstance(element, Adjust)
            and min(element.v_old, element.ve) < emitted_stable
        ):
            raise ValueError(
                f"element {element} violates the declared max_delay "
                f"{max_delay} (emitted stable {emitted_stable})"
            )
        tracker.observe(element)
        out.append(element)
        since_heartbeat += 1
        if since_heartbeat >= every:
            since_heartbeat = 0
            heartbeat = tracker.safe_stable()
            if heartbeat is not None and heartbeat.vc > emitted_stable:
                emitted_stable = heartbeat.vc
                out.append(heartbeat)
    if final_infinity:
        out.append(Stable(INFINITY))
    return PhysicalStream(out, name=f"{stream.name}+heartbeats")


def strip_stables(
    stream: PhysicalStream, keep_final_infinity: bool = True
) -> PhysicalStream:
    """Remove punctuation from *stream*."""
    out: List[Element] = [
        element for element in stream if not isinstance(element, Stable)
    ]
    if keep_final_infinity and stream.max_stable() == INFINITY:
        out.append(Stable(INFINITY))
    return PhysicalStream(out, name=f"{stream.name}+nostables")
