"""Measurement utilities for the evaluation harness.

The paper tracks three metrics (Section VI-B): **throughput** (output
events per second), **memory** (operator state including payloads and
index structures), and **output size** (adjust() chattiness).  The
figure experiments additionally need throughput *timelines* over simulated
time and application-time **latency**.
"""

from repro.metrics.collector import (
    AppTimeLatencyProbe,
    MemoryProbe,
    ThroughputTimeline,
    merge_stats,
    wall_clock_throughput,
)

__all__ = [
    "ThroughputTimeline",
    "MemoryProbe",
    "AppTimeLatencyProbe",
    "merge_stats",
    "wall_clock_throughput",
]
