"""Metric probes: throughput timelines, memory sampling, latency.

These are the figure benches' ad-hoc probes.  New instrumentation should
go through :mod:`repro.obs` instead — the registry's
:class:`~repro.obs.registry.TimeSeries` and
:class:`~repro.obs.registry.Histogram` are the labeled, snapshot-able
successors of :class:`ThroughputTimeline` and the latency lists here.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Tuple

from repro.temporal.elements import Element, Insert
from repro.temporal.time import MINUS_INFINITY, Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.lmerge.base import MergeStats


class ThroughputTimeline:
    """Events per simulated-time bucket (the series in Figures 8-10).

    Call :meth:`record` with the simulation clock whenever an element of
    interest passes; :meth:`series` returns ``(bucket_start, count)``
    pairs with empty buckets filled in.
    """

    def __init__(self, bucket: float = 1.0):
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket
        self._counts: Dict[int, int] = {}
        self.total = 0

    def record(self, sim_time: float, count: int = 1) -> None:
        index = int(sim_time // self.bucket)
        self._counts[index] = self._counts.get(index, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, int]]:
        if not self._counts:
            return []
        # Buckets may be negative (a simulation clock starts wherever the
        # workload does), so the gap-fill starts at the minimum recorded
        # bucket — never a hardcoded zero, which silently dropped every
        # bucket below it.
        first = min(self._counts)
        last = max(self._counts)
        return [
            (index * self.bucket, self._counts.get(index, 0))
            for index in range(first, last + 1)
        ]

    def rates(self) -> List[float]:
        """Per-bucket rates (events / second)."""
        return [count / self.bucket for _, count in self.series()]

    def coefficient_of_variation(self) -> float:
        """Std/mean of the bucket rates — the "smoothness" statistic used
        to quantify Figures 8 and 9 (lower = steadier output)."""
        rates = self.rates()
        if not rates:
            return 0.0
        mean = sum(rates) / len(rates)
        if mean == 0:
            return 0.0
        variance = sum((r - mean) ** 2 for r in rates) / len(rates)
        return variance**0.5 / mean


class MemoryProbe:
    """Samples a ``memory_bytes()`` callable every *interval* elements."""

    def __init__(self, subject: Callable[[], int], interval: int = 100):
        if interval < 1:
            raise ValueError("interval must be positive")
        self._subject = subject
        self.interval = interval
        self._since_sample = 0
        self.samples: List[int] = []

    def tick(self) -> None:
        """Note one element processed; sample when the interval elapses."""
        self._since_sample += 1
        if self._since_sample >= self.interval:
            self._since_sample = 0
            self.sample()

    def sample(self) -> int:
        value = self._subject()
        self.samples.append(value)
        return value

    @property
    def peak(self) -> int:
        return max(self.samples) if self.samples else 0

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0


class AppTimeLatencyProbe:
    """Application-time latency of output inserts.

    Latency of an output ``insert(p, Vs, Ve)`` is measured as the input
    frontier (largest Vs fed into the system so far) minus the event's Vs:
    how much application time passed between the event's occurrence and
    its release downstream.  A buffering strategy (Cleanse) shows latency
    on the order of event lifetimes; direct LMerge shows latency on the
    order of the disorder window — the Figure 7 latency comparison.
    """

    def __init__(self) -> None:
        self.frontier: Timestamp = MINUS_INFINITY
        self.latencies: List[float] = []

    def observe_input(self, element: Element) -> None:
        if isinstance(element, Insert) and element.vs > self.frontier:
            self.frontier = element.vs

    def observe_output(self, element: Element) -> None:
        if isinstance(element, Insert) and self.frontier != MINUS_INFINITY:
            self.latencies.append(self.frontier - element.vs)

    @property
    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    def percentile(self, q: float) -> float:
        """Ceil-based nearest-rank percentile.

        ``percentile(0.5)`` of two samples is the *lower* one (rank
        ``ceil(0.5 * 2) = 1``) and ``percentile(1.0)`` is exactly the
        maximum — the truncating ``int(q * n)`` it replaces returned the
        max for the median of a 2-sample list and only hit the true max
        through the index clamp.
        """
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = math.ceil(q * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]


def merge_stats(parts: Iterable["MergeStats"]) -> "MergeStats":
    """Fold per-shard (or per-replica) MergeStats into one report.

    The counterpart of :meth:`MergeStats.merge` for a collection — used by
    sharded plans and report scripts to aggregate statistics without
    mutating the inputs.
    """
    from repro.lmerge.base import MergeStats

    total = MergeStats()
    for part in parts:
        total.merge(part)
    return total


def wall_clock_throughput(run: Callable[[], int]) -> Tuple[float, int]:
    """Execute *run* (returning an element count) and report
    ``(elements_per_second, elements)`` by wall clock."""
    start = time.perf_counter()
    count = run()
    elapsed = time.perf_counter() - start
    if elapsed <= 0:
        return float("inf"), count
    return count / elapsed, count
