"""Index structures used by the LMerge algorithms.

The paper's R3 and R4 algorithms rely on two custom structures (Fig. 1):

* :class:`~repro.structures.in2t.In2T` — a red-black tree keyed on
  ``(Vs, payload)`` whose nodes hold one event plus a hash table mapping each
  input stream (and the output, key ``OUTPUT``) to its current Ve;
* :class:`~repro.structures.in3t.In3T` — the same top tier, but each hash
  entry holds a small ordered index of ``Ve -> count`` so multiple events
  with the same ``(Vs, payload)`` and duplicates are supported.

Both are built on :class:`~repro.structures.rbtree.RedBlackTree`, a
from-scratch CLRS-style red-black tree (no third-party ordered containers
are used anywhere in this repository).
"""

from repro.structures.rbtree import RedBlackTree, node_pool_stats
from repro.structures.pool import FreeList
from repro.structures.in2t import In2T, In2TNode, OUTPUT
from repro.structures.in3t import In3T, In3TNode
from repro.structures.spill import RunSpill
from repro.structures.sizing import (
    HASH_ENTRY_OVERHEAD,
    TREE_NODE_OVERHEAD,
    payload_bytes,
)

__all__ = [
    "RedBlackTree",
    "FreeList",
    "RunSpill",
    "node_pool_stats",
    "In2T",
    "In2TNode",
    "In3T",
    "In3TNode",
    "OUTPUT",
    "payload_bytes",
    "TREE_NODE_OVERHEAD",
    "HASH_ENTRY_OVERHEAD",
]
