"""The in2t (index-2-tier) structure for LMerge case R3 (Fig. 1, left).

Top tier: a red-black tree keyed by ``(Vs, payload)``; each node holds one
event (payload shared across all inputs) and points to a second-tier hash
table.  The hash table maps each input stream id to the current Ve that
stream has reported for this event, plus one entry under the sentinel key
:data:`OUTPUT` holding the Ve most recently placed on the output.

Reclamation (PR 8): :meth:`In2T.prune_below` bulk-retires a frozen/settled
prefix in one tree walk, recycling both the rbtree nodes and the
second-tier dicts through freelists; :meth:`In2T.enable_spill` attaches a
:class:`~repro.structures.spill.RunSpill` that evicts cold, output-agreed
runs to a durable store and faults them back in on touch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterator, List, Optional

from repro.structures.pool import FreeList
from repro.structures.rbtree import RedBlackTree
from repro.structures.sizing import (
    HASH_ENTRY_OVERHEAD,
    TIMESTAMP_BYTES,
    TREE_NODE_OVERHEAD,
    PayloadKey,
    payload_bytes,
)
from repro.temporal.event import Event, Payload
from repro.temporal.time import Timestamp

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.structures.spill import RunSpill

#: Freelist of second-tier Ve dicts: a pruned node's entries dict becomes
#: the next inserted node's, so settled churn allocates no dicts.
_ENTRY_DICTS = FreeList(dict, dict.clear)


class _Output:
    """Sentinel hash key for the output stream (the paper's key ``inf``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "OUTPUT"

    def __reduce__(self):
        # The sentinel is compared by identity (``key is not OUTPUT``), so
        # pickling must resolve back to the module singleton — index
        # snapshots round-trip through pickle in the durable state store.
        return (_restore_output, ())


#: Hash key under which each node records the Ve currently on the output.
OUTPUT = _Output()


def _restore_output() -> _Output:
    """Unpickle hook returning the module's OUTPUT singleton."""
    return OUTPUT

#: Identifier of an input stream (any hashable; typically an int).
StreamId = Hashable


class In2TNode:
    """One top-tier node: an event plus per-stream Ve entries."""

    __slots__ = ("event", "entries", "_key")

    def __init__(self, event: Event, key: tuple):
        self.event = event
        #: stream id (or OUTPUT) -> current Ve on that stream.
        self.entries: Dict[StreamId, Timestamp] = _ENTRY_DICTS.acquire()
        self._key = key

    @property
    def vs(self) -> Timestamp:
        return self.event.vs

    @property
    def payload(self) -> Payload:
        return self.event.payload

    def add_entry(self, stream: StreamId, ve: Timestamp) -> None:
        """``AddHashEntry``: record *ve* for *stream* (insert or overwrite)."""
        self.entries[stream] = ve

    def update_entry(self, stream: StreamId, ve: Timestamp) -> None:
        """``UpdateHashEntry``: overwrite the Ve recorded for *stream*."""
        self.entries[stream] = ve

    def get_entry(self, stream: StreamId) -> Optional[Timestamp]:
        """``GetHashEntry``: the Ve recorded for *stream*, or None."""
        return self.entries.get(stream)

    def remove_entry(self, stream: StreamId) -> None:
        """Drop the entry for *stream* (used when an input detaches)."""
        self.entries.pop(stream, None)

    def memory_bytes(self) -> int:
        return (
            TREE_NODE_OVERHEAD
            + payload_bytes(self.event.payload)
            + 2 * TIMESTAMP_BYTES
            + len(self.entries) * (HASH_ENTRY_OVERHEAD + TIMESTAMP_BYTES)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"In2TNode({self.event}, entries={self.entries!r})"


class In2T:
    """The two-tier merge index of Algorithm R3."""

    __slots__ = ("_tree", "_spill")

    def __init__(self) -> None:
        self._tree = RedBlackTree()
        self._spill: "Optional[RunSpill]" = None

    def __len__(self) -> int:
        """Resident node count (spilled runs excluded; see live_nodes)."""
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree) or (
            self._spill is not None and self._spill.spilled_nodes > 0
        )

    @property
    def live_nodes(self) -> int:
        """Logical node count: resident plus spilled."""
        spill = self._spill
        return len(self._tree) + (spill.spilled_nodes if spill else 0)

    @staticmethod
    def _key(vs: Timestamp, payload: Payload) -> tuple:
        return (vs, PayloadKey(payload))

    def enable_spill(self, spill: "RunSpill") -> None:
        """Attach a cold-run spill; keyed operations fault runs back in."""
        self._spill = spill

    @property
    def spill(self) -> "Optional[RunSpill]":
        return self._spill

    def find(self, vs: Timestamp, payload: Payload) -> Optional[In2TNode]:
        """``SameVsPayload``: the node for ``(vs, payload)``, or None."""
        if self._spill is not None:
            self._spill.touch(self, vs)
        return self._tree.get(self._key(vs, payload))

    def add(self, event: Event) -> In2TNode:
        """``AddNode``: create (and return) the node for *event*.

        The caller guarantees no node exists for the event's key.
        """
        if self._spill is not None:
            self._spill.touch(self, event.vs)
        key = self._key(event.vs, event.payload)
        node = In2TNode(event, key)
        created = self._tree.insert(key, node)
        if not created:
            raise KeyError(f"in2t node already exists for {event}")
        return node

    def find_or_add(self, insert) -> "tuple[In2TNode, bool]":
        """Find the node for *insert*'s key, creating it if absent.

        Returns ``(node, created)``.  One tree descent instead of the
        ``find`` + ``add`` pair (two descents) used by the per-element
        path; the event is only materialized when the node is new.  The
        argument is anything with ``vs``/``payload``/``to_event()`` — in
        practice an :class:`~repro.temporal.elements.Insert`.
        """
        if self._spill is not None:
            self._spill.touch(self, insert.vs)
        key = (insert.vs, PayloadKey(insert.payload))
        tree_node, created = self._tree.get_or_reserve(key)
        if created:
            tree_node.value = In2TNode(insert.to_event(), key)
        return tree_node.value, created

    def find_or_add_key(
        self, vs: Timestamp, payload: Payload, ve: Timestamp
    ) -> In2TNode:
        """Columnar variant of :meth:`find_or_add`: raw columns in, node out.

        One tree descent; the :class:`Event` is materialized only when the
        node is new, so a hit never allocates.  Used by the batch hot path
        that reads ``(vs, payload, ve)`` straight out of a
        :class:`~repro.engine.columnar.ColumnBatch` without ever building
        an :class:`~repro.temporal.elements.Insert`.
        """
        if self._spill is not None:
            self._spill.touch(self, vs)
        key = (vs, PayloadKey(payload))
        tree_node, created = self._tree.get_or_reserve(key)
        if created:
            tree_node.value = In2TNode(Event(vs, payload, ve), key)
        return tree_node.value

    def delete(self, node: In2TNode) -> None:
        """``DeleteNode``: remove *node* from the top tier.

        The node object (and its entries dict) is *not* recycled — the
        caller may still hold it; only :meth:`prune_below` recycles.
        """
        if not self._tree.delete(node._key):
            raise KeyError(f"in2t node not present: {node!r}")

    def prune_below(self, t: Timestamp, keep=None) -> int:
        """Bulk-retire nodes with ``Vs < t`` in one ordered walk.

        ``keep(node)`` returning True retains a node; it runs before any
        tree mutation, so it may reconcile/emit but must not touch the
        index.  Deleted nodes have their second-tier dicts recycled into
        the entry freelist (callers must not retain references to them).
        Spilled runs are deliberately *not* faulted in — the merge
        resolves them via :meth:`RunSpill.resolve_stable` first.

        Returns the number of nodes removed.
        """
        release = _ENTRY_DICTS.release

        def _recycle(node: In2TNode) -> None:
            release(node.entries)

        if keep is None:
            return self._tree.delete_below(
                (t, _KEY_FLOOR), on_delete=_recycle
            )

        def _keep(_key: tuple, node: In2TNode) -> bool:
            return keep(node)

        return self._tree.delete_below(
            (t, _KEY_FLOOR), keep=_keep, on_delete=_recycle
        )

    def half_frozen(self, t: Timestamp) -> List[In2TNode]:
        """``FindHalfFrozen``: nodes with ``Vs < t``, in key order.

        Materialized as a list so callers may delete nodes while
        processing (Algorithm R3, lines 26-27).  Faults in any spilled
        run below *t* first — every returned node is resident.
        """
        if self._spill is not None:
            self._spill.fault_in_below(self, t)
        return [node for _, node in self._tree.items_below((t, _KEY_FLOOR))]

    def nodes(self) -> Iterator[In2TNode]:
        """All *resident* nodes in ``(Vs, payload)`` order."""
        return self._tree.values()

    def memory_bytes(self) -> int:
        """Resident state bytes (spilled runs live in the store's gauge)."""
        return sum(node.memory_bytes() for node in self._tree.values())

    # -- spill record protocol (repro.structures.spill) ------------------

    @staticmethod
    def _record_key(record: tuple) -> tuple:
        return (record[0], PayloadKey(record[1]))

    def _extract_records(self, lo: Timestamp, hi: Timestamp) -> List[tuple]:
        """Remove nodes with ``lo <= Vs < hi``; return them as records."""
        pairs = self._tree.extract_range((lo, _KEY_FLOOR), (hi, _KEY_FLOOR))
        return [
            (node.vs, node.payload, node.event.ve, node.entries)
            for _, node in pairs
        ]

    def _insert_records(self, records: List[tuple]) -> None:
        """Re-materialize extracted/snapshot records (keys must be absent)."""
        for vs, payload, event_ve, entries in records:
            key = self._key(vs, payload)
            node = In2TNode(Event(vs, payload, event_ve), key)
            node.entries.update(entries)
            if not self._tree.insert(key, node):
                raise KeyError(
                    f"in2t record collides with resident node: "
                    f"({vs}, {payload!r})"
                )

    # -- durable state (repro.resilience) -------------------------------

    def snapshot(self) -> List[tuple]:
        """The whole index as plain picklable records, key-ordered.

        Each record is ``(vs, payload, event_ve, entries)``; the OUTPUT
        sentinel key inside ``entries`` survives pickling by identity
        (see :meth:`_Output.__reduce__`).  Spilled runs are merged in
        *without* faulting them back into the tree, so a snapshot is
        element-identical whether or not the spill is engaged.
        """
        records = [
            (node.vs, node.payload, node.event.ve, dict(node.entries))
            for node in self._tree.values()
        ]
        spill = self._spill
        if spill is not None and spill.has_spilled:
            records.extend(spill.peek_records())
            records.sort(key=self._record_key)
        return records

    def restore(self, records: List[tuple]) -> None:
        """Rebuild the index from a :meth:`snapshot` (replaces contents)."""
        self._tree.clear()
        if self._spill is not None:
            self._spill.clear()
        for vs, payload, event_ve, entries in records:
            node = self.add(Event(vs, payload, event_ve))
            node.entries.update(entries)


class _KeyFloor:
    """Compares below every PayloadKey; makes ``(t, _KEY_FLOOR)`` an
    exclusive bound on Vs alone."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False


_KEY_FLOOR = _KeyFloor()
