"""The in3t (index-3-tier) structure for LMerge case R4 (Fig. 1, right).

Same top tier as in2t — a red-black tree keyed on ``(Vs, payload)`` — but
under R4 many events can share a ``(Vs, payload)`` with different Ve
values, and exact duplicates may occur.  So each second-tier hash entry
holds, instead of a single Ve, a small red-black tree mapping ``Ve ->
count``.  The output's multiset is tracked under the sentinel key
:data:`~repro.structures.in2t.OUTPUT`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.structures.in2t import OUTPUT, StreamId, _KeyFloor
from repro.structures.rbtree import RedBlackTree
from repro.structures.sizing import (
    HASH_ENTRY_OVERHEAD,
    TIMESTAMP_BYTES,
    TREE_NODE_OVERHEAD,
    PayloadKey,
    payload_bytes,
)
from repro.temporal.event import Event, Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp

_KEY_FLOOR = _KeyFloor()


class In3TNode:
    """One top-tier node: per-stream multisets of Ve values.

    ``counts[stream]`` is a red-black tree of ``Ve -> count`` describing the
    multiset of events with this node's ``(Vs, payload)`` currently in that
    stream's TDB (OUTPUT for the merge output).
    """

    __slots__ = ("vs", "payload", "counts", "_key")

    def __init__(self, vs: Timestamp, payload: Payload, key: tuple):
        self.vs = vs
        self.payload = payload
        self.counts: Dict[StreamId, RedBlackTree] = {}
        self._key = key

    # -- multiset maintenance -------------------------------------------

    def increment(self, stream: StreamId, ve: Timestamp, by: int = 1) -> None:
        """``IncrementCount``: add *by* events ``<payload, vs, ve)``."""
        tier = self.counts.get(stream)
        if tier is None:
            tier = RedBlackTree()
            self.counts[stream] = tier
        tier.insert(ve, tier.get(ve, 0) + by)

    def decrement(self, stream: StreamId, ve: Timestamp, by: int = 1) -> None:
        """``DecrementCount``: remove *by* events ``<payload, vs, ve)``.

        Raises KeyError when the multiset does not contain them — that
        indicates an input violated mutual consistency.
        """
        tier = self.counts.get(stream)
        current = tier.get(ve, 0) if tier is not None else 0
        if current < by:
            raise KeyError(
                f"stream {stream!r} has {current} events "
                f"<{self.payload!r},{self.vs},{ve}); cannot remove {by}"
            )
        if current == by:
            tier.delete(ve)
        else:
            tier.insert(ve, current - by)

    # -- queries ---------------------------------------------------------

    def total_count(self, stream: StreamId) -> int:
        """``GetCount``: total events for this ``(Vs, payload)`` on *stream*."""
        tier = self.counts.get(stream)
        return sum(tier.values()) if tier is not None else 0

    def count_of(self, stream: StreamId, ve: Timestamp) -> int:
        """Events with exactly this Ve on *stream*."""
        tier = self.counts.get(stream)
        return tier.get(ve, 0) if tier is not None else 0

    def ve_counts(self, stream: StreamId) -> List[Tuple[Timestamp, int]]:
        """``FindAllVe``: ``(Ve, count)`` pairs for *stream*, Ve-ordered."""
        tier = self.counts.get(stream)
        return list(tier.items()) if tier is not None else []

    def max_ve(self, stream: StreamId) -> Timestamp:
        """``GetMaxVe``: largest Ve on *stream*, ``-inf`` when none."""
        tier = self.counts.get(stream)
        if tier is None or not tier:
            return MINUS_INFINITY
        ve, _ = tier.max_item()
        return ve

    def streams(self) -> Iterator[StreamId]:
        """Stream ids (including OUTPUT) with at least one event here."""
        for stream, tier in self.counts.items():
            if tier:
                yield stream

    def remove_stream(self, stream: StreamId) -> None:
        """Drop all state for *stream* (input detach)."""
        self.counts.pop(stream, None)

    def is_empty(self) -> bool:
        return all(not tier for tier in self.counts.values())

    def memory_bytes(self) -> int:
        total = TREE_NODE_OVERHEAD + payload_bytes(self.payload) + TIMESTAMP_BYTES
        for tier in self.counts.values():
            total += HASH_ENTRY_OVERHEAD
            total += len(tier) * (TREE_NODE_OVERHEAD + TIMESTAMP_BYTES + 8)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        counts = {
            str(stream): dict(tier.items()) for stream, tier in self.counts.items()
        }
        return f"In3TNode(vs={self.vs}, payload={self.payload!r}, counts={counts})"


class In3T:
    """The three-tier merge index of Algorithm R4."""

    __slots__ = ("_tree",)

    def __init__(self) -> None:
        self._tree = RedBlackTree()

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    @staticmethod
    def _key(vs: Timestamp, payload: Payload) -> tuple:
        return (vs, PayloadKey(payload))

    def find(self, vs: Timestamp, payload: Payload) -> Optional[In3TNode]:
        """``SameVsPayload``: the node for ``(vs, payload)``, or None."""
        return self._tree.get(self._key(vs, payload))

    def add(self, vs: Timestamp, payload: Payload) -> In3TNode:
        """``AddNode``: create (and return) the node for ``(vs, payload)``."""
        key = self._key(vs, payload)
        node = In3TNode(vs, payload, key)
        created = self._tree.insert(key, node)
        if not created:
            raise KeyError(f"in3t node already exists for ({vs}, {payload!r})")
        return node

    def find_or_add(self, event) -> In3TNode:
        """The node for *event*'s key, created if absent.

        A single tree descent via
        :meth:`~repro.structures.rbtree.RedBlackTree.get_or_insert`
        (the hot path of Algorithm R4's insert handling).  *event* is
        anything exposing ``vs`` and ``payload`` — an
        :class:`~repro.temporal.event.Event` or an
        :class:`~repro.temporal.elements.Insert`.
        """
        key = (event.vs, PayloadKey(event.payload))
        tree_node, created = self._tree.get_or_reserve(key)
        if created:
            tree_node.value = In3TNode(event.vs, event.payload, key)
        return tree_node.value

    def delete(self, node: In3TNode) -> None:
        """``Delete``: remove *node* from the top tier."""
        if not self._tree.delete(node._key):
            raise KeyError(f"in3t node not present: {node!r}")

    def half_frozen(self, t: Timestamp) -> List[In3TNode]:
        """Nodes with ``Vs < t`` in key order (materialized for deletion)."""
        return [node for _, node in self._tree.items_below((t, _KEY_FLOOR))]

    def nodes(self) -> Iterator[In3TNode]:
        return self._tree.values()

    def memory_bytes(self) -> int:
        return sum(node.memory_bytes() for node in self._tree.values())

    # -- durable state (repro.resilience) -------------------------------

    def snapshot(self) -> List[tuple]:
        """The whole index as plain picklable records, key-ordered.

        Each record is ``(vs, payload, counts)`` where ``counts`` maps
        stream id (or the OUTPUT sentinel, which pickles by identity) to
        its Ve-ordered ``(Ve, count)`` pairs.
        """
        return [
            (
                node.vs,
                node.payload,
                {
                    stream: list(tier.items())
                    for stream, tier in node.counts.items()
                },
            )
            for node in self._tree.values()
        ]

    def restore(self, records: List[tuple]) -> None:
        """Rebuild the index from a :meth:`snapshot` (replaces contents)."""
        self._tree = RedBlackTree()
        for vs, payload, counts in records:
            node = self.add(vs, payload)
            for stream, pairs in counts.items():
                tier = RedBlackTree()
                for ve, count in pairs:
                    tier.insert(ve, count)
                node.counts[stream] = tier
