"""The in3t (index-3-tier) structure for LMerge case R4 (Fig. 1, right).

Same top tier as in2t — a red-black tree keyed on ``(Vs, payload)`` — but
under R4 many events can share a ``(Vs, payload)`` with different Ve
values, and exact duplicates may occur.  So each second-tier hash entry
holds, instead of a single Ve, a small red-black tree mapping ``Ve ->
count``.  The output's multiset is tracked under the sentinel key
:data:`~repro.structures.in2t.OUTPUT`.

Reclamation (PR 8): :meth:`In3T.prune_below` bulk-retires a settled
prefix in one tree walk, recycling the counts dicts and Ve-tier trees
through freelists; :meth:`In3T.enable_spill` attaches a
:class:`~repro.structures.spill.RunSpill` for cold, output-agreed runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.structures.in2t import OUTPUT, StreamId, _KeyFloor
from repro.structures.pool import FreeList
from repro.structures.rbtree import RedBlackTree
from repro.structures.sizing import (
    HASH_ENTRY_OVERHEAD,
    TIMESTAMP_BYTES,
    TREE_NODE_OVERHEAD,
    PayloadKey,
    payload_bytes,
)
from repro.temporal.event import Event, Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.structures.spill import RunSpill

_KEY_FLOOR = _KeyFloor()

#: Freelist of second-tier counts dicts (stream id -> Ve tier).
_COUNT_DICTS = FreeList(dict, dict.clear)
#: Freelist of third-tier Ve -> count trees; clearing one also returns its
#: rbtree nodes to the shared node pool.
_VE_TIERS = FreeList(RedBlackTree, RedBlackTree.clear)


class In3TNode:
    """One top-tier node: per-stream multisets of Ve values.

    ``counts[stream]`` is a red-black tree of ``Ve -> count`` describing the
    multiset of events with this node's ``(Vs, payload)`` currently in that
    stream's TDB (OUTPUT for the merge output).
    """

    __slots__ = ("vs", "payload", "counts", "_key")

    def __init__(self, vs: Timestamp, payload: Payload, key: tuple):
        self.vs = vs
        self.payload = payload
        self.counts: Dict[StreamId, RedBlackTree] = _COUNT_DICTS.acquire()
        self._key = key

    # -- multiset maintenance -------------------------------------------

    def increment(self, stream: StreamId, ve: Timestamp, by: int = 1) -> None:
        """``IncrementCount``: add *by* events ``<payload, vs, ve)``."""
        tier = self.counts.get(stream)
        if tier is None:
            tier = _VE_TIERS.acquire()
            self.counts[stream] = tier
        tier.insert(ve, tier.get(ve, 0) + by)

    def decrement(self, stream: StreamId, ve: Timestamp, by: int = 1) -> None:
        """``DecrementCount``: remove *by* events ``<payload, vs, ve)``.

        Raises KeyError when the multiset does not contain them — that
        indicates an input violated mutual consistency.
        """
        tier = self.counts.get(stream)
        current = tier.get(ve, 0) if tier is not None else 0
        if current < by:
            raise KeyError(
                f"stream {stream!r} has {current} events "
                f"<{self.payload!r},{self.vs},{ve}); cannot remove {by}"
            )
        if current == by:
            tier.delete(ve)
        else:
            tier.insert(ve, current - by)

    # -- queries ---------------------------------------------------------

    def total_count(self, stream: StreamId) -> int:
        """``GetCount``: total events for this ``(Vs, payload)`` on *stream*."""
        tier = self.counts.get(stream)
        return sum(tier.values()) if tier is not None else 0

    def count_of(self, stream: StreamId, ve: Timestamp) -> int:
        """Events with exactly this Ve on *stream*."""
        tier = self.counts.get(stream)
        return tier.get(ve, 0) if tier is not None else 0

    def ve_counts(self, stream: StreamId) -> List[Tuple[Timestamp, int]]:
        """``FindAllVe``: ``(Ve, count)`` pairs for *stream*, Ve-ordered."""
        tier = self.counts.get(stream)
        return list(tier.items()) if tier is not None else []

    def max_ve(self, stream: StreamId) -> Timestamp:
        """``GetMaxVe``: largest Ve on *stream*, ``-inf`` when none."""
        tier = self.counts.get(stream)
        if tier is None or not tier:
            return MINUS_INFINITY
        ve, _ = tier.max_item()
        return ve

    def streams(self) -> Iterator[StreamId]:
        """Stream ids (including OUTPUT) with at least one event here."""
        for stream, tier in self.counts.items():
            if tier:
                yield stream

    def remove_stream(self, stream: StreamId) -> None:
        """Drop all state for *stream* (input detach)."""
        self.counts.pop(stream, None)

    def is_empty(self) -> bool:
        return all(not tier for tier in self.counts.values())

    def memory_bytes(self) -> int:
        total = TREE_NODE_OVERHEAD + payload_bytes(self.payload) + TIMESTAMP_BYTES
        for tier in self.counts.values():
            total += HASH_ENTRY_OVERHEAD
            total += len(tier) * (TREE_NODE_OVERHEAD + TIMESTAMP_BYTES + 8)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        counts = {
            str(stream): dict(tier.items()) for stream, tier in self.counts.items()
        }
        return f"In3TNode(vs={self.vs}, payload={self.payload!r}, counts={counts})"


class In3T:
    """The three-tier merge index of Algorithm R4."""

    __slots__ = ("_tree", "_spill")

    def __init__(self) -> None:
        self._tree = RedBlackTree()
        self._spill: "Optional[RunSpill]" = None

    def __len__(self) -> int:
        """Resident node count (spilled runs excluded; see live_nodes)."""
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree) or (
            self._spill is not None and self._spill.spilled_nodes > 0
        )

    @property
    def live_nodes(self) -> int:
        """Logical node count: resident plus spilled."""
        spill = self._spill
        return len(self._tree) + (spill.spilled_nodes if spill else 0)

    @staticmethod
    def _key(vs: Timestamp, payload: Payload) -> tuple:
        return (vs, PayloadKey(payload))

    def enable_spill(self, spill: "RunSpill") -> None:
        """Attach a cold-run spill; keyed operations fault runs back in."""
        self._spill = spill

    @property
    def spill(self) -> "Optional[RunSpill]":
        return self._spill

    def find(self, vs: Timestamp, payload: Payload) -> Optional[In3TNode]:
        """``SameVsPayload``: the node for ``(vs, payload)``, or None."""
        if self._spill is not None:
            self._spill.touch(self, vs)
        return self._tree.get(self._key(vs, payload))

    def add(self, vs: Timestamp, payload: Payload) -> In3TNode:
        """``AddNode``: create (and return) the node for ``(vs, payload)``."""
        if self._spill is not None:
            self._spill.touch(self, vs)
        key = self._key(vs, payload)
        node = In3TNode(vs, payload, key)
        created = self._tree.insert(key, node)
        if not created:
            raise KeyError(f"in3t node already exists for ({vs}, {payload!r})")
        return node

    def find_or_add(self, event) -> In3TNode:
        """The node for *event*'s key, created if absent.

        A single tree descent via
        :meth:`~repro.structures.rbtree.RedBlackTree.get_or_insert`
        (the hot path of Algorithm R4's insert handling).  *event* is
        anything exposing ``vs`` and ``payload`` — an
        :class:`~repro.temporal.event.Event` or an
        :class:`~repro.temporal.elements.Insert`.
        """
        if self._spill is not None:
            self._spill.touch(self, event.vs)
        key = (event.vs, PayloadKey(event.payload))
        tree_node, created = self._tree.get_or_reserve(key)
        if created:
            tree_node.value = In3TNode(event.vs, event.payload, key)
        return tree_node.value

    def delete(self, node: In3TNode) -> None:
        """``Delete``: remove *node* from the top tier.

        The node object (and its tiers) is *not* recycled — the caller
        may still hold it; only :meth:`prune_below` recycles.
        """
        if not self._tree.delete(node._key):
            raise KeyError(f"in3t node not present: {node!r}")

    def prune_below(self, t: Timestamp, keep=None) -> int:
        """Bulk-retire nodes with ``Vs < t`` in one ordered walk.

        ``keep(node)`` returning True retains a node; it runs before any
        tree mutation, so it may reconcile/emit but must not touch the
        index.  Deleted nodes return their Ve tiers and counts dicts to
        the freelists (callers must not retain references to them).

        Returns the number of nodes removed.
        """
        release_dict = _COUNT_DICTS.release
        release_tier = _VE_TIERS.release

        def _recycle(node: In3TNode) -> None:
            for tier in node.counts.values():
                release_tier(tier)
            release_dict(node.counts)

        if keep is None:
            return self._tree.delete_below(
                (t, _KEY_FLOOR), on_delete=_recycle
            )

        def _keep(_key: tuple, node: In3TNode) -> bool:
            return keep(node)

        return self._tree.delete_below(
            (t, _KEY_FLOOR), keep=_keep, on_delete=_recycle
        )

    def half_frozen(self, t: Timestamp) -> List[In3TNode]:
        """Nodes with ``Vs < t`` in key order (materialized for deletion).

        Faults in any spilled run below *t* first — every returned node
        is resident.
        """
        if self._spill is not None:
            self._spill.fault_in_below(self, t)
        return [node for _, node in self._tree.items_below((t, _KEY_FLOOR))]

    def nodes(self) -> Iterator[In3TNode]:
        """All *resident* nodes in ``(Vs, payload)`` order."""
        return self._tree.values()

    def memory_bytes(self) -> int:
        """Resident state bytes (spilled runs live in the store's gauge)."""
        return sum(node.memory_bytes() for node in self._tree.values())

    # -- spill record protocol (repro.structures.spill) ------------------

    @staticmethod
    def _record_key(record: tuple) -> tuple:
        return (record[0], PayloadKey(record[1]))

    @staticmethod
    def _to_record(node: In3TNode) -> tuple:
        return (
            node.vs,
            node.payload,
            {
                stream: list(tier.items())
                for stream, tier in node.counts.items()
            },
        )

    def _extract_records(self, lo: Timestamp, hi: Timestamp) -> List[tuple]:
        """Remove nodes with ``lo <= Vs < hi``; return them as records.

        The extracted nodes' tiers and counts dicts go back to the
        freelists — the records carry plain lists/dicts instead.
        """
        pairs = self._tree.extract_range((lo, _KEY_FLOOR), (hi, _KEY_FLOOR))
        records = []
        for _, node in pairs:
            records.append(self._to_record(node))
            for tier in node.counts.values():
                _VE_TIERS.release(tier)
            _COUNT_DICTS.release(node.counts)
        return records

    def _insert_records(self, records: List[tuple]) -> None:
        """Re-materialize extracted/snapshot records (keys must be absent)."""
        for vs, payload, counts in records:
            key = self._key(vs, payload)
            node = In3TNode(vs, payload, key)
            for stream, pairs in counts.items():
                tier = _VE_TIERS.acquire()
                for ve, count in pairs:
                    tier.insert(ve, count)
                node.counts[stream] = tier
            if not self._tree.insert(key, node):
                raise KeyError(
                    f"in3t record collides with resident node: "
                    f"({vs}, {payload!r})"
                )

    # -- durable state (repro.resilience) -------------------------------

    def snapshot(self) -> List[tuple]:
        """The whole index as plain picklable records, key-ordered.

        Each record is ``(vs, payload, counts)`` where ``counts`` maps
        stream id (or the OUTPUT sentinel, which pickles by identity) to
        its Ve-ordered ``(Ve, count)`` pairs.  Spilled runs are merged in
        without faulting them back into the tree.
        """
        records = [self._to_record(node) for node in self._tree.values()]
        spill = self._spill
        if spill is not None and spill.has_spilled:
            records.extend(spill.peek_records())
            records.sort(key=self._record_key)
        return records

    def restore(self, records: List[tuple]) -> None:
        """Rebuild the index from a :meth:`snapshot` (replaces contents)."""
        self._tree.clear()
        if self._spill is not None:
            self._spill.clear()
        self._insert_records(records)
