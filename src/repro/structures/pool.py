"""Bounded freelists for the merge-index second tiers.

The rbtree keeps its own node pool (:data:`repro.structures.rbtree.NODE_POOL`
— nodes need key/value/color re-initialization, so they get a specialized
pool).  This module provides the generic counterpart for the *container*
objects hanging off index nodes: the per-stream Ve dict of an in2t node,
and the counts dict / Ve-tier trees of an in3t node.  Together with node
pooling, pruning a settled run returns every object it held to a freelist,
so steady-state merging (insert rate == reclaim rate) allocates ~zero
objects per settled event.

Freelists are module-level and shared across merges; ``list.append`` /
``list.pop`` are single bytecodes, so sharing between threads is safe
under the GIL (a race can overshoot the cap by an object, nothing worse).

Recycling contract: an object may only be released when the index owns the
last reference — the prune/evict paths qualify, public ``delete`` does not
(callers may still hold the node) and deliberately skips recycling.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class FreeList:
    """A capped freelist over ``factory()``-made objects.

    ``reset(obj)`` (when given) restores a released object to its pristine
    state before it is pooled; objects past the cap are dropped to the
    garbage collector.
    """

    __slots__ = ("_factory", "_reset", "_free", "limit",
                 "allocated", "reused", "released")

    def __init__(
        self,
        factory: Callable[[], Any],
        reset: Optional[Callable[[Any], None]] = None,
        limit: int = 65536,
    ):
        self._factory = factory
        self._reset = reset
        self._free: List[Any] = []
        self.limit = limit
        #: Objects constructed because the freelist was empty.
        self.allocated = 0
        #: Objects served from the freelist instead of the allocator.
        self.reused = 0
        #: Objects returned to the freelist (drops past the cap excluded).
        self.released = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> Any:
        try:
            obj = self._free.pop()
        except IndexError:
            self.allocated += 1
            return self._factory()
        self.reused += 1
        return obj

    def release(self, obj: Any) -> None:
        if len(self._free) >= self.limit:
            return
        if self._reset is not None:
            self._reset(obj)
        self.released += 1
        self._free.append(obj)

    def drain(self) -> None:
        """Drop every pooled object (tests use this to isolate counters)."""
        self._free.clear()

    def stats(self) -> dict:
        return {
            "free": len(self._free),
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
        }
