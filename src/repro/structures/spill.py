"""Cold-run spill for the in2t/in3t merge indexes (PR 8, tentpole part 3).

Settled-prefix pruning (see :mod:`repro.lmerge.reclaim`) reclaims keys
every attached input has agreed on.  What it cannot reclaim is the *lag
window*: keys the leader has delivered and the output carries, but a
trailing replica has not confirmed yet.  On R3/R4 workloads with long
out-of-order tails that window is exactly the working set that blows past
RAM — and it is cold: nothing touches those nodes until the laggard
replays them or a stable() passes their Ve.

:class:`RunSpill` evicts such runs to the PR 7
:class:`~repro.resilience.store.StateStore`.  A *run* is the bucket of
index nodes with ``run_id = floor(Vs / run_width)``; a run qualifies for
eviction only when every node in it is **output-agreed** — each per-stream
Ve entry equals the OUTPUT entry — because then the per-run summary
``(count, min_ve, max_ve, covered_streams)`` is enough to answer the next
stable() without deserializing:

* ``stable(t)`` from a covered stream with ``min_ve >= t`` is a no-op for
  the whole run (every entry equals OUTPUT and stays unfrozen);
* ``stable(t)`` from a covered stream with ``max_ve < t`` retires the
  whole run silently (the seed path would emit nothing: input and output
  already agree, the keys die fully frozen) — the run is dropped from the
  store without ever faulting in;
* anything else — an uncovered freezing stream (which may cancel keys it
  never produced), or a run straddling ``t`` — faults the run back in and
  takes the exact seed reconciliation path.

Inserts/adjusts/lookups that touch a spilled key fault its run back in
first (``touch``), so merge behaviour is unchanged; the eviction policy
keeps the ``hot_runs`` most-recently-faulted candidate runs resident (an
LRU over run ids) and spills the rest.

Snapshots remain element-identical: the index merges spilled records into
``snapshot()`` without faulting them in, and ``restore()`` clears the
spill namespace via the store's prefix scan (robust even when a crash
lost this object's in-memory metadata).
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import tempfile
import weakref
from typing import Any, Dict, List, Optional, Tuple

#: Per-run metadata: (node count, min settle-Ve, max settle-Ve, covered
#: stream ids).  "Settle-Ve" is the OUTPUT Ve of an in2t node / the max
#: OUTPUT Ve of an in3t node — the timestamp at which a stable() silently
#: retires the node.  ``covered`` holds every stream id with an entry on
#: *all* nodes of the run (runs are only spilled when those entries agree
#: with OUTPUT).
RunMeta = Tuple[int, Any, Any, frozenset]


class RunSpill:
    """Evict cold, output-agreed index runs to a durable StateStore."""

    def __init__(
        self,
        store=None,
        *,
        run_width: float = 1024.0,
        hot_runs: int = 4,
        prefix: str = "lmerge",
        directory: Optional[str] = None,
    ):
        if run_width <= 0:
            raise ValueError(f"run_width must be positive, got {run_width}")
        if hot_runs < 0:
            raise ValueError(f"hot_runs must be >= 0, got {hot_runs}")
        self.run_width = run_width
        self.hot_runs = hot_runs
        self._prefix = f"{prefix}:run:"
        self._owned_dir: Optional[str] = None
        if store is None:
            from repro.resilience.store import StateStore  # lazy: avoid cycle

            if directory is None:
                directory = tempfile.mkdtemp(prefix="repro-spill-")
                self._owned_dir = directory
                # The store only appends; reclaim the scratch directory
                # when the spill (and therefore its merge) is collected.
                self._cleanup = weakref.finalize(
                    self, shutil.rmtree, directory, True
                )
            else:
                os.makedirs(directory, exist_ok=True)
            store = StateStore(directory, name=f"{prefix}-spill")
        self._store = store
        self._meta: Dict[int, RunMeta] = {}
        self._touched: Dict[int, int] = {}
        self._clock = 0
        #: Runs written to the store over this spill's lifetime.
        self.spilled_runs_total = 0
        #: Runs deserialized back into the index (touch or stable).
        self.faulted_runs_total = 0
        #: Runs retired directly from the store (fully frozen, agreed).
        self.dropped_runs_total = 0
        #: Nodes inside runs currently resident in the store.
        self.spilled_nodes = 0
        #: Bytes of pickled records currently resident in the store.
        self.spilled_bytes = 0

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------

    def run_of(self, vs) -> Optional[int]:
        """The run bucket of *vs*; None for non-finite timestamps."""
        if isinstance(vs, float) and not math.isfinite(vs):
            return None
        return int(vs // self.run_width)

    def run_bounds(self, run: int) -> Tuple[float, float]:
        width = self.run_width
        return run * width, (run + 1) * width

    def _key(self, run: int) -> bytes:
        return f"{self._prefix}{run}".encode()

    @property
    def has_spilled(self) -> bool:
        return bool(self._meta)

    @property
    def spilled_run_ids(self) -> List[int]:
        return sorted(self._meta)

    # ------------------------------------------------------------------
    # Fault-in
    # ------------------------------------------------------------------

    def touch(self, index, vs) -> None:
        """Fault the run holding *vs* back in if it is spilled.

        Called by the index at the top of every keyed operation; a miss
        is one dict lookup.
        """
        run = self.run_of(vs)
        if run is not None and run in self._meta:
            self._fault(index, run)

    def fault_in_below(self, index, bound) -> int:
        """Fault in every spilled run intersecting ``Vs < bound``."""
        width = self.run_width
        doomed = [run for run in self._meta if run * width < bound]
        for run in sorted(doomed):
            self._fault(index, run)
        return len(doomed)

    def fault_in_all(self, index) -> int:
        return self.fault_in_below(index, math.inf)

    def _fault(self, index, run: int) -> None:
        key = self._key(run)
        raw = self._store.get(key)
        count, _, _, _ = self._meta.pop(run)
        self._store.delete(key)
        self.spilled_nodes -= count
        if raw is not None:
            self.spilled_bytes -= len(raw)
            index._insert_records(pickle.loads(raw))
        self.faulted_runs_total += 1
        self._clock += 1
        self._touched[run] = self._clock

    # ------------------------------------------------------------------
    # Stable-time resolution
    # ------------------------------------------------------------------

    def resolve_stable(self, index, t, stream_id) -> int:
        """Prepare spilled runs for a ``stable(t)`` from *stream_id*.

        Runs entirely above *t* are untouched.  For the rest: covered,
        fully-frozen runs are dropped from the store (returning the node
        count reclaimed — the seed path would delete those nodes without
        emitting anything); covered, fully-unfrozen runs stay spilled (the
        reconciliation is a no-op for them); everything else faults in so
        the merge's walk sees the exact seed state.
        """
        width = self.run_width
        reclaimed = 0
        for run in sorted(r for r in self._meta if r * width < t):
            count, min_ve, max_ve, covered = self._meta[run]
            if stream_id in covered:
                if not (min_ve < t):
                    continue  # entirely unfrozen: reconcile is a no-op
                if max_ve < t:
                    self._drop(run)
                    reclaimed += count
                    continue
            self._fault(index, run)
        return reclaimed

    def _drop(self, run: int) -> None:
        key = self._key(run)
        raw = self._store.get(key)
        count, _, _, _ = self._meta.pop(run)
        self._store.delete(key)
        self._touched.pop(run, None)
        self.spilled_nodes -= count
        if raw is not None:
            self.spilled_bytes -= len(raw)
        self.dropped_runs_total += 1

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def evict(self, index, candidates: Dict[int, Optional[list]]) -> int:
        """Spill qualifying cold runs, keeping an LRU of ``hot_runs``.

        *candidates* maps run id -> ``[min_ve, max_ve, covered_set]``
        gathered by the merge during its reconciliation walk (None marks a
        run poisoned by a non-agreed node).  Runs already spilled are not
        candidates (their nodes were not resident to walk).  Returns the
        number of runs written.
        """
        eligible = [run for run, meta in candidates.items() if meta is not None]
        if len(eligible) <= self.hot_runs:
            return 0
        touched = self._touched
        eligible.sort(key=lambda run: (touched.get(run, 0), run))
        spilled = 0
        for run in eligible[: len(eligible) - self.hot_runs]:
            min_ve, max_ve, covered = candidates[run]
            lo, hi = self.run_bounds(run)
            records = index._extract_records(lo, hi)
            if not records:
                continue
            raw = pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)
            self._store.put(self._key(run), raw)
            self._meta[run] = (
                len(records), min_ve, max_ve, frozenset(covered)
            )
            self.spilled_nodes += len(records)
            self.spilled_bytes += len(raw)
            self.spilled_runs_total += 1
            spilled += 1
        if spilled:
            self._store.maybe_compact()
        return spilled

    # ------------------------------------------------------------------
    # Snapshot / restore support
    # ------------------------------------------------------------------

    def peek_records(self) -> List[tuple]:
        """Every spilled record, without faulting anything in.

        The index merges these into ``snapshot()`` so durable state stays
        element-identical whether or not runs are spilled at capture time.
        """
        records: List[tuple] = []
        for run in sorted(self._meta):
            raw = self._store.get(self._key(run))
            if raw is not None:
                records.extend(pickle.loads(raw))
        return records

    def clear(self) -> None:
        """Forget all spilled runs and delete them from the store.

        Uses the store's prefix scan rather than ``self._meta`` so a
        restore into a fresh process also clears runs spilled by a
        previous incarnation sharing the directory.
        """
        for key in self._store.keys_with_prefix(self._prefix):
            self._store.delete(key)
        self._meta.clear()
        self._touched.clear()
        self._clock = 0
        self.spilled_nodes = 0
        self.spilled_bytes = 0

    def close(self) -> None:
        self._store.close()
        if self._owned_dir is not None:
            self._cleanup()

    def stats(self) -> dict:
        return {
            "spilled_runs_total": self.spilled_runs_total,
            "faulted_runs_total": self.faulted_runs_total,
            "dropped_runs_total": self.dropped_runs_total,
            "resident_spilled_runs": len(self._meta),
            "spilled_nodes": self.spilled_nodes,
            "spilled_bytes": self.spilled_bytes,
        }
