"""A CLRS-style red-black tree.

Implemented from scratch because the in2t/in3t merge indexes (Fig. 1 of the
paper) are specified over red-black trees and no third-party ordered
container is assumed.  Supports insert, delete, exact lookup, ordered
iteration, and bounded iteration (``items_below`` drives the
``FindHalfFrozen`` scans in algorithms R3/R4).

Keys must be mutually orderable; values are arbitrary.  Duplicate keys are
not stored — inserting an existing key replaces its value (callers that
need multiplicity, like in3t's Ve tier, store counts as values).

Node allocation is routed through a module-level freelist
(:data:`NODE_POOL`): every node detached by ``delete``/``delete_below``/
``extract_range``/``clear`` is recycled into the next insert, so
steady-state merging — where the settled-prefix pruning of PR 8 retires
nodes at the same rate inserts create them — allocates no node objects at
all.  Lint rule REP108 enforces that structures code never constructs a
bare ``_Node`` outside this module.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

RED = True
BLACK = False


class _Node:
    """A tree node.  ``_NIL`` is the shared black sentinel leaf."""

    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any, color: bool):
        self.key = key
        self.value = value
        self.color = color
        self.left: "_Node" = _NIL
        self.right: "_Node" = _NIL
        self.parent: "_Node" = _NIL

    def __repr__(self) -> str:  # pragma: no cover
        colour = "R" if self.color == RED else "B"
        return f"_Node({self.key!r}, {colour})"


class _Sentinel(_Node):
    """The NIL leaf: always black, self-parented, compares as empty."""

    def __init__(self) -> None:  # noqa: D401 - trivial
        self.key = None
        self.value = None
        self.color = BLACK
        self.left = self
        self.right = self
        self.parent = self

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return "NIL"


_NIL = _Sentinel.__new__(_Sentinel)
_Sentinel.__init__(_NIL)


class _NodePool:
    """Freelist of detached ``_Node`` objects.

    ``acquire`` pops a recycled node (or constructs one when the list is
    empty); ``release`` clears a detached node's references and pushes it
    back, capped at ``limit`` so a transient spike cannot pin memory
    forever.  The list operations are single bytecode appends/pops, so the
    pool is safe to share between threads under the GIL; at worst a race
    overshoots the cap by a node or two.
    """

    __slots__ = ("_free", "limit", "allocated", "reused", "released")

    def __init__(self, limit: int = 65536):
        self._free: List[_Node] = []
        self.limit = limit
        #: Nodes constructed because the freelist was empty.
        self.allocated = 0
        #: Nodes served from the freelist instead of the allocator.
        self.reused = 0
        #: Nodes returned to the freelist (drops past the cap excluded).
        self.released = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, key: Any, value: Any, color: bool) -> _Node:
        try:
            node = self._free.pop()
        except IndexError:
            self.allocated += 1
            return _Node(key, value, color)
        self.reused += 1
        node.key = key
        node.value = value
        node.color = color
        node.left = _NIL
        node.right = _NIL
        node.parent = _NIL
        return node

    def release(self, node: _Node) -> None:
        if len(self._free) >= self.limit:
            return
        node.key = None
        node.value = None
        node.left = _NIL
        node.right = _NIL
        node.parent = _NIL
        self.released += 1
        self._free.append(node)

    def drain(self) -> None:
        """Drop every pooled node (tests use this to isolate counters)."""
        self._free.clear()

    def stats(self) -> dict:
        return {
            "free": len(self._free),
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
        }


#: The process-wide node freelist shared by every RedBlackTree.
NODE_POOL = _NodePool()


def node_pool_stats() -> dict:
    """Allocation/reuse counters of the shared node pool (JSON-clean)."""
    return NODE_POOL.stats()


class RedBlackTree:
    """An ordered map on a red-black tree.

    >>> tree = RedBlackTree()
    >>> for k in [5, 1, 9]:
    ...     tree.insert(k, str(k))
    >>> [k for k, _ in tree.items()]
    [1, 5, 9]
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: _Node = _NIL
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not _NIL

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _find(self, key: Any) -> _Node:
        node = self._root
        while node is not _NIL:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return _NIL

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under *key*, or *default*."""
        node = self._find(key)
        return default if node is _NIL else node.value

    def min_item(self) -> Tuple[Any, Any]:
        """The smallest ``(key, value)``; raises KeyError when empty."""
        if self._root is _NIL:
            raise KeyError("min of empty tree")
        node = self._minimum(self._root)
        return node.key, node.value

    def max_item(self) -> Tuple[Any, Any]:
        """The largest ``(key, value)``; raises KeyError when empty."""
        if self._root is _NIL:
            raise KeyError("max of empty tree")
        node = self._root
        while node.right is not _NIL:
            node = node.right
        return node.key, node.value

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order iteration over ``(key, value)`` pairs.

        Iterative (explicit stack) so deep trees cannot hit the recursion
        limit; mutation during iteration is not supported.
        """
        stack: List[_Node] = []
        node = self._root
        while stack or node is not _NIL:
            while node is not _NIL:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        return (k for k, _ in self.items())

    def values(self) -> Iterator[Any]:
        return (v for _, v in self.items())

    def items_below(self, bound: Any, inclusive: bool = False) -> Iterator[Tuple[Any, Any]]:
        """In-order ``(key, value)`` pairs with ``key < bound``.

        With ``inclusive=True``, ``key <= bound``.  This is the
        ``FindHalfFrozen(t)`` scan of algorithms R3/R4: in-order traversal
        that stops at the first key past the bound, so cost is proportional
        to the affected prefix (plus one root-to-leaf path).
        """
        stack: List[_Node] = []
        node = self._root
        while stack or node is not _NIL:
            while node is not _NIL:
                stack.append(node)
                node = node.left
            node = stack.pop()
            if node.key < bound or (inclusive and not (bound < node.key)):
                yield node.key, node.value
                node = node.right
            else:
                return

    def _range_nodes(self, lo: Any, hi: Any) -> Iterator[_Node]:
        """Nodes with ``lo <= key < hi`` in order (``lo=None`` = no floor,
        ``hi=None`` = no ceiling).

        The descent skips subtrees entirely below *lo*, so cost is
        O(lg n + k) for k yielded nodes.  The tree must not be mutated
        while the iterator is live — callers materialize first.
        """
        stack: List[_Node] = []
        node = self._root
        while node is not _NIL:
            if lo is not None and node.key < lo:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            if hi is not None and not (node.key < hi):
                return
            yield node
            node = node.right
            while node is not _NIL:
                if lo is not None and node.key < lo:
                    node = node.right
                else:
                    stack.append(node)
                    node = node.left

    def items_between(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        """In-order ``(key, value)`` pairs with ``lo <= key < hi``."""
        return ((n.key, n.value) for n in self._range_nodes(lo, hi))

    # ------------------------------------------------------------------
    # Bulk range deletion (PR 8: CTI-driven settled-run reclamation)
    # ------------------------------------------------------------------

    def delete_below(
        self,
        bound: Any,
        keep: Optional[Callable[[Any, Any], bool]] = None,
        on_delete: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Bulk-delete every entry with ``key < bound``; returns the count.

        One in-order walk over the doomed prefix collects the condemned
        node objects, then each is unlinked directly by node pointer — no
        per-key root-to-leaf search, so reclaiming k settled keys costs
        O(lg n + k) walk steps plus amortized O(1) fixups per unlink,
        versus k full ``delete(key)`` descents.

        ``keep(key, value)`` (called during the walk, before any
        mutation) returning True retains an entry — this is where the
        merge's reconciliation/settlement predicate runs; it may mutate
        values and emit output but must not touch the tree.
        ``on_delete(value)`` is called once per removed entry after it is
        unlinked (the hook that lets in2t/in3t recycle second-tier
        containers); it must not mutate the tree either.
        """
        doomed: List[_Node] = []
        for node in self._range_nodes(None, bound):
            if keep is None or not keep(node.key, node.value):
                doomed.append(node)
        for node in doomed:
            value = node.value
            self._delete_node(node)
            if on_delete is not None:
                on_delete(value)
        return len(doomed)

    def extract_range(self, lo: Any, hi: Any) -> List[Tuple[Any, Any]]:
        """Remove and return all ``(key, value)`` with ``lo <= key < hi``.

        Same collect-then-unlink discipline as :meth:`delete_below`; the
        pairs come back in key order.  This is the eviction primitive of
        the cold-run spill: a run's nodes leave the tree in one walk.
        """
        doomed = list(self._range_nodes(lo, hi))
        pairs = [(node.key, node.value) for node in doomed]
        for node in doomed:
            self._delete_node(node)
        return pairs

    def clear(self) -> None:
        """Detach every node, recycling all of them into the pool."""
        stack: List[_Node] = []
        if self._root is not _NIL:
            stack.append(self._root)
        release = NODE_POOL.release
        while stack:
            node = stack.pop()
            left, right = node.left, node.right
            if left is not _NIL:
                stack.append(left)
            if right is not _NIL:
                stack.append(right)
            release(node)
        self._root = _NIL
        self._size = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> bool:
        """Insert ``key -> value``; returns True when the key was new.

        An existing key has its value replaced (size unchanged).
        """
        parent = _NIL
        node = self._root
        while node is not _NIL:
            parent = node
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                node.value = value
                return False
        fresh = NODE_POOL.acquire(key, value, RED)
        fresh.parent = parent
        if parent is _NIL:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        return True

    def get_or_insert(self, key: Any, factory: Any) -> Tuple[Any, bool]:
        """Return ``(value, inserted)`` for *key*, creating it if absent.

        A single root-to-leaf descent serves both the lookup and the
        insertion — the batched merge paths use this in place of a
        ``get`` followed by ``insert``, which would descend twice.  When
        *key* is absent, ``factory()`` supplies the new value and the
        second element of the result is True; an existing key keeps its
        current value (factory is not called).
        """
        node, created = self.get_or_reserve(key)
        if created:
            node.value = factory()
        return node.value, created

    def get_or_reserve(self, key: Any) -> Tuple[_Node, bool]:
        """The node for *key*, inserted with a ``None`` value if absent.

        Returns ``(node, created)``; when *created*, the caller must set
        ``node.value`` before the next tree operation.  This is the
        zero-allocation core of :meth:`get_or_insert` — the hottest merge
        paths use it directly to avoid building a factory closure per
        element.
        """
        parent = _NIL
        node = self._root
        while node is not _NIL:
            parent = node
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node, False
        fresh = NODE_POOL.acquire(key, None, RED)
        fresh.parent = parent
        if parent is _NIL:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        return fresh, True

    def _insert_fixup(self, node: _Node) -> None:
        while node.parent.color == RED:
            parent = node.parent
            grand = parent.parent
            if parent is grand.left:
                uncle = grand.right
                if uncle.color == RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    node = grand
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                        parent = node.parent
                        grand = parent.parent
                    parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle.color == RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    node = grand
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                        parent = node.parent
                        grand = parent.parent
                    parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        self._root.color = BLACK

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove *key*; returns True when it was present."""
        node = self._find(key)
        if node is _NIL:
            return False
        self._delete_node(node)
        return True

    def pop(self, key: Any, default: Any = ...) -> Any:
        """Remove *key* and return its value; KeyError if absent (no default)."""
        node = self._find(key)
        if node is _NIL:
            if default is ...:
                raise KeyError(key)
            return default
        value = node.value
        self._delete_node(node)
        return value

    def _delete_node(self, node: _Node) -> None:
        removed_color = node.color
        if node.left is _NIL:
            fixup_at = node.right
            self._transplant(node, node.right)
        elif node.right is _NIL:
            fixup_at = node.left
            self._transplant(node, node.left)
        else:
            successor = self._minimum(node.right)
            removed_color = successor.color
            fixup_at = successor.right
            if successor.parent is node:
                # fixup_at may be _NIL; its parent pointer must still lead
                # back into the tree for the fixup walk.
                fixup_at.parent = successor
            else:
                self._transplant(successor, successor.right)
                successor.right = node.right
                successor.right.parent = successor
            self._transplant(node, successor)
            successor.left = node.left
            successor.left.parent = successor
            successor.color = node.color
        self._size -= 1
        if removed_color == BLACK:
            self._delete_fixup(fixup_at)
        _NIL.parent = _NIL  # undo any temporary sentinel wiring
        # The detached object is always *node* (in the two-child case the
        # successor was relocated into its place); recycle it.
        NODE_POOL.release(node)

    def _transplant(self, old: _Node, new: _Node) -> None:
        if old.parent is _NIL:
            self._root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        new.parent = old.parent

    def _delete_fixup(self, node: _Node) -> None:
        while node is not self._root and node.color == BLACK:
            parent = node.parent
            if node is parent.left:
                sibling = parent.right
                if sibling.color == RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    sibling = parent.right
                if sibling.left.color == BLACK and sibling.right.color == BLACK:
                    sibling.color = RED
                    node = parent
                else:
                    if sibling.right.color == BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = parent.right
                    sibling.color = parent.color
                    parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(parent)
                    node = self._root
            else:
                sibling = parent.left
                if sibling.color == RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    sibling = parent.left
                if sibling.right.color == BLACK and sibling.left.color == BLACK:
                    sibling.color = RED
                    node = parent
                else:
                    if sibling.left.color == BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = parent.left
                    sibling.color = parent.color
                    parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(parent)
                    node = self._root
        node.color = BLACK

    # ------------------------------------------------------------------
    # Rotations and helpers
    # ------------------------------------------------------------------

    def _rotate_left(self, node: _Node) -> None:
        pivot = node.right
        node.right = pivot.left
        if pivot.left is not _NIL:
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent is _NIL:
            self._root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot

    def _rotate_right(self, node: _Node) -> None:
        pivot = node.left
        node.left = pivot.right
        if pivot.right is not _NIL:
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent is _NIL:
            self._root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot

    @staticmethod
    def _minimum(node: _Node) -> _Node:
        while node.left is not _NIL:
            node = node.left
        return node

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> int:
        """Verify red-black and BST invariants; returns black height.

        Raises AssertionError on violation.  O(n); intended for tests.
        """
        if self._root.color != BLACK:
            raise AssertionError("root must be black")
        count, black_height = self._check(self._root, None, None)
        if count != self._size:
            raise AssertionError(f"size {self._size} != node count {count}")
        return black_height

    def _check(self, node: _Node, low: Any, high: Any) -> Tuple[int, int]:
        if node is _NIL:
            return 0, 1
        if low is not None and not (low < node.key):
            raise AssertionError(f"BST order violated at {node.key!r}")
        if high is not None and not (node.key < high):
            raise AssertionError(f"BST order violated at {node.key!r}")
        if node.color == RED:
            if node.left.color == RED or node.right.color == RED:
                raise AssertionError(f"red node {node.key!r} has red child")
        left_count, left_black = self._check(node.left, low, node.key)
        right_count, right_black = self._check(node.right, node.key, high)
        if left_black != right_black:
            raise AssertionError(f"black-height mismatch at {node.key!r}")
        return left_count + right_count + 1, left_black + (node.color == BLACK)
