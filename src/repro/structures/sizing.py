"""Approximate byte accounting for merge state.

The paper reports operator memory (events, payloads, index structures).
StreamInsight's internal counters are unavailable, so every stateful
structure in this repository exposes ``memory_bytes()`` computed from an
explicit cost model: payload bytes plus fixed per-node / per-entry
overheads.  The model is deliberately simple — the paper's memory *shapes*
(e.g., R3-'s linear growth with input count versus in2t's payload sharing)
are determined by what is retained and shared, which this model captures
exactly.
"""

from __future__ import annotations

from typing import Any

#: Bytes charged per red-black-tree node (key/value/colour/3 pointers).
TREE_NODE_OVERHEAD = 64

#: Bytes charged per hash-table entry (bucket slot + key + value).
HASH_ENTRY_OVERHEAD = 32

#: Bytes charged per timestamp.
TIMESTAMP_BYTES = 8

#: Bytes charged for a payload whose size cannot be derived structurally.
DEFAULT_PAYLOAD_BYTES = 16


def payload_bytes(payload: Any) -> int:
    """Approximate wire size of *payload* in bytes.

    Strings and bytes are charged their length; numbers 8 bytes; tuples and
    frozensets the sum of their parts plus 8 bytes of structure.  The
    paper's generated payloads — an integer plus a 1000-byte string —
    therefore cost ~1016 bytes, matching the experimental setup.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (tuple, frozenset)):
        return 8 + sum(payload_bytes(item) for item in payload)
    size = getattr(payload, "payload_bytes", None)
    if isinstance(size, int):
        return size
    return DEFAULT_PAYLOAD_BYTES


class PayloadKey:
    """Total-order wrapper for payloads used as red-black-tree key parts.

    Compares payloads natively when possible; for mutually unorderable
    payloads it falls back to ``(type name, repr)``, giving a deterministic
    order.  Equality is payload equality.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Any):
        self.payload = payload

    def _fallback(self) -> tuple:
        return (type(self.payload).__name__, repr(self.payload))

    def __lt__(self, other: "PayloadKey"):
        if not isinstance(other, PayloadKey):
            # Lets sentinel bounds (e.g. in2t's key floor) drive the
            # comparison via their reflected operator.
            return NotImplemented
        try:
            return bool(self.payload < other.payload)
        except TypeError:
            return self._fallback() < other._fallback()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PayloadKey):
            return NotImplemented
        return self.payload == other.payload

    def __hash__(self) -> int:
        return hash(self.payload)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PayloadKey({self.payload!r})"
