"""Exporters: Prometheus text, JSONL event logs, and the RunReport.

Three ways out of the observability layer:

* :func:`prometheus_text` — the registry as Prometheus text exposition
  format (``# TYPE`` headers, ``name{label="value"} value`` samples).
  Counters and gauges map directly; histograms are exposed as summaries
  (``_count``/``_sum`` plus ``quantile`` samples); time series export
  their total as a counter (the series itself is JSON-side data);
* JSONL — the tracer writes its own event log
  (:meth:`repro.obs.trace.RingTracer.export_jsonl`); :func:`write_jsonl`
  does the same for any iterable of dicts;
* :class:`RunReport` — one JSON document folding a registry snapshot,
  the merge's :class:`~repro.lmerge.base.MergeStats`, queue peaks
  (:meth:`repro.engine.runtime.Runtime.peak_report` shaped), and the
  per-input frontier-lag series into the artifact a run leaves behind.
  ``python -m repro report`` renders it back as a table.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.obs.registry import Histogram, MetricRegistry, TimeSeries

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_CLEAN = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    cleaned = _NAME_CLEAN.sub("_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _prom_value(value) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):  # pragma: no cover
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _prom_labels(labels, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels)
    if extra:
        pairs.extend(extra.items())
    if not pairs:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(
            _prom_name(str(k)),
            str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"),
        )
        for k, v in pairs
    )
    return "{" + escaped + "}"


def prometheus_text(registry: MetricRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def type_line(name: str, prom_type: str, help: str = "") -> None:
        if typed.get(name) is None:
            typed[name] = prom_type
            if help:
                escaped = help.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {name} {escaped}")
            lines.append(f"# TYPE {name} {prom_type}")

    for instrument in registry:
        name = _prom_name(instrument.name)
        labels = instrument.labels
        if isinstance(instrument, Histogram):
            type_line(name, "summary", instrument.help)
            for q in (0.5, 0.9, 0.99):
                lines.append(
                    f"{name}{_prom_labels(labels, {'quantile': str(q)})} "
                    f"{_prom_value(instrument.percentile(q))}"
                )
            lines.append(
                f"{name}_sum{_prom_labels(labels)} "
                f"{_prom_value(instrument.total)}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} {instrument.count}"
            )
        elif isinstance(instrument, TimeSeries):
            type_line(f"{name}_total", "counter", instrument.help)
            lines.append(
                f"{name}_total{_prom_labels(labels)} "
                f"{_prom_value(instrument.total)}"
            )
        else:  # Counter / Gauge
            type_line(name, instrument.kind, instrument.help)
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_prom_value(instrument.value)}"  # type: ignore[attr-defined]
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[dict], fp: IO[str]) -> int:
    """Write dict events as JSON lines (infinities as ``"inf"``/``"-inf"``
    strings); returns lines written."""
    from repro.obs.trace import json_safe

    count = 0
    for event in events:
        fp.write(
            json.dumps({k: json_safe(v) for k, v in event.items()}, default=str)
        )
        fp.write("\n")
        count += 1
    return count


@dataclass
class RunReport:
    """One run's observability artifact, as a single JSON document.

    ``metrics`` is a :meth:`~repro.obs.registry.MetricRegistry.snapshot`;
    ``frontier_lag`` maps input ids to ``[clock, lag]`` series;
    ``queue_peaks`` is :meth:`Runtime.peak_report`-shaped (edge/shard name
    to peak depth).
    """

    algorithm: str = ""
    inputs: List[str] = field(default_factory=list)
    elements_in: int = 0
    elements_out: int = 0
    wall_seconds: float = 0.0
    throughput_eps: float = 0.0
    merge_stats: Dict[str, int] = field(default_factory=dict)
    frontier_lag: Dict[str, List] = field(default_factory=dict)
    queue_peaks: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, List[dict]] = field(default_factory=dict)
    trace: Dict[str, int] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        merge=None,
        registry: Optional[MetricRegistry] = None,
        observer=None,
        runtime=None,
        tracer=None,
        wall_seconds: float = 0.0,
        inputs: Optional[List[str]] = None,
    ) -> "RunReport":
        """Fold the run's sources into one report.

        Every argument is optional; pass what the run had.  *merge* is an
        :class:`~repro.lmerge.base.LMergeBase` (or sharded plan) providing
        ``algorithm``/``stats``; *observer* an
        :class:`~repro.obs.lmerge_obs.LMergeObserver` providing the lag
        series; *runtime* anything with ``peak_report()``.
        """
        report = cls(wall_seconds=wall_seconds, inputs=list(inputs or []))
        if merge is not None:
            report.algorithm = getattr(merge, "algorithm", type(merge).__name__)
            stats = merge.stats
            report.merge_stats = stats.as_dict()
            report.elements_in = stats.elements_in
            report.elements_out = stats.elements_out
            if wall_seconds > 0:
                report.throughput_eps = stats.elements_in / wall_seconds
        if observer is not None:
            report.frontier_lag = observer.lag_series()
        if runtime is not None:
            report.queue_peaks = dict(runtime.peak_report())
        if registry is not None:
            report.metrics = registry.snapshot()
        if tracer is not None and getattr(tracer, "enabled", False):
            report.trace = {
                "recorded": tracer.recorded,
                "retained": len(tracer),
                "dropped": tracer.dropped,
            }
        return report

    # -- (de)serialization ---------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent, default=str)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        data = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        return cls.from_json(Path(path).read_text())

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """A human-readable table (the ``repro report`` output)."""
        lines: List[str] = []
        rule = "-" * 64

        def row(label: str, value) -> None:
            lines.append(f"  {label:<28} {value}")

        lines.append(f"Run report: {self.algorithm or '(unknown algorithm)'}")
        lines.append(rule)
        if self.inputs:
            row("inputs", ", ".join(self.inputs))
        row("elements in", f"{self.elements_in:,}")
        row("elements out", f"{self.elements_out:,}")
        row("wall seconds", f"{self.wall_seconds:.3f}")
        row("throughput (elements/s)", f"{self.throughput_eps:,.0f}")
        if self.merge_stats:
            lines.append("merge stats")
            lines.append(rule)
            for key in (
                "inserts_in", "adjusts_in", "stables_in",
                "inserts_out", "adjusts_out", "stables_out",
            ):
                if key in self.merge_stats:
                    row(key, f"{self.merge_stats[key]:,}")
            inserts_in = self.merge_stats.get("inserts_in", 0)
            if inserts_in:
                dropped = inserts_in - self.merge_stats.get("inserts_out", 0)
                row("duplicate hit rate", f"{max(0, dropped) / inserts_in:.1%}")
            row("chattiness (adjusts out)", self.merge_stats.get("adjusts_out", 0))
        if self.frontier_lag:
            lines.append("frontier lag (per input)")
            lines.append(rule)
            for input_id in sorted(self.frontier_lag):
                series = self.frontier_lag[input_id]
                if not series:
                    row(f"input {input_id}", "(no samples)")
                    continue
                values = [v for _, v in series]
                row(
                    f"input {input_id}",
                    f"last {values[-1]:g}  max {max(values):g}  "
                    f"mean {sum(values) / len(values):g}  "
                    f"({len(values)} samples)",
                )
        if self.queue_peaks:
            lines.append("queue peaks")
            lines.append(rule)
            for name in sorted(self.queue_peaks):
                row(name, self.queue_peaks[name])
        if self.trace:
            lines.append("trace")
            lines.append(rule)
            for key in ("recorded", "retained", "dropped"):
                if key in self.trace:
                    row(key, f"{self.trace[key]:,}")
        if self.metrics:
            counts = {k: len(v) for k, v in self.metrics.items() if v}
            lines.append(rule)
            row(
                "metrics snapshot",
                ", ".join(f"{n} {k}" for k, n in sorted(counts.items()))
                or "(empty)",
            )
        return "\n".join(lines)


def instrument_value(report: RunReport, kind: str, name: str, **labels) -> Any:
    """Look one instrument's value out of a report's metrics snapshot.

    Convenience for tests and scripts: matches on name and the *given*
    labels (a subset match).  Returns ``None`` when absent.
    """
    wanted = {str(k): str(v) for k, v in labels.items()}
    for entry in report.metrics.get(kind, []):
        if entry["name"] != name:
            continue
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in wanted.items()):
            return entry["value"]
    return None
