"""``repro top`` — a refreshing terminal view of a live merge's metrics.

Scrapes a :class:`~repro.obs.http.MetricsServer` (``repro merge
--serve-metrics <port>`` on the other side), parses the Prometheus text
exposition, and renders the interesting series as a terminal table that
refreshes in place — per-shard queue depth, frontier, CTI lag, exchange
traffic, and the headline merge gauges.

Everything is stdlib: :mod:`urllib.request` for the scrape, ANSI
escapes for the repaint.  The parser is intentionally small (names,
label sets, float values — the subset :func:`prometheus_text` emits)
and is reused by the tests to validate scrape output.
"""

from __future__ import annotations

import re
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Tuple

__all__ = ["parse_metrics", "render_table", "top"]

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{([^}]*)\})?"
    r"\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: One parsed sample: (name, sorted label tuple, value).
Sample = Tuple[str, Tuple[Tuple[str, str], ...], float]


def parse_metrics(text: str) -> List[Sample]:
    """Parse Prometheus text exposition into (name, labels, value) rows."""
    out: List[Sample] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            continue
        name, blob, raw = match.groups()
        labels = tuple(sorted(_LABEL.findall(blob))) if blob else ()
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            continue
        out.append((name, labels, value))
    return out


def _fmt(value: float) -> str:
    if value != value or abs(value) == float("inf"):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


#: Metrics the table surfaces, in display order.  Everything else is
#: summarized by the footer count.
_SHARD_METRICS = (
    "shard_queue_depth",
    "shard_queue_peak",
    "shard_frontier",
    "shard_cti_lag",
    "lmerge_frontier_lag",
    "lmerge_index_nodes",
    "exchange_bytes_total",
    "telemetry_frames_total",
)
_HEADLINE_METRICS = (
    "lmerge_output_frontier",
    "shard_emitted_stable",
    "lmerge_inserts_in_total",
    "lmerge_duplicates_dropped_total",
    "shard_elements_submitted_total",
    "shard_elements_collected_total",
)


def render_table(samples: List[Sample], width: int = 72) -> str:
    """The samples as a fixed-width terminal table."""
    by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], float]]] = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    lines: List[str] = []
    rule = "-" * width

    def shard_of(labels: Tuple[Tuple[str, str], ...]) -> str:
        for key, value in labels:
            if key == "shard":
                return value
        return "-"

    lines.append("repro top — live merge telemetry")
    lines.append(rule)
    for name in _HEADLINE_METRICS:
        rows = by_name.get(name)
        if not rows:
            continue
        total = sum(v for _, v in rows)
        lines.append(f"  {name:<40} {_fmt(total):>14}")
    shard_rows: Dict[str, Dict[str, float]] = {}
    for name in _SHARD_METRICS:
        for labels, value in by_name.get(name, ()):
            shard = shard_of(labels)
            # Multiple series per (metric, shard) — e.g. per-input
            # frontier lag — fold by max: the straggler is the signal.
            cell = shard_rows.setdefault(shard, {})
            cell[name] = max(cell.get(name, value), value)
    if shard_rows:
        lines.append(rule)
        header = f"  {'shard':>5} {'depth':>7} {'peak':>7} " \
                 f"{'frontier':>10} {'cti lag':>9} {'lag':>9} " \
                 f"{'nodes':>8} {'telem':>7}"
        lines.append(header)
        for shard in sorted(shard_rows, key=lambda s: (s == "-", s)):
            cell = shard_rows[shard]

            def col(metric: str) -> str:
                return _fmt(cell[metric]) if metric in cell else "."

            lines.append(
                f"  {shard:>5} {col('shard_queue_depth'):>7} "
                f"{col('shard_queue_peak'):>7} "
                f"{col('shard_frontier'):>10} "
                f"{col('shard_cti_lag'):>9} "
                f"{col('lmerge_frontier_lag'):>9} "
                f"{col('lmerge_index_nodes'):>8} "
                f"{col('telemetry_frames_total'):>7}"
            )
    lines.append(rule)
    lines.append(f"  {len(samples)} series total")
    return "\n".join(lines)


def _scrape(url: str, timeout: float) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8", "replace")


def top(
    url: str,
    interval: float = 1.0,
    iterations: int = 0,
    out=None,
) -> int:
    """The ``repro top`` loop: scrape, render, repaint.

    *iterations* = 0 runs until interrupted; a positive count renders
    that many frames (tests, one-shot inspection).  Returns an exit
    status (0 on success, 1 when the endpoint never answered).
    """
    if out is None:
        out = sys.stdout
    if "://" not in url:
        url = f"http://{url}"
    if not url.endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    scraped_once = False
    frame = 0
    try:
        while True:
            try:
                text = _scrape(url, timeout=max(1.0, interval))
                scraped_once = True
                table = render_table(parse_metrics(text))
            except (urllib.error.URLError, OSError) as exc:
                if not scraped_once and iterations:
                    out.write(f"repro top: cannot scrape {url}: {exc}\n")
                    return 1
                table = f"repro top: waiting for {url} ({exc})"
            if out.isatty():  # repaint in place
                out.write("\x1b[2J\x1b[H")
            out.write(table + "\n")
            out.flush()
            frame += 1
            if iterations and frame >= iterations:
                return 0 if scraped_once else 1
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
