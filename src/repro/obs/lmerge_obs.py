"""LMerge-specific gauges: frontier lag, leadership, duplicate elimination,
feedback, and per-shard health.

The paper's evaluation watches a handful of merge-specific signals
(Figures 5, 9, 10): how far each input's stable point trails the merged
output, which input currently leads, how many redundant inserts the merge
absorbed, and when fast-forward feedback fires.  This module packages
those as registry instruments:

* :class:`LMergeObserver` — samples one :class:`~repro.lmerge.base.LMergeBase`
  (or anything with the same surface) into gauges and time series.
  Sampling is pull-based: the driver calls :meth:`LMergeObserver.sample`
  at whatever cadence it likes (every K elements, every batch), so an
  unobserved merge pays nothing.
* :class:`ShardObserver` — samples a
  :class:`~repro.lmerge.shard.ShardedLMerge` plan: per-shard input-queue
  depth (from :meth:`~repro.engine.parallel.ParallelRuntime.queue_depths`),
  per-shard CTI frontier, and each shard's lag behind the most advanced
  shard (stragglers are what hold the combined CTI back).
* :func:`count_feedback` — wraps an operator's ``on_feedback`` so honored
  signals are counted (the emitting side is counted by the observer's
  feedback listener).

Metric names use the ``lmerge_``/``shard_`` prefixes; see
docs/OBSERVABILITY.md for the full catalogue.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.registry import MetricRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.operator import Operator
    from repro.lmerge.base import LMergeBase, MergeStats
    from repro.lmerge.shard import ShardedLMerge


def frontier_lag(output_frontier: float, input_frontier: float) -> float:
    """How far an input's stable point trails the merged output's.

    Clamped at zero: the leading input is *ahead* of the output (the
    output can promise at most what some input promised), and a negative
    lag carries no tuning signal.  Before any punctuation both frontiers
    are ``-inf`` and the lag is defined as 0.
    """
    if output_frontier == -math.inf:
        return 0.0
    if input_frontier == -math.inf:
        return math.inf
    return max(0.0, output_frontier - input_frontier)


class LMergeObserver:
    """Sample one merge's health into a registry.

    Instruments (all labeled ``merge=<name>``):

    * ``lmerge_frontier_lag{input=}`` gauge + ``lmerge_frontier_lag_series``
      time series — per-input lag vs. the merged output frontier;
    * ``lmerge_leading{input=}`` gauge — 1 on the current leading stream;
    * ``lmerge_inserts_in_total`` / ``lmerge_duplicates_dropped_total``
      counters — duplicate-elimination accounting from
      :class:`~repro.lmerge.base.MergeStats` deltas (hit rate =
      dropped / inserts in);
    * ``lmerge_output_frontier`` gauge — the merged stable point;
    * ``lmerge_feedback_emitted_total{input=}`` counter — fast-forward
      signals raised toward each lagging input (Section V-D);
    * ``lmerge_index_nodes`` / ``lmerge_index_bytes`` gauges — resident
      merge-index size (the bounded-state signal of PR 8: flat under
      reclamation, O(stream) on the seed path);
    * ``lmerge_pruned_nodes_total`` / ``lmerge_spilled_runs_total`` /
      ``lmerge_faulted_runs_total`` counters — settled-prefix reclamation
      and cold-run spill traffic, from merge-counter deltas.
    """

    def __init__(
        self,
        merge: "LMergeBase",
        registry: MetricRegistry,
        bucket: float = 1.0,
    ):
        self.merge = merge
        self.registry = registry
        self.bucket = bucket
        self._labels = {"merge": getattr(merge, "name", "lmerge")}
        self._last_inserts_in = merge.stats.inserts_in
        self._last_inserts_out = merge.stats.inserts_out
        self._last_pruned = getattr(merge, "pruned_nodes", 0)
        self._last_spilled = getattr(merge, "spilled_runs", 0)
        self._last_faulted = getattr(merge, "faulted_runs", 0)
        self.samples = 0
        if hasattr(merge, "add_feedback_listener"):
            merge.add_feedback_listener(self._on_feedback_emitted)

    def _on_feedback_emitted(self, stream_id, horizon) -> None:
        self.registry.counter(
            "lmerge_feedback_emitted_total",
            {**self._labels, "input": stream_id},
        ).inc()
        self.registry.gauge(
            "lmerge_feedback_horizon", self._labels
        ).set(horizon)

    def sample(self, clock: Optional[float] = None) -> Dict[object, float]:
        """Take one sample; returns the per-input lag map just recorded.

        *clock* positions the time-series bucket — pass the simulation
        clock, elements processed, or wall seconds, whichever timeline the
        run is plotted against.  Defaults to the sample ordinal.
        """
        registry = self.registry
        merge = self.merge
        if clock is None:
            clock = float(self.samples)
        self.samples += 1

        frontier = merge.max_stable
        registry.gauge(
            "lmerge_output_frontier",
            self._labels,
            help="Latest Stable(t) the merge has emitted.",
        ).set(frontier)
        leader = merge.leading_stream()
        lags: Dict[object, float] = {}
        for stream_id in merge.input_ids:
            labels = {**self._labels, "input": stream_id}
            lag = frontier_lag(frontier, merge.input_stable(stream_id))
            lags[stream_id] = lag
            registry.gauge(
                "lmerge_frontier_lag",
                labels,
                help="How far this input's stable point trails the "
                "output frontier.",
            ).set(lag)
            registry.gauge("lmerge_leading", labels).set(
                1 if stream_id == leader else 0
            )
            if lag != math.inf:
                registry.timeseries(
                    "lmerge_frontier_lag_series", labels, bucket=self.bucket
                ).record(clock, lag)

        # Duplicate elimination from MergeStats deltas: inserts absorbed
        # without a matching output insert were redundant presentations of
        # events another input already supplied.
        stats = merge.stats
        d_in = stats.inserts_in - self._last_inserts_in
        d_out = stats.inserts_out - self._last_inserts_out
        self._last_inserts_in = stats.inserts_in
        self._last_inserts_out = stats.inserts_out
        if d_in > 0:
            registry.counter(
                "lmerge_inserts_in_total",
                self._labels,
                help="Input inserts presented to the merge.",
            ).inc(d_in)
            dropped = d_in - d_out
            if dropped > 0:
                registry.counter(
                    "lmerge_duplicates_dropped_total",
                    self._labels,
                    help="Redundant presentations absorbed by duplicate "
                    "elimination.",
                ).inc(dropped)

        # Bounded-state accounting (PR 8): resident index size as gauges,
        # reclamation/spill traffic as counter deltas (registry counters
        # are increase-only, the merge counters are cumulative).
        registry.gauge(
            "lmerge_index_nodes",
            self._labels,
            help="Resident merge-index nodes.",
        ).set(getattr(merge, "index_nodes", 0))
        registry.gauge(
            "lmerge_index_bytes",
            self._labels,
            help="Approximate resident merge-index bytes.",
        ).set(getattr(merge, "index_bytes", 0))
        pruned = getattr(merge, "pruned_nodes", 0)
        if pruned > self._last_pruned:
            registry.counter(
                "lmerge_pruned_nodes_total", self._labels
            ).inc(pruned - self._last_pruned)
        self._last_pruned = pruned
        spilled = getattr(merge, "spilled_runs", 0)
        if spilled > self._last_spilled:
            registry.counter(
                "lmerge_spilled_runs_total", self._labels
            ).inc(spilled - self._last_spilled)
        self._last_spilled = spilled
        faulted = getattr(merge, "faulted_runs", 0)
        if faulted > self._last_faulted:
            registry.counter(
                "lmerge_faulted_runs_total", self._labels
            ).inc(faulted - self._last_faulted)
        self._last_faulted = faulted
        return lags

    def duplicate_hit_rate(self) -> float:
        """Fraction of sampled input inserts absorbed as duplicates."""
        inserts = self.registry.counter("lmerge_inserts_in_total", self._labels)
        dropped = self.registry.counter(
            "lmerge_duplicates_dropped_total", self._labels
        )
        if not inserts.value:
            return 0.0
        return dropped.value / inserts.value

    def lag_series(self) -> Dict[str, List]:
        """Per-input frontier-lag series, keyed by input id (as a string)."""
        out: Dict[str, List] = {}
        for instrument in self.registry:
            if instrument.name != "lmerge_frontier_lag_series":
                continue
            labels = dict(instrument.labels)
            out[labels.get("input", "?")] = [
                [t, v] for t, v in instrument.series()  # type: ignore[attr-defined]
            ]
        return out


class ShardObserver:
    """Sample a sharded plan's per-shard health into a registry.

    Instruments (labeled ``merge=<plan name>, shard=<index>``):

    * ``shard_queue_depth`` gauge — the shard worker's bounded input
      queue depth (backpressure pressure gauge);
    * ``shard_frontier`` gauge — the shard's CTI frontier at the union;
    * ``shard_cti_lag`` gauge — how far the shard trails the *most
      advanced* shard (a straggler holds the combined CTI at its own
      frontier, so this is the number to tune partitioning by).
    """

    def __init__(self, plan: "ShardedLMerge", registry: MetricRegistry):
        self.plan = plan
        self.registry = registry
        self._labels = {"merge": getattr(plan, "name", "sharded-lmerge")}
        self.samples = 0

    def sample(self) -> None:
        registry = self.registry
        plan = self.plan
        self.samples += 1
        frontiers = plan.shard_frontiers
        best = max(frontiers) if frontiers else -math.inf
        for shard, frontier in enumerate(frontiers):
            labels = {**self._labels, "shard": shard}
            registry.gauge(
                "shard_frontier",
                labels,
                help="This shard's emitted stable frontier.",
            ).set(frontier)
            registry.gauge(
                "shard_cti_lag",
                labels,
                help="How far this shard's frontier trails the leader.",
            ).set(frontier_lag(best, frontier))
        depths = plan.queue_depths()
        for shard, depth in enumerate(depths):
            if depth is None:
                continue
            labels = {**self._labels, "shard": shard}
            gauge = registry.gauge(
                "shard_queue_depth",
                labels,
                help="Exchange queue occupancy toward this shard.",
            )
            gauge.set(depth)
            peak = registry.gauge(
                "shard_queue_peak",
                labels,
                help="High-water exchange queue occupancy this run.",
            )
            if depth > peak.value or self.samples == 1:
                peak.set(depth)
        registry.gauge("shard_emitted_stable", self._labels).set(
            plan.max_stable
        )

    def sample_shard(self, shard: int) -> None:
        """Sample one shard's queue depth and frontier, live.

        The TELEM-merge hook (:attr:`ParallelRuntime.on_telemetry`):
        :meth:`sample` only runs at collect time, when the driver has
        already drained and the queues read near-empty — this fires
        *while* the exchange is loaded, so mid-run scrapes see real
        depths and peaks instead of zeros.
        """
        registry = self.registry
        plan = self.plan
        labels = {**self._labels, "shard": shard}
        depth = self.plan.queue_depths()[shard]
        if depth is not None:
            gauge = registry.gauge(
                "shard_queue_depth",
                labels,
                help="Exchange queue occupancy toward this shard.",
            )
            gauge.set(depth)
            peak = registry.gauge(
                "shard_queue_peak",
                labels,
                help="High-water exchange queue occupancy this run.",
            )
            if depth > peak.value:
                peak.set(depth)
        frontiers = plan.shard_frontiers
        if shard < len(frontiers):
            registry.gauge("shard_frontier", labels).set(frontiers[shard])

    def record_stats(self) -> None:
        """Fold the per-shard :class:`MergeStats` into labeled counters
        (call after the plan closes)."""
        for shard, stats in enumerate(self.plan.shard_stats):
            labels = {**self._labels, "shard": shard}
            self.registry.counter(
                "shard_elements_in_total", labels
            ).inc(stats.elements_in)
            self.registry.counter(
                "shard_elements_out_total", labels
            ).inc(stats.elements_out)
            self.registry.counter(
                "shard_adjusts_out_total", labels
            ).inc(stats.adjusts_out)


def count_feedback(
    operator: "Operator", registry: MetricRegistry
) -> "Operator":
    """Count feedback signals *honored* by an operator.

    Wraps ``operator.on_feedback`` so every delivery increments
    ``lmerge_feedback_honored_total{op=<name>}``; returns the operator for
    chaining.  The emitting side is counted by
    :class:`LMergeObserver`'s feedback listener.
    """
    inner = operator.on_feedback
    counter = registry.counter(
        "lmerge_feedback_honored_total", {"op": operator.name}
    )

    def counted(signal):
        counter.inc()
        return inner(signal)

    operator.on_feedback = counted  # type: ignore[method-assign]
    return operator
