"""The metric registry: labeled instruments with snapshot/reset semantics.

The registry is the collection point of the observability layer
(:mod:`repro.obs`): hook points all over the engine create *instruments*
here — counters, gauges, histograms, and time series, each keyed by a
metric name plus a frozen label set — and exporters
(:mod:`repro.obs.export`) read them back out as one consistent snapshot.

Design constraints, in order:

* **zero cost when absent** — every hook point guards on
  ``registry is not None``; code paths without a registry never touch
  this module;
* **cheap when present** — instrument handles are created once
  (``registry.counter(...)``) and mutated with plain attribute updates on
  the hot path, no dict lookups per event;
* **JSON-clean snapshots** — :meth:`MetricRegistry.snapshot` returns
  plain dicts/lists/numbers (infinities encoded as ``"inf"``/``"-inf"``
  strings, matching :mod:`repro.streams.io`), so a snapshot can round-trip
  through ``json.dumps``/``loads`` unchanged.

This module absorbs the role of the ad-hoc probes in
:mod:`repro.metrics.collector`: a :class:`TimeSeries` is a labeled,
registry-managed :class:`~repro.metrics.collector.ThroughputTimeline`,
and :class:`Histogram` covers what one-off latency lists did.  The old
probes remain for the figure benches; new instrumentation should go
through the registry.
"""

from __future__ import annotations

import math
import re
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: A frozen, order-normalized label set — the second half of a metric key.
LabelSet = Tuple[Tuple[str, str], ...]

Number = Union[int, float]

#: The Prometheus metric-name charset.  Names are validated at
#: registration (not cleaned at export): a misspelled name would
#: otherwise silently fork into two series — one registered, one
#: rendered — and the scrape side could never join them back.
_VALID_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _freeze_labels(labels: Optional[Mapping[str, object]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _json_number(value: Number) -> Union[Number, str]:
    """Encode one number JSON-cleanly (infinities become strings, the
    :mod:`repro.streams.io` convention)."""
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


class Instrument:
    """Base class: a named, labeled measurement."""

    __slots__ = ("name", "labels", "help")
    kind = "instrument"

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        self.name = name
        self.labels = labels
        #: Optional one-line description, rendered as a Prometheus
        #: ``# HELP`` line and carried through snapshots.
        self.help = help

    def reset(self) -> None:
        raise NotImplementedError

    def snapshot_value(self) -> object:
        """The instrument's state as JSON-clean data."""
        raise NotImplementedError

    def _key(self) -> Tuple[str, LabelSet]:
        return (self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{labels}}}>"


class Counter(Instrument):
    """A monotonically increasing count (elements processed, signals sent)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        super().__init__(name, labels, help)
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot_value(self) -> object:
        return _json_number(self.value)


class Gauge(Instrument):
    """A point-in-time value (queue depth, frontier lag)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        super().__init__(name, labels, help)
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def snapshot_value(self) -> object:
        return _json_number(self.value)


class Histogram(Instrument):
    """A distribution (batch sizes, drain budgets, span durations).

    ``count``/``total``/``min``/``max`` are exact over every observation;
    percentiles are computed over a bounded window of the most recent
    *window* observations (a ring, so long runs stay O(window) memory).
    """

    __slots__ = ("count", "total", "min", "max", "window", "_samples", "_next")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        help: str = "",
        window: int = 1024,
    ):
        super().__init__(name, labels, help)
        if window < 1:
            raise ValueError("histogram window must be positive")
        self.window = window
        self.count = 0
        self.total: Number = 0
        self.min: Number = math.inf
        self.max: Number = -math.inf
        self._samples: List[Number] = []
        self._next = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.window:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self.window

    def absorb(
        self,
        count: int,
        total: Number,
        samples: Sequence[Number],
        min_value: Optional[Number] = None,
        max_value: Optional[Number] = None,
    ) -> None:
        """Fold another histogram's *delta* into this one.

        The telemetry merge primitive (:mod:`repro.obs.telemetry`):
        ``count``/``total`` are exact deltas, *samples* is the shipped
        window tail feeding this side's percentile ring.  ``min``/``max``
        stay exact when the shipper passes its own extrema.
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        lo = min_value if min_value is not None else (
            min(samples) if samples else None
        )
        hi = max_value if max_value is not None else (
            max(samples) if samples else None
        )
        if lo is not None and lo < self.min:
            self.min = lo
        if hi is not None and hi > self.max:
            self.max = hi
        for value in samples:
            if len(self._samples) < self.window:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self.window

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Ceil-based nearest-rank percentile over the sample window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = math.ceil(q * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = math.inf
        self.max = -math.inf
        self._samples = []
        self._next = 0

    def snapshot_value(self) -> object:
        return {
            "count": self.count,
            "sum": _json_number(self.total),
            "min": _json_number(self.min) if self.count else None,
            "max": _json_number(self.max) if self.count else None,
            "mean": _json_number(self.mean),
            "p50": _json_number(self.percentile(0.5)),
            "p99": _json_number(self.percentile(0.99)),
        }


class TimeSeries(Instrument):
    """A value accumulated per time bucket (throughput/lag timelines).

    The registry-managed successor of
    :class:`repro.metrics.collector.ThroughputTimeline`: buckets are keyed
    by ``floor(t / bucket)`` and may be negative (simulation clocks start
    wherever the workload does); :meth:`series` fills gaps from the
    *minimum* recorded bucket, not zero.
    """

    __slots__ = ("bucket", "_buckets", "total")
    kind = "timeseries"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        help: str = "",
        bucket: float = 1.0,
    ):
        super().__init__(name, labels, help)
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket
        self._buckets: Dict[int, Number] = {}
        self.total: Number = 0

    def record(self, t: Number, value: Number = 1) -> None:
        index = int(t // self.bucket)
        self._buckets[index] = self._buckets.get(index, 0) + value
        self.total += value

    def series(self) -> List[Tuple[float, Number]]:
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [
            (index * self.bucket, self._buckets.get(index, 0))
            for index in range(first, last + 1)
        ]

    def reset(self) -> None:
        self._buckets = {}
        self.total = 0

    def snapshot_value(self) -> object:
        return {
            "bucket": self.bucket,
            "total": _json_number(self.total),
            "series": [
                [_json_number(t), _json_number(v)] for t, v in self.series()
            ],
        }


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram, TimeSeries)}


class MetricRegistry:
    """Get-or-create registry of labeled instruments.

    One registry per run; hook points hold on to the instrument handles
    they create, so the per-event cost is a plain attribute update.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelSet], Instrument] = {}

    # -- instrument factories ---------------------------------------------

    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: Optional[Mapping[str, object]],
        help: str = "",
        **kwargs,
    ) -> Instrument:
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            if not _VALID_NAME.match(name):
                raise ValueError(
                    f"invalid metric name {name!r}: must match "
                    f"[a-zA-Z_:][a-zA-Z0-9_:]*"
                )
            instrument = cls(key[0], key[1], help, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {cls.kind}"
            )
        elif help and not instrument.help:
            # First caller to supply a description wins; later empty
            # lookups (hot-path handle fetches) never clear it.
            instrument.help = help
        return instrument

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
        window: int = 1024,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, labels, help, window=window
        )

    def timeseries(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
        bucket: float = 1.0,
    ) -> TimeSeries:
        return self._get_or_create(  # type: ignore[return-value]
            TimeSeries, name, labels, help, bucket=bucket
        )

    # -- iteration & lookup ------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        """Instruments in deterministic (name, labels) order."""
        return iter(
            sorted(self._instruments.values(), key=Instrument._key)
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def get(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Optional[Instrument]:
        return self._instruments.get((name, _freeze_labels(labels)))

    # -- snapshot / reset ----------------------------------------------------

    def snapshot(self) -> Dict[str, List[dict]]:
        """Every instrument's state as JSON-clean data, grouped by kind.

        The result shares no mutable state with the registry: later
        instrument updates do not alter an already-taken snapshot.
        """
        out: Dict[str, List[dict]] = {kind: [] for kind in _KINDS}
        for instrument in self:
            entry = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "value": instrument.snapshot_value(),
            }
            if instrument.help:
                entry["help"] = instrument.help
            out[instrument.kind].append(entry)
        return out

    def reset(self) -> None:
        """Zero every instrument, keeping registrations (and handles) live."""
        for instrument in self._instruments.values():
            instrument.reset()
