"""Distributed telemetry: live metric streaming, causal trace ids, and
the crash flight recorder.

PR 4's observability stack was single-process and end-of-run: sharded
workers (the process backend's forked children) keep their own
registries and the driver only folds shard statistics in at close.  This
module makes worker telemetry *live*:

* :class:`TelemetryEmitter` — worker side.  Wraps the worker's local
  :class:`~repro.obs.registry.MetricRegistry` (and optionally its
  :class:`~repro.obs.trace.RingTracer`) and produces bounded *delta*
  dicts: counter increases, current gauge values, histogram
  count/sum/extrema deltas plus a sample tail, and any span events
  recorded since the previous emission.  Deltas ship to the driver as
  pickled :data:`~repro.engine.shm.TELEM` frames — best-effort
  (``timeout=0``, dropped when the ring is full) so telemetry can never
  block the data path.
* :class:`TelemetryAggregator` — driver side.  Merges incoming deltas
  into the driver registry under an added ``shard`` label (counters
  ``inc``, gauges ``set``, histograms
  :meth:`~repro.obs.registry.Histogram.absorb`), forwards worker span
  events into the driver tracer so the cross-process trace stitches into
  one timeline, and measures exchange round-trip latency per batch via
  the trace ids stamped at submit.
* :class:`FlightRecorder` — a bounded in-worker ring of recent
  span/metric events, flushed to the worker's
  :class:`~repro.resilience.store.StateStore` on checkpoint and idle
  heartbeats.  When :class:`~repro.resilience.supervisor.SupervisedRuntime`
  detects a crash it reads the victim's last flush into the
  :class:`~repro.resilience.supervisor.RecoveryRecord`, so a chaos-kill
  postmortem shows the victim's final batches.

Trace ids are compact u64s: ``(shard + 1) << 40 | seq``.  Supervised
workers derive *seq* from the driver journal's batch sequence, so ids
are stable across restart and replay — the flight recorder's span ids
from before a crash match the driver-side journal entries after it.

Everything here is opt-in: no emitter, no aggregator, no cost.  The
data-path guards stay the established ``registry is not None`` /
``tracer.enabled`` checks.
"""

from __future__ import annotations

import pickle
import time
from collections import OrderedDict
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelSet,
    MetricRegistry,
)
from repro.obs.trace import NULL_TRACER, json_safe

__all__ = [
    "FlightRecorder",
    "TelemetryAggregator",
    "TelemetryEmitter",
    "make_trace_id",
    "trace_seq",
    "trace_shard",
]

#: Trace-id layout: high bits carry ``shard + 1`` (so id 0 stays "no
#: trace"), the low 40 bits a per-shard sequence number.
_SHARD_SHIFT = 40
_SEQ_MASK = (1 << _SHARD_SHIFT) - 1

#: How many in-flight submit timestamps the aggregator retains for RTT
#: measurement; oldest entries are evicted first (their batches then
#: simply go unmeasured).
_MAX_PENDING = 4096

#: How many histogram samples one delta ships per instrument — enough to
#: keep driver-side percentiles honest without bloating TELEM frames.
_SAMPLE_TAIL = 64


def make_trace_id(shard: int, seq: int) -> int:
    """The compact u64 trace id for batch *seq* on *shard*."""
    return ((shard + 1) << _SHARD_SHIFT) | (seq & _SEQ_MASK)


def trace_shard(trace_id: int) -> int:
    """The shard that a trace id belongs to."""
    return (trace_id >> _SHARD_SHIFT) - 1


def trace_seq(trace_id: int) -> int:
    """The per-shard batch sequence number inside a trace id."""
    return trace_id & _SEQ_MASK


def _hist_tail(hist: Histogram, new: int) -> List:
    """The most recent ``min(new, window)`` samples, oldest first."""
    samples = hist._samples
    retained = len(samples)
    want = min(new, retained, _SAMPLE_TAIL)
    if want <= 0:
        return []
    if retained < hist.window:
        return list(samples[-want:])
    # Full ring: hist._next is the oldest slot, so the newest *want*
    # samples end right before it (with wraparound).
    end = hist._next
    start = end - want
    if start >= 0:
        return list(samples[start:end])
    return list(samples[start:]) + list(samples[:end])


class TelemetryEmitter:
    """Produce metric/span deltas from a worker-side registry.

    The emitter never touches the wire itself — callers ship the dicts
    (:meth:`maybe_delta` for interval-paced emission on the data path,
    :meth:`delta` for an unconditional flush before DONE).  State is the
    last shipped value per instrument key, so each delta carries only
    what changed.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        shard: int,
        tracer=None,
        interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.shard = shard
        self.tracer = tracer
        self.interval = interval
        self._clock = clock
        self._last_emit = clock()
        self._counters: Dict[Tuple[str, LabelSet], float] = {}
        self._hists: Dict[Tuple[str, LabelSet], Tuple[int, float]] = {}
        self._spans_seen = 0
        self.emitted = 0

    def maybe_delta(self, now: Optional[float] = None) -> Optional[dict]:
        """A delta when the interval has elapsed and something changed."""
        if now is None:
            now = self._clock()
        if now - self._last_emit < self.interval:
            return None
        return self.delta(now)

    def delta(self, now: Optional[float] = None) -> Optional[dict]:
        """Everything that changed since the last emission, or ``None``.

        Gauges ship their current value unconditionally (they are
        point-in-time reads, not accumulations); counters and histograms
        ship increases only.
        """
        self._last_emit = self._clock() if now is None else now
        counters: List = []
        gauges: List = []
        hists: List = []
        for instrument in self.registry:
            key = (instrument.name, instrument.labels)
            if isinstance(instrument, Counter):
                delta = instrument.value - self._counters.get(key, 0)
                if delta > 0:
                    counters.append([key[0], key[1], delta])
                    self._counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges.append([key[0], key[1], instrument.value])
            elif isinstance(instrument, Histogram):
                last_count, last_total = self._hists.get(key, (0, 0.0))
                count_d = instrument.count - last_count
                if count_d > 0:
                    hists.append(
                        [
                            key[0],
                            key[1],
                            count_d,
                            instrument.total - last_total,
                            instrument.min,
                            instrument.max,
                            _hist_tail(instrument, count_d),
                        ]
                    )
                    self._hists[key] = (instrument.count, instrument.total)
            # TimeSeries stay worker-local: they are end-of-run artifacts
            # and their bucket maps don't delta-merge cheaply.
        spans: List[dict] = []
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            new = tracer.recorded - self._spans_seen
            if new > 0:
                events = tracer.events()
                spans = events[-min(new, len(events)):]
                self._spans_seen = tracer.recorded
        if not (counters or gauges or hists or spans):
            return None
        self.emitted += 1
        return {
            "shard": self.shard,
            "seq": self.emitted,
            "counters": counters,
            "gauges": gauges,
            "hists": hists,
            "spans": spans,
        }


class TelemetryAggregator:
    """Merge worker deltas into the driver registry, live.

    Worker instruments land under their own name and labels plus a
    ``shard`` label (unless the worker already labeled them).  Span
    events forward into the driver tracer with their shard attached, so
    ``trace.jsonl`` holds one stitched cross-process timeline.

    The aggregator also owns trace-id assignment for the plain
    (unsupervised) runtime: :meth:`next_trace_id` stamps submits,
    :meth:`note_output` closes the loop when the batch's result returns,
    feeding the ``trace_stage_seconds{stage="exchange"}`` histogram with
    per-batch round-trip wall latency.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        tracer=None,
        max_pending: int = _MAX_PENDING,
    ):
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_pending = max_pending
        self.merged_frames = 0
        self._seqs: Dict[int, int] = {}
        self._pending: "OrderedDict[int, float]" = OrderedDict()
        self._rtt = registry.histogram(
            "trace_stage_seconds",
            {"stage": "exchange"},
            help="Per-batch wall latency through a pipeline stage.",
        )

    # -- trace-id assignment (driver side) -----------------------------

    def next_trace_id(self, shard: int) -> int:
        """A fresh trace id for the next batch submitted to *shard*."""
        seq = self._seqs.get(shard, 0) + 1
        self._seqs[shard] = seq
        return make_trace_id(shard, seq)

    def note_submit(self, trace_id: int) -> None:
        """Remember when *trace_id*'s batch entered the exchange."""
        pending = self._pending
        pending[trace_id] = perf_counter()
        while len(pending) > self.max_pending:
            pending.popitem(last=False)

    def note_output(self, trace_id: int) -> None:
        """A traced batch's output came back: observe its round trip."""
        started = self._pending.pop(trace_id, None)
        if started is None:
            return
        elapsed = perf_counter() - started
        self._rtt.observe(elapsed)
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                "span",
                "exchange",
                tid=trace_id,
                shard=trace_shard(trace_id),
                dur=elapsed,
            )

    # -- delta merging --------------------------------------------------

    def merge(self, delta: dict) -> None:
        """Fold one worker delta into the driver registry and tracer."""
        registry = self.registry
        shard = delta.get("shard", -1)
        self.merged_frames += 1
        registry.counter(
            "telemetry_frames_total",
            {"shard": shard},
            help="TELEM deltas merged into the driver aggregate.",
        ).inc()
        for name, labels, value in delta.get("counters", ()):
            registry.counter(name, self._shardify(labels, shard)).inc(value)
        for name, labels, value in delta.get("gauges", ()):
            registry.gauge(name, self._shardify(labels, shard)).set(value)
        for entry in delta.get("hists", ()):
            name, labels, count_d, sum_d, lo, hi, samples = entry
            registry.histogram(name, self._shardify(labels, shard)).absorb(
                count_d, sum_d, samples, min_value=lo, max_value=hi
            )
        tracer = self.tracer
        if tracer.enabled:
            for event in delta.get("spans", ()):
                fields = {
                    k: v for k, v in event.items() if k not in ("kind", "op")
                }
                fields.setdefault("shard", shard)
                fields["remote"] = True
                tracer.record(
                    event.get("kind", "span"), event.get("op", ""), **fields
                )

    @staticmethod
    def _shardify(labels: LabelSet, shard: int) -> Dict[str, object]:
        out = dict(labels)
        out.setdefault("shard", shard)
        return out


class FlightRecorder:
    """A bounded ring of a worker's most recent telemetry events.

    Cheap enough to stay always-on in supervised workers (one dict
    append per batch): crashes are exactly the runs where opt-in
    diagnostics would have been off.  The supervisor flushes the ring to
    the worker's :class:`~repro.resilience.store.StateStore` at
    checkpoint boundaries and on idle heartbeats (only when dirty), and
    reads the victim's last flush into the
    :class:`~repro.resilience.supervisor.RecoveryRecord` after a crash.
    """

    #: StateStore key the recorder flushes under.
    STORE_KEY = "flight"

    def __init__(self, capacity: int = 64, clock=time.time):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.recorded = 0
        self._clock = clock
        self._ring: List[Optional[dict]] = [None] * capacity
        self._next = 0
        self._dirty = False

    def record(self, kind: str, **fields) -> None:
        # Sanitized at record time (infinite frontiers are routine), so
        # a crash dump pastes straight into the RecoveryRecord JSON.
        event = {"t": self._clock(), "kind": kind}
        for key, value in fields.items():
            event[key] = json_safe(value)
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1
        self._dirty = True

    @property
    def dirty(self) -> bool:
        """Whether events were recorded since the last flush."""
        return self._dirty

    def snapshot(self) -> List[dict]:
        """Retained events, oldest first."""
        if self.recorded < self.capacity:
            return [e for e in self._ring[: self._next] if e is not None]
        return [
            e
            for e in self._ring[self._next :] + self._ring[: self._next]
            if e is not None
        ]

    def flush(self, store) -> bool:
        """Write the ring to *store* under :attr:`STORE_KEY` when dirty.

        Returns whether a write happened.  The store is the worker's own
        single-writer :class:`~repro.resilience.store.StateStore`; the
        driver only reads the key after the worker is confirmed dead.
        """
        if not self._dirty:
            return False
        store.put(self.STORE_KEY, pickle.dumps(self.snapshot()))
        self._dirty = False
        return True

    @classmethod
    def read(cls, store) -> List[dict]:
        """The last flushed ring from *store* (empty when never flushed)."""
        blob = store.get(cls.STORE_KEY)
        if not blob:
            return []
        try:
            events = pickle.loads(blob)
        except Exception:  # pragma: no cover - torn/foreign blob
            return []
        return list(events) if isinstance(events, list) else []
