"""A stdlib-only ``/metrics`` + ``/health`` HTTP endpoint.

:class:`MetricsServer` serves the live registry in Prometheus text
exposition format from a daemon thread — the first brick of the
``repro.serve`` front door (ROADMAP).  Zero cost to the merge hot path:
the server only *reads* the registry when a scrape arrives, and
rendering retries briefly if a concurrent registration mutates the
instrument table mid-iteration (registries are plain dicts, unlocked by
design — the hot path must never take a lock for telemetry's sake).

::

    registry = MetricRegistry()
    server = MetricsServer(registry, port=9464).start()
    ...                       # run the merge; scrape http://host:9464/metrics
    server.stop()

Routes:

* ``GET /metrics`` — ``prometheus_text(registry)``, content type
  ``text/plain; version=0.0.4``;
* ``GET /health`` — ``{"status": "ok", "uptime_seconds": ...}`` JSON,
  200 while the server is up (liveness for orchestrators);
* anything else — 404.

Pass ``port=0`` to bind an ephemeral port (tests); the bound port is
available as :attr:`MetricsServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.export import prometheus_text
from repro.obs.registry import MetricRegistry

__all__ = ["MetricsServer"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Rendering retries when a scrape races a concurrent instrument
#: registration (dict mutated during iteration).
_RENDER_RETRIES = 5


def _render(registry: MetricRegistry) -> str:
    for attempt in range(_RENDER_RETRIES):
        try:
            return prometheus_text(registry)
        except RuntimeError:  # dict changed size during iteration
            time.sleep(0.001 * (attempt + 1))
    return prometheus_text(registry)  # last try surfaces the error


class _Handler(BaseHTTPRequestHandler):
    # Set by MetricsServer on the server instance; reached via self.server.
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry = self.server.registry  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0] == "/metrics":
            body = _render(registry).encode()
            self.send_response(200)
            self.send_header("Content-Type", _CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.split("?", 1)[0] == "/health":
            started = self.server.started_at  # type: ignore[attr-defined]
            body = json.dumps(
                {"status": "ok", "uptime_seconds": time.time() - started}
            ).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "unknown path (try /metrics or /health)")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        return None  # scrapes are periodic; don't spam stderr


class MetricsServer:
    """Serve a registry's Prometheus text from a background thread."""

    def __init__(
        self,
        registry: MetricRegistry,
        port: int = 9464,
        host: str = "127.0.0.1",
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("metrics server already started")
        httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        httpd.daemon_threads = True
        httpd.registry = self.registry  # type: ignore[attr-defined]
        httpd.started_at = time.time()  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
