"""repro.obs — engine-wide observability: metrics, tracing, reports.

The paper's entire evaluation (Section VI) is an observability exercise —
throughput timelines, memory curves, chattiness, frontier lag, feedback
timing.  This package makes those first-class and *opt-in*:

* :mod:`repro.obs.registry` — labeled counters, gauges, histograms, and
  time series with snapshot/reset semantics (:class:`MetricRegistry`);
* :mod:`repro.obs.trace` — per-operator event tracing into a bounded ring
  buffer (:class:`RingTracer`), with a :class:`NullTracer` fast path whose
  disabled cost is one branch per call;
* :mod:`repro.obs.lmerge_obs` — merge-specific gauges: per-input frontier
  lag, current leader, duplicate-elimination hit rate, feedback signals,
  per-shard queue depth and CTI lag;
* :mod:`repro.obs.export` — Prometheus text format, JSONL event logs, and
  the :class:`RunReport` JSON document (rendered by ``python -m repro
  report``);
* :mod:`repro.obs.telemetry` — the distributed pipeline: worker-side
  :class:`TelemetryEmitter` snapshot deltas over TELEM frames, the
  driver-side :class:`TelemetryAggregator` (per-shard labels, stitched
  traces), and the crash :class:`FlightRecorder`;
* :mod:`repro.obs.http` — a stdlib ``/metrics`` + ``/health`` endpoint
  (:class:`MetricsServer`), scraped live by ``repro top``
  (:mod:`repro.obs.top`).

Nothing here is active by default: operators carry the shared
:data:`NULL_TRACER` and hook points guard on ``registry is not None``,
so the uninstrumented hot paths stay within the 5% budget asserted by
``bench_hotpath``.  See docs/OBSERVABILITY.md.
"""

from repro.obs.export import (
    RunReport,
    instrument_value,
    prometheus_text,
    write_jsonl,
)
from repro.obs.http import MetricsServer
from repro.obs.lmerge_obs import (
    LMergeObserver,
    ShardObserver,
    count_feedback,
    frontier_lag,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)
from repro.obs.telemetry import (
    FlightRecorder,
    TelemetryAggregator,
    TelemetryEmitter,
    make_trace_id,
    trace_seq,
    trace_shard,
)
from repro.obs.trace import NULL_TRACER, NullTracer, RingTracer

__all__ = [
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "NullTracer",
    "RingTracer",
    "NULL_TRACER",
    "LMergeObserver",
    "ShardObserver",
    "count_feedback",
    "frontier_lag",
    "RunReport",
    "prometheus_text",
    "write_jsonl",
    "instrument_value",
    "TelemetryEmitter",
    "TelemetryAggregator",
    "FlightRecorder",
    "make_trace_id",
    "trace_shard",
    "trace_seq",
    "MetricsServer",
]
