"""Pipeline tracing: per-operator events in a bounded ring buffer.

Two tracers share one interface:

* :class:`NullTracer` — the default everywhere.  ``enabled`` is False and
  every method is a no-op; hook points guard their work with
  ``if tracer.enabled:`` so the disabled cost is one attribute load and a
  branch per *call* (not per element).  The budget — within 5% of the
  uninstrumented hot path — is asserted by ``bench_hotpath`` and the
  tier-1 overhead smoke test.
* :class:`RingTracer` — records events into a preallocated ring of
  *capacity* slots.  When the ring wraps, the oldest events are dropped
  (and counted in :attr:`RingTracer.dropped`); tracing never grows without
  bound no matter how long the run.

An *event* is a plain dict: ``{"t": <seconds since tracer start>,
"kind": ..., "op": ..., **fields}``.  The hook points record pump
rounds, drain slices (budget + size), batch sizes, and elements in/out
per ``receive``/``receive_batch``/``stable`` call.  Timed regions use
:meth:`RingTracer.span`, which adds a ``"dur"`` field (seconds) on exit.

Export is JSONL, one event per line (:meth:`RingTracer.export_jsonl`),
ready for ``jq``/pandas post-processing.
"""

from __future__ import annotations

import json
import math
import time
from typing import IO, Iterator, List, Optional


def json_safe(value):
    """Make one value JSON-clean: infinities and NaN become strings (the
    :mod:`repro.streams.io` convention — ``json.dumps`` would otherwise
    emit the invalid-JSON literals ``Infinity``/``-Infinity``/``NaN``)."""
    if isinstance(value, float):
        if value == math.inf:
            return "inf"
        if value == -math.inf:
            return "-inf"
        if math.isnan(value):
            return "nan"
    return value


class _NullSpan:
    """A reusable no-op context manager (one instance, zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths must check :attr:`enabled` before assembling event fields —
    the no-op ``record`` exists only as a safety net for unguarded calls.
    """

    __slots__ = ()
    enabled = False

    def record(self, kind: str, op: str = "", **fields) -> None:
        return None

    def span(self, kind: str, op: str = "", **fields) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> List[dict]:
        return []


#: The shared default tracer; identity-comparable (``tracer is NULL_TRACER``).
NULL_TRACER = NullTracer()


class _Span:
    """Times a region and records one event with its duration on exit."""

    __slots__ = ("_tracer", "_kind", "_op", "_fields", "_start")

    def __init__(self, tracer: "RingTracer", kind: str, op: str, fields: dict):
        self._tracer = tracer
        self._kind = kind
        self._op = op
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        tracer.record(
            self._kind,
            self._op,
            dur=tracer._clock() - self._start,
            **self._fields,
        )


class RingTracer:
    """Record events into a bounded ring buffer.

    *capacity* bounds memory; the clock is injectable for deterministic
    tests (defaults to :func:`time.perf_counter`, re-zeroed at
    construction so event times are run-relative).
    """

    __slots__ = ("capacity", "recorded", "_ring", "_next", "_clock", "_epoch")
    enabled = True

    def __init__(self, capacity: int = 4096, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.recorded = 0
        self._ring: List[Optional[dict]] = [None] * capacity
        self._next = 0
        self._clock = clock
        self._epoch = clock()

    def record(self, kind: str, op: str = "", **fields) -> None:
        event = {"t": self._clock() - self._epoch, "kind": kind, "op": op}
        if fields:
            event.update(fields)
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1

    def span(self, kind: str, op: str = "", **fields) -> _Span:
        """Context manager timing a region; records ``kind`` with a
        ``dur`` field (seconds) when the region exits."""
        return _Span(self, kind, op, fields)

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        return max(0, self.recorded - self.capacity)

    def events(self) -> List[dict]:
        """Retained events, oldest first."""
        if self.recorded < self.capacity:
            return [e for e in self._ring[: self._next]]
        return [
            e
            for e in self._ring[self._next :] + self._ring[: self._next]
            if e is not None
        ]

    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events())

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self.recorded = 0

    def export_jsonl(self, fp: IO[str]) -> int:
        """Write retained events as JSON lines; returns lines written."""
        count = 0
        for event in self.events():
            fp.write(
                json.dumps(
                    {k: json_safe(v) for k, v in event.items()}, default=str
                )
            )
            fp.write("\n")
            count += 1
        return count
