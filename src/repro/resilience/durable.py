"""Durable ``repro.ha`` checkpoints: the jumpstart seed, now on disk.

:mod:`repro.ha.checkpoint` captures, at a stable point ``as_of``, every
event still relevant at or after it; until this module, those
checkpoints lived only in memory, so the very failure they exist to mask
(process death) destroyed them.  :class:`DurableCheckpointLog` writes
each checkpoint into a :class:`~repro.resilience.store.StateStore` keyed
by its stable point, so a restarted process can :meth:`latest` +
:func:`~repro.ha.checkpoint.replay_stream` its way back into a merge.

Compaction at CTI boundaries: once a checkpoint at ``as_of = t`` lands,
checkpoints before ``t`` are superseded — :meth:`prune` tombstones them
and compacts the log.
"""

from __future__ import annotations

import pickle
from typing import List, Optional

from repro.ha.checkpoint import Checkpoint
from repro.resilience.store import StateStore
from repro.temporal.event import Event
from repro.temporal.time import Timestamp

__all__ = ["DurableCheckpointLog"]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_KEY_PREFIX = b"ckpt/"


def _key_of(as_of: Timestamp) -> bytes:
    # repr() is exact for ints/floats and the store orders keys
    # lexicographically only for listing; ordering correctness comes from
    # parsing the timestamps back out, not from the byte order.
    return _KEY_PREFIX + repr(as_of).encode("ascii")


class DurableCheckpointLog:
    """An on-disk log of :class:`~repro.ha.checkpoint.Checkpoint` records.

    ::

        log = DurableCheckpointLog("/var/lib/merge/checkpoints")
        log.append(checkpoint_of(tdb, as_of=t))
        ...                                     # kill -9, restart
        log = DurableCheckpointLog("/var/lib/merge/checkpoints")
        seed = log.latest()                     # survives
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: bool = False,
        registry=None,
        name: str = "checkpoints",
    ):
        self._store = StateStore(
            directory, fsync=fsync, registry=registry, name=name
        )

    def append(self, checkpoint: Checkpoint) -> None:
        """Persist *checkpoint* (synced before return)."""
        payload = pickle.dumps(
            (
                checkpoint.as_of,
                [(e.vs, e.payload, e.ve) for e in checkpoint.events],
            ),
            _PICKLE_PROTOCOL,
        )
        self._store.put(_key_of(checkpoint.as_of), payload)
        self._store.sync()

    def stable_points(self) -> List[Timestamp]:
        """Every stored checkpoint's ``as_of``, ascending."""
        points = []
        for key in self._store.keys():
            if key.startswith(_KEY_PREFIX):
                points.append(self._load(key).as_of)
        points.sort()
        return points

    def get(self, as_of: Timestamp) -> Optional[Checkpoint]:
        key = _key_of(as_of)
        if key not in self._store:
            return None
        return self._load(key)

    def latest(self) -> Optional[Checkpoint]:
        """The checkpoint with the largest stable point, or None."""
        points = self.stable_points()
        if not points:
            return None
        return self.get(points[-1])

    def _load(self, key: bytes) -> Checkpoint:
        blob = self._store.get(key)
        assert blob is not None
        as_of, rows = pickle.loads(blob)
        return Checkpoint(
            as_of, tuple(Event(vs, payload, ve) for vs, payload, ve in rows)
        )

    def prune(self, keep: int = 1) -> int:
        """Drop all but the newest *keep* checkpoints and compact.

        Returns the bytes reclaimed.  Call after appending at a new CTI:
        the superseded history is dead weight.
        """
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        points = self.stable_points()
        for as_of in points[:-keep]:
            self._store.delete(_key_of(as_of))
        self._store.sync()
        return self._store.compact()

    @property
    def total_bytes(self) -> int:
        return self._store.total_bytes

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "DurableCheckpointLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
