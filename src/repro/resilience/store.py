"""A pure-python log-structured key/value store for durable merge state.

The shape is bitcask's (and the spine of the RocksDB-backed
``WindowedTransactionState`` exemplar, minus the dependency): writes are
appends to a segment file, reads are one seek through an in-memory index,
and space is reclaimed by compaction — rewriting only the live records
into a fresh segment and unlinking the old ones.  Crash safety comes from
the format, not from locks:

* every record carries a CRC32 over its header and body, so a torn write
  (the process was killed mid-append) is detected on reopen and the
  segment is truncated back to its last whole record;
* a key's latest record wins; reopen scans segments in id order, so a
  crash *during* compaction (new segment written, old ones not yet
  removed) resolves itself — the compacted segment has the highest id
  and its records shadow the stale ones;
* deletes are tombstone records, removed for good by the next compaction.

Record layout (little-endian)::

    <u32 crc> <u8 kind> <u16 keylen> <u32 vallen> <key bytes> <value bytes>

The in-memory index maps each *live* key to its latest record's location
— sparse over the log (dead and shadowed records are not indexed), O(1)
per lookup.  Callers that need durability beyond process death (power
loss) construct with ``fsync=True``; the default flushes to the OS on
:meth:`StateStore.sync`, which survives ``kill -9`` of the writer.

Single-writer by design: one process owns a store directory at a time
(each supervised shard worker opens its own).  No dependencies beyond
the standard library.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["StateStore", "StateStoreError", "CorruptSegmentError"]

_HEADER = struct.Struct("<IBHI")
_PUT = 1
_TOMBSTONE = 2

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"

Key = Union[str, bytes]


class StateStoreError(RuntimeError):
    """Base error for state-store failures."""


class CorruptSegmentError(StateStoreError):
    """A non-tail record failed its CRC check — the log is damaged in a
    way torn-write truncation cannot explain."""


def _as_bytes(key: Key) -> bytes:
    return key.encode("utf-8") if isinstance(key, str) else bytes(key)


def _segment_path(directory: str, segment_id: int) -> str:
    return os.path.join(
        directory, f"{_SEGMENT_PREFIX}{segment_id:08d}{_SEGMENT_SUFFIX}"
    )


def _segment_id(filename: str) -> Optional[int]:
    if not (
        filename.startswith(_SEGMENT_PREFIX)
        and filename.endswith(_SEGMENT_SUFFIX)
    ):
        return None
    middle = filename[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    try:
        return int(middle)
    except ValueError:
        return None


class StateStore:
    """An append-only segmented key/value store with an in-memory index.

    ::

        store = StateStore("/var/lib/merge/shard-0")
        store.put("snapshot", blob)
        store.sync()
        ...
        store = StateStore("/var/lib/merge/shard-0")   # after kill -9
        blob = store.get("snapshot")                   # identical bytes

    *segment_bytes* caps a segment before rotation; *fsync* adds an
    ``os.fsync`` to :meth:`sync` (power-loss durability).  When a
    :class:`~repro.obs.registry.MetricRegistry` is supplied, the store
    keeps a ``state_store_bytes`` gauge current (labelled with *name*).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = 4 << 20,
        fsync: bool = False,
        registry=None,
        name: str = "store",
    ):
        if segment_bytes < 4096:
            raise ValueError("segment_bytes must be at least 4096")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.registry = registry
        self.name = name
        #: Bytes of records truncated from the tail on open (torn writes).
        self.truncated_bytes = 0
        os.makedirs(directory, exist_ok=True)
        # key -> (segment_id, value_offset, value_length)
        self._index: Dict[bytes, Tuple[int, int, int]] = {}
        # Per-segment byte totals, for live/dead accounting.
        self._segment_sizes: Dict[int, int] = {}
        self._live_bytes = 0
        self._readers: Dict[int, object] = {}
        self._closed = False
        self._replay()
        self._active_id = max(self._segment_sizes, default=0) or 1
        self._active = open(_segment_path(directory, self._active_id), "ab")
        self._segment_sizes.setdefault(self._active_id, 0)
        self._gauge()

    # ------------------------------------------------------------------
    # Open-time replay
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the index by scanning every segment in id order."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:  # pragma: no cover - directory created above
            return
        segment_ids = sorted(
            sid for sid in (_segment_id(n) for n in names) if sid is not None
        )
        last = segment_ids[-1] if segment_ids else None
        for sid in segment_ids:
            self._replay_segment(sid, tolerate_tail=(sid == last))

    def _replay_segment(self, sid: int, tolerate_tail: bool) -> None:
        path = _segment_path(self.directory, sid)
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        total = len(data)
        good = 0
        while offset < total:
            record = self._parse_record(data, offset)
            if record is None:
                if tolerate_tail:
                    # Torn tail from a crash mid-append: cut it off so the
                    # next append starts at a whole-record boundary.
                    self.truncated_bytes += total - offset
                    with open(path, "ab") as handle:
                        handle.truncate(good)
                    break
                raise CorruptSegmentError(
                    f"corrupt record at {path}:{offset} "
                    f"(mid-log damage, not a torn tail)"
                )
            kind, key, value_offset, value_length, record_length = record
            self._note_record(sid, kind, key, value_offset, value_length)
            offset += record_length
            good = offset
        self._segment_sizes[sid] = good

    @staticmethod
    def _parse_record(
        data: bytes, offset: int
    ) -> Optional[Tuple[int, bytes, int, int, int]]:
        """Parse one record; None when truncated or CRC-damaged."""
        end = offset + _HEADER.size
        if end > len(data):
            return None
        crc, kind, key_length, value_length = _HEADER.unpack_from(data, offset)
        body_end = end + key_length + value_length
        if kind not in (_PUT, _TOMBSTONE) or body_end > len(data):
            return None
        if zlib.crc32(data[offset + 4 : body_end]) != crc:
            return None
        key = data[end : end + key_length]
        return (
            kind,
            key,
            end + key_length,
            value_length,
            _HEADER.size + key_length + value_length,
        )

    def _note_record(
        self, sid: int, kind: int, key: bytes, value_offset: int, value_length: int
    ) -> None:
        """Index maintenance shared by replay and live appends."""
        previous = self._index.get(key)
        if previous is not None:
            self._live_bytes -= previous[2]
        if kind == _PUT:
            self._index[key] = (sid, value_offset, value_length)
            self._live_bytes += value_length
        else:
            self._index.pop(key, None)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: Key) -> Optional[bytes]:
        """The latest value for *key*, or None."""
        self._require_open()
        entry = self._index.get(_as_bytes(key))
        if entry is None:
            return None
        sid, value_offset, value_length = entry
        if sid == self._active_id:
            self._active.flush()
        reader = self._readers.get(sid)
        if reader is None:
            reader = open(_segment_path(self.directory, sid), "rb")
            self._readers[sid] = reader
        reader.seek(value_offset)
        return reader.read(value_length)

    def __contains__(self, key: Key) -> bool:
        return _as_bytes(key) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[bytes]:
        return iter(sorted(self._index))

    def keys_with_prefix(self, prefix: Key) -> List[bytes]:
        """All live keys starting with *prefix*, sorted.

        The cold-run spill namespaces its runs as ``<merge>:run:<id>`` in
        a store it may share with checkpoints; this is how it enumerates
        (and clears) its own keys without trusting in-memory metadata —
        which a crash-restart has lost.
        """
        raw = _as_bytes(prefix)
        return sorted(key for key in self._index if key.startswith(raw))

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for key in self.keys():
            value = self.get(key)
            assert value is not None
            yield key, value

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(self, key: Key, value: bytes) -> None:
        """Record ``key -> value`` (append + index update)."""
        self._append(_PUT, _as_bytes(key), bytes(value))

    def delete(self, key: Key) -> None:
        """Remove *key* (a tombstone append; reclaimed by compaction)."""
        raw = _as_bytes(key)
        if raw in self._index:
            self._append(_TOMBSTONE, raw, b"")

    def _append(self, kind: int, key: bytes, value: bytes) -> None:
        self._require_open()
        if len(key) > 0xFFFF:
            raise ValueError("key exceeds 65535 bytes")
        body = _HEADER.pack(0, kind, len(key), len(value))[4:] + key + value
        record = struct.pack("<I", zlib.crc32(body)) + body
        base = self._segment_sizes[self._active_id]
        self._active.write(record)
        self._note_record(
            self._active_id,
            kind,
            key,
            base + _HEADER.size + len(key),
            len(value),
        )
        self._segment_sizes[self._active_id] = base + len(record)
        if self._segment_sizes[self._active_id] >= self.segment_bytes:
            self.rotate()
        self._gauge()

    def sync(self) -> None:
        """Flush the active segment to the OS (and to disk with
        ``fsync=True``).  After ``sync`` returns, the data survives a
        ``kill -9`` of this process."""
        self._require_open()
        self._active.flush()
        if self.fsync:
            os.fsync(self._active.fileno())

    def rotate(self) -> None:
        """Seal the active segment and start a new one."""
        self._require_open()
        self._active.flush()
        self._active.close()
        self._readers.pop(self._active_id, None)
        self._active_id += 1
        self._active = open(
            _segment_path(self.directory, self._active_id), "ab"
        )
        self._segment_sizes[self._active_id] = 0

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Rewrite live records into a fresh segment; drop the rest.

        Returns the bytes reclaimed.  Crash-safe without a manifest: the
        new segment is flushed before the old ones are unlinked, and its
        higher id means a reopen that still sees stale segments resolves
        every key to the compacted copy.  Intended to run at CTI
        boundaries — once a checkpoint at stable point *t* lands, every
        earlier checkpoint record is shadowed and compaction makes their
        space free.
        """
        self._require_open()
        before = self.total_bytes
        old_ids = list(self._segment_sizes)
        live = [(key, self.get(key)) for key in sorted(self._index)]
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()
        self._active.flush()
        self._active.close()
        new_id = self._active_id + 1
        self._index.clear()
        self._segment_sizes = {new_id: 0}
        self._live_bytes = 0
        self._active_id = new_id
        self._active = open(_segment_path(self.directory, new_id), "ab")
        for key, value in live:
            assert value is not None
            self._append(_PUT, key, value)
        self._active.flush()
        if self.fsync:
            os.fsync(self._active.fileno())
        for sid in old_ids:
            if sid != new_id:
                try:
                    os.unlink(_segment_path(self.directory, sid))
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._gauge()
        return before - self.total_bytes

    def maybe_compact(self, min_dead_bytes: int = 1 << 20) -> int:
        """Compact when at least *min_dead_bytes* are reclaimable."""
        if self.dead_bytes >= min_dead_bytes:
            return self.compact()
        return 0

    # ------------------------------------------------------------------
    # Accounting & lifecycle
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Bytes currently on disk across all segments."""
        return sum(self._segment_sizes.values())

    @property
    def live_bytes(self) -> int:
        """Value bytes reachable through the index."""
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes a compaction would reclaim (shadowed records, headers
        of dead records, tombstones)."""
        overhead = len(self._index) * _HEADER.size
        return max(0, self.total_bytes - self._live_bytes - overhead)

    @property
    def segments(self) -> int:
        return len(self._segment_sizes)

    def _gauge(self) -> None:
        if self.registry is not None:
            self.registry.gauge(
                "state_store_bytes", {"store": self.name}
            ).set(self.total_bytes)

    def _require_open(self) -> None:
        if self._closed:
            raise StateStoreError("state store is closed")

    def close(self) -> None:
        """Flush and release file handles (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._active.flush()
            if self.fsync:
                os.fsync(self._active.fileno())
        finally:
            self._active.close()
            for reader in self._readers.values():
                reader.close()
            self._readers.clear()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StateStore {self.directory!r} keys={len(self._index)} "
            f"bytes={self.total_bytes}>"
        )
