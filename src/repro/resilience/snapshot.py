"""Persisting merge snapshots in a :class:`~repro.resilience.store.StateStore`.

A shard worker's durable record is one pickled dict under
:data:`SNAPSHOT_KEY`:

``merge``
    ``LMergeBase.snapshot_state()`` — inputs, frontier, stats, and the
    variant's index contents (In2T/In3T snapshots).
``applied_seq``
    The last input-journal sequence number reflected in that state.
``emitted``
    Output elements produced so far (the driver's dedup coordinate).

Writing the record *then* acking lets the supervisor trim its in-memory
journal: everything at or before ``applied_seq`` can be replayed from
disk instead.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional, Tuple

from repro.resilience.store import StateStore

__all__ = ["SNAPSHOT_KEY", "save_snapshot", "load_snapshot"]

#: Store key holding the latest worker snapshot.
SNAPSHOT_KEY = b"snapshot"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def save_snapshot(
    store: StateStore, merge: Any, applied_seq: int, emitted: int
) -> None:
    """Persist *merge*'s state at input position *applied_seq*.

    The record is synced before return — once this function returns, a
    ``kill -9`` cannot lose the checkpoint.
    """
    record = {
        "merge": merge.snapshot_state(),
        "applied_seq": applied_seq,
        "emitted": emitted,
    }
    store.put(SNAPSHOT_KEY, pickle.dumps(record, _PICKLE_PROTOCOL))
    store.sync()


def load_snapshot(store: StateStore) -> Optional[Tuple[dict, int, int]]:
    """The latest ``(merge_state, applied_seq, emitted)``, or None."""
    blob = store.get(SNAPSHOT_KEY)
    if blob is None:
        return None
    record = pickle.loads(blob)
    return record["merge"], record["applied_seq"], record["emitted"]
