"""The seeded chaos matrix: supervised runs under injected faults must
be TDB-equivalent to clean runs.

One **cell** is ``(variant, fault kind, seed)``: build a seeded
workload, merge it once on a clean serial sharded plan (the baseline)
and once on a supervised process plan with a seeded
:class:`~repro.resilience.faults.FaultPlan`, then check the two oracles
from the paper's correctness story:

* **equivalence** — both outputs (and the reference stream) reconstitute
  to the same TDB (``tdb(S) == tdb(U)``, Section III);
* **no loss / no duplication** — the faulty run's output is the same
  element *multiset* as the clean run's (deterministic replay plus the
  driver's emitted-count dedup make recovery exact, which is strictly
  stronger than TDB equivalence).

:func:`run_fault_matrix` sweeps variants x fault kinds and returns a
JSON-ready report (the CI ``chaos-smoke`` artifact);
``python -m repro chaos`` is the CLI face.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.lmerge.shard import shard
from repro.resilience.faults import FaultPlan
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Stable

__all__ = ["run_chaos_cell", "run_fault_matrix", "VARIANTS", "FAULT_KINDS"]

VARIANTS = {"r1": LMergeR1, "r3": LMergeR3, "r4": LMergeR4}

#: FaultPlan.random keyword and site count per fault kind.  Stalls cost
#: a heartbeat timeout each, so one per run keeps cells fast.
FAULT_KINDS: Dict[str, Tuple[str, int]] = {
    "kill": ("kills", 2),
    "stall": ("stalls", 1),
    "drop": ("drops", 2),
    "duplicate": ("duplicates", 2),
    "delay": ("delays", 2),
}

#: Aggressive supervisor timings for test-sized workloads.
FAST_SUPERVISOR = {
    "heartbeat_interval": 0.02,
    "heartbeat_timeout": 0.75,
    "restart_backoff": 0.01,
    "restart_backoff_cap": 0.1,
    "checkpoint_every": 4,
    "max_restarts": 8,
}


def _workload(
    variant_key: str, seed: int, count: int
) -> Tuple[PhysicalStream, List[PhysicalStream]]:
    """Reference stream + merge inputs legal for the variant (R1 takes
    ordered adjust-free replicas; R3/R4 take divergent speculative
    presentations)."""
    if variant_key == "r1":
        config = GeneratorConfig(
            count=count,
            seed=seed,
            disorder=0.0,
            stable_freq=0.08,
            payload_blob_bytes=4,
            min_gap=1,
        )
        reference = StreamGenerator(config).generate()
        return reference, [reference, reference]
    config = GeneratorConfig(
        count=count,
        seed=seed,
        disorder=0.25,
        stable_freq=0.08,
        payload_blob_bytes=4,
    )
    reference = StreamGenerator(config).generate()
    inputs = [
        diverge(reference, seed=seed * 31 + i, speculate_fraction=0.25)
        for i in range(2)
    ]
    return reference, inputs


def _data_multiset(stream: PhysicalStream) -> Counter:
    """The output's data elements (punctuation timing is allowed to
    differ between runs; data must not)."""
    return Counter(e for e in stream if not isinstance(e, Stable))


def run_chaos_cell(
    variant_key: str,
    fault_kind: str,
    seed: int,
    *,
    num_shards: int = 2,
    count: int = 160,
    batch_size: int = 16,
    durable_dir: Optional[str] = None,
    supervisor_options: Optional[dict] = None,
) -> dict:
    """Run one cell and return its JSON-ready verdict."""
    if variant_key not in VARIANTS:
        raise ValueError(f"unknown variant {variant_key!r}")
    if fault_kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {fault_kind!r}")
    reference, inputs = _workload(variant_key, seed, count)

    baseline = shard(VARIANTS[variant_key], num_shards, backend="serial")
    baseline_out = baseline.merge_batched(inputs, batch_size=batch_size)

    # Sequence numbers count per-shard frames (attach ops + batch
    # buckets); aiming sites at the first half of the batch range keeps
    # them inside the actual run so the faults really fire.
    total_batches = sum(len(s) for s in inputs) // batch_size
    horizon = max(4, total_batches // 2)
    keyword, sites = FAULT_KINDS[fault_kind]
    plan = FaultPlan.random(
        seed, num_shards, horizon, **{"kills": 0, keyword: sites}
    )

    options = dict(FAST_SUPERVISOR)
    options.update(supervisor_options or {})
    with tempfile.TemporaryDirectory(
        prefix=f"chaos-{variant_key}-{fault_kind}-", dir=durable_dir
    ) as state_dir:
        supervised = shard(
            VARIANTS[variant_key],
            num_shards,
            backend="process",
            supervised=True,
            durable_dir=state_dir,
            fault_plan=plan,
            supervisor_options=options,
        )
        supervised_out = supervised.merge_batched(
            inputs, batch_size=batch_size
        )
        runtime = supervised.runtime

        equivalent = (
            supervised_out.tdb()
            == baseline_out.tdb()
            == reference.tdb()
        )
        no_loss = _data_multiset(supervised_out) == _data_multiset(
            baseline_out
        )
        return {
            "variant": variant_key,
            "fault": fault_kind,
            "seed": seed,
            "equivalent": bool(equivalent),
            "no_loss_no_duplication": bool(no_loss),
            "ok": bool(equivalent and no_loss),
            "restarts": sum(runtime.restarts),
            "replayed_elements": runtime.replayed_elements,
            "recovery_seconds": [
                round(r.seconds, 4) for r in runtime.recoveries
            ],
            "recoveries": [r.as_dict() for r in runtime.recoveries],
            "fault_plan": plan.describe(),
            "elements_out": len(supervised_out),
        }


def run_fault_matrix(
    seed: int,
    *,
    variants: Sequence[str] = ("r1", "r3"),
    fault_kinds: Sequence[str] = tuple(FAULT_KINDS),
    num_shards: int = 2,
    count: int = 160,
    batch_size: int = 16,
    durable_dir: Optional[str] = None,
    supervisor_options: Optional[dict] = None,
) -> dict:
    """Sweep ``variants x fault_kinds`` from one seed.

    The returned report is JSON-ready; ``report["all_ok"]`` is the CI
    gate (every cell TDB-equivalent with no loss or duplication).
    """
    cells = []
    for offset, variant_key in enumerate(variants):
        for fault_kind in fault_kinds:
            cells.append(
                run_chaos_cell(
                    variant_key,
                    fault_kind,
                    seed + offset,
                    num_shards=num_shards,
                    count=count,
                    batch_size=batch_size,
                    durable_dir=durable_dir,
                    supervisor_options=supervisor_options,
                )
            )
    return {
        "seed": seed,
        "num_shards": num_shards,
        "count": count,
        "batch_size": batch_size,
        "cells": cells,
        "total_restarts": sum(cell["restarts"] for cell in cells),
        "all_ok": all(cell["ok"] for cell in cells),
    }
