"""Supervised shard workers: crash detection, durable checkpoints, and
restart-with-replay for the process-backend merge runtime.

:class:`SupervisedRuntime` extends
:class:`~repro.engine.parallel.ParallelRuntime` (process backend,
columnar envelope, shared-memory rings) with the recovery path the paper
assumes exists around LMerge (Section II — masking physical failure):

* every frame the driver sends a shard carries a per-shard **sequence
  number** and is retained in an in-memory journal until the worker
  acknowledges a durable checkpoint covering it;
* the worker **heartbeats** over the existing ring (``HB`` frames) when
  idle and after every batch, and periodically persists a
  :meth:`~repro.lmerge.base.LMergeBase.snapshot_state` into its own
  :class:`~repro.resilience.store.StateStore` — preferentially right
  after the merge's stable frontier (CTI) advances, so checkpoints sit
  at CTI boundaries and the store compacts there;
* the driver detects death three ways — ``process.is_alive()``,
  :class:`~repro.engine.shm.PeerDeadError` from a ring operation, and a
  stale heartbeat (hang detection) — and **recovers**: kill the
  remnants, rebuild the rings, respawn the worker (which restores the
  last durable snapshot), and replay the journal tail.  Restarts back
  off exponentially and are bounded by ``max_restarts``, after which the
  failure surfaces as the classic
  :class:`~repro.engine.parallel.ShardError`;
* worker **output dedup** makes recovery exact, not just equivalent:
  each ``OUT`` frame carries the worker's cumulative emitted-count
  before the batch, and replay is deterministic, so the driver slices
  off exactly the rows it has already delivered.  The recovered output
  is element-identical to the uninterrupted run's per-shard output.

The sequence gate also subsumes transport faults: a dropped or reordered
frame shows up as a gap (the worker reports it and asks to be
recovered), a duplicated frame is skipped.  The seeded
:class:`~repro.resilience.faults.FaultPlan` drives exactly these paths
in the chaos tests.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import time
import traceback
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import shm as shm_rings
from repro.engine.columnar import ColumnBatch
from repro.engine.parallel import (
    ParallelRuntime,
    ShardError,
    ShardFactory,
)
from repro.engine.shm import RingClosedError, ShmRing
from repro.obs.telemetry import FlightRecorder, make_trace_id
from repro.resilience.faults import KILL_EXIT_CODE, FaultPlan
from repro.resilience.snapshot import load_snapshot, save_snapshot
from repro.resilience.store import StateStore
from repro.temporal.elements import Element

__all__ = ["SupervisedRuntime", "RecoveryRecord"]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclass
class RecoveryRecord:
    """One completed shard recovery (``SupervisedRuntime.recoveries``)."""

    shard: int
    attempt: int
    reason: str
    resumed_seq: int
    replayed_entries: int
    replayed_elements: int
    seconds: float
    #: The victim's last flight-recorder flush (its final N batches as
    #: span events, trace ids stitching into the driver-side journal).
    flight: List[dict] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "attempt": self.attempt,
            "reason": self.reason.strip().splitlines()[-1] if self.reason else "",
            "resumed_seq": self.resumed_seq,
            "replayed_entries": self.replayed_entries,
            "replayed_elements": self.replayed_elements,
            "seconds": self.seconds,
            "flight": self.flight,
        }


@dataclass
class _WorkerConfig:
    """Everything a supervised worker process needs (picklable)."""

    shard: int
    factory: ShardFactory
    store_dir: str
    coalesce_stables: bool
    heartbeat_interval: float
    checkpoint_every: int
    fault_plan: Optional[FaultPlan]
    fault_floor: int
    fsync: bool
    telemetry_interval: float = 0.0
    flight_capacity: int = 64


def _supervised_shard_loop(
    config: _WorkerConfig, in_ring: ShmRing, out_ring: ShmRing
) -> None:
    """One supervised worker incarnation.

    Restores the last durable snapshot (if any), announces
    ``("resumed", applied_seq, emitted)``, then applies sequenced frames
    behind a duplicate/gap gate, checkpointing at CTI boundaries and
    every *checkpoint_every* batches.
    """
    shard = config.shard
    try:
        in_ring.child_deregister()
        out_ring.child_deregister()
        parent = multiprocessing.parent_process()
        if parent is not None:
            in_ring.set_liveness(parent.is_alive)
            out_ring.set_liveness(parent.is_alive)
        store = StateStore(
            config.store_dir, fsync=config.fsync, name=f"shard-{shard}"
        )
        buffer: List[Element] = []
        merge = config.factory(buffer.append)
        applied_seq = 0
        emitted = 0
        loaded = load_snapshot(store)
        if loaded is not None:
            merge_state, applied_seq, emitted = loaded
            merge.restore_state(merge_state)
        plan = config.fault_plan
        floor = config.fault_floor
        batches_since_ckpt = 0
        last_ckpt_stable = merge.max_stable
        # Always-on flight recorder: crashes are exactly the runs where
        # opt-in diagnostics would have been off, and the per-batch cost
        # is one dict append.  Flushed on checkpoints and idle beats.
        flight = FlightRecorder(capacity=config.flight_capacity)
        emitter = observer = worker_tracer = None
        if config.telemetry_interval > 0:
            from repro.obs.lmerge_obs import LMergeObserver
            from repro.obs.registry import MetricRegistry
            from repro.obs.telemetry import TelemetryEmitter
            from repro.obs.trace import RingTracer

            worker_registry = MetricRegistry()
            observer = LMergeObserver(merge, worker_registry)
            worker_tracer = RingTracer(capacity=4096)
            emitter = TelemetryEmitter(
                worker_registry,
                shard,
                tracer=worker_tracer,
                interval=config.telemetry_interval,
            )
        # Bounded like every heartbeat: if the driver is wedged with a
        # full ring, blocking here would deadlock the restart — a missed
        # announce is recovered by the driver's resume timeout instead.
        out_ring.put_pickle(
            shm_rings.HB, ("resumed", applied_seq, emitted), timeout=5.0
        )
        while True:
            frame = in_ring.get(timeout=config.heartbeat_interval)
            if frame is None:
                out_ring.put_pickle(
                    shm_rings.HB, ("hb", applied_seq, emitted), timeout=0
                )
                if flight.dirty:
                    flight.flush(store)
                if emitter is not None:
                    delta = emitter.maybe_delta()
                    if delta is not None:
                        out_ring.put_pickle(
                            shm_rings.TELEM, delta, timeout=0
                        )
                continue
            kind, payload = frame
            if kind == shm_rings.BATCH:
                seq = int.from_bytes(payload[:8], "little")
                if seq <= applied_seq:
                    continue  # duplicated delivery: already applied
                if seq != applied_seq + 1:
                    # A frame was lost or reordered in front of us; we
                    # cannot apply out of order — ask to be recovered.
                    out_ring.put_pickle(
                        shm_rings.HB,
                        ("gap", applied_seq + 1, seq),
                        timeout=5.0,
                    )
                    return
                sid_len = int.from_bytes(payload[8:10], "little")
                stream_id = pickle.loads(payload[10 : 10 + sid_len])
                batch = ColumnBatch.decode(
                    memoryview(payload)[10 + sid_len :]
                )
                # Deterministic causal id: derived from the journal
                # sequence, so the same batch carries the same trace id
                # across crash/replay and the flight recorder's entries
                # stitch into the driver-side trace.
                tid = make_trace_id(shard, seq)
                batch_started = perf_counter()
                merge.process_columns(
                    batch,
                    stream_id,
                    coalesce_stables=config.coalesce_stables,
                )
                applied_seq = seq
                out_rows = 0
                if buffer:
                    out = ColumnBatch.from_elements(buffer[:])
                    buffer.clear()
                    out.trace_id = tid
                    out_rows = len(out)
                    size, prebuilt = out.encoded_size()
                    header = emitted.to_bytes(8, "little")

                    def fill(view: memoryview) -> None:
                        view[0:8] = header
                        out.encode_into(view[8:], prebuilt)

                    out_ring.put_frame(shm_rings.OUT, 8 + size, fill)
                    emitted += out_rows
                flight.record(
                    "batch",
                    tid=tid,
                    seq=seq,
                    n=batch.n,
                    out=out_rows,
                    dur=perf_counter() - batch_started,
                    stable=merge.max_stable,
                )
                # Flush per beat, not per checkpoint: a fault site fires
                # before the checkpoint, and the postmortem must show the
                # victim's *final* batches, not its last durable ones.
                flight.flush(store)
                if emitter is not None:
                    # The worker half of the stitched trace: same tid the
                    # driver journaled at submit, stable across replay.
                    worker_tracer.record(
                        "span",
                        "shard-batch",
                        tid=tid,
                        n=batch.n,
                        dur=perf_counter() - batch_started,
                    )
                    observer.sample(clock=float(applied_seq))
                    delta = emitter.maybe_delta()
                    if delta is not None:
                        out_ring.put_pickle(
                            shm_rings.TELEM, delta, timeout=0
                        )
                # Fault sites fire at the batch boundary, *before* the
                # checkpoint: the killed batch is never durable, so
                # recovery always has a tail to replay.
                if plan is not None and plan.kill_after(shard, seq, floor):
                    os._exit(KILL_EXIT_CODE)
                if plan is not None and plan.stall_after(shard, seq, floor):
                    while True:  # simulated hang until the supervisor kills us
                        time.sleep(0.05)
                out_ring.put_pickle(
                    shm_rings.HB, ("hb", applied_seq, emitted), timeout=0
                )
                batches_since_ckpt += 1
                if batches_since_ckpt >= config.checkpoint_every or (
                    merge.max_stable > last_ckpt_stable
                ):
                    save_snapshot(store, merge, applied_seq, emitted)
                    flight.flush(store)
                    store.maybe_compact(min_dead_bytes=64 << 10)
                    batches_since_ckpt = 0
                    last_ckpt_stable = merge.max_stable
                    out_ring.put_pickle(
                        shm_rings.CKPT,
                        ("auto", applied_seq, emitted, store.total_bytes),
                        timeout=5.0,
                    )
            elif kind == shm_rings.CTRL:
                message = pickle.loads(payload)
                if message is None:
                    save_snapshot(store, merge, applied_seq, emitted)
                    flight.flush(store)
                    if emitter is not None:
                        observer.sample(clock=float(applied_seq))
                        delta = emitter.delta()
                        if delta is not None:
                            out_ring.put_pickle(
                                shm_rings.TELEM, delta, timeout=0
                            )
                    out_ring.put_pickle(shm_rings.DONE, merge.stats)
                    store.close()
                    return
                tag = message[0]
                if tag == "op":
                    _, seq, op = message
                    if seq <= applied_seq:
                        continue
                    if seq != applied_seq + 1:
                        out_ring.put_pickle(
                            shm_rings.HB,
                            ("gap", applied_seq + 1, seq),
                            timeout=5.0,
                        )
                        return
                    if op[0] == "attach":
                        merge.attach(op[1], op[2])
                    else:
                        merge.detach(op[1])
                    applied_seq = seq
                elif tag == "ckpt":
                    save_snapshot(store, merge, applied_seq, emitted)
                    flight.flush(store)
                    store.maybe_compact(min_dead_bytes=64 << 10)
                    batches_since_ckpt = 0
                    last_ckpt_stable = merge.max_stable
                    out_ring.put_pickle(
                        shm_rings.CKPT,
                        (message[1], applied_seq, emitted, store.total_bytes),
                        timeout=5.0,
                    )
                else:  # pragma: no cover - driver and worker in lockstep
                    raise ValueError(f"unknown control {message!r}")
            else:  # pragma: no cover - driver and worker in lockstep
                raise ValueError(f"unexpected frame kind {kind}")
    except RingClosedError:
        pass
    except BaseException:
        details = traceback.format_exc()
        delivered = False
        try:
            delivered = out_ring.put_pickle(
                shm_rings.ERR, details, timeout=5.0
            )
        except Exception:
            pass
        if not delivered:  # pragma: no cover - ERR frame could not land
            sys.stderr.write(f"[supervised shard {shard}] {details}\n")


#: Journal entries: ("batch", stream_id, ColumnBatch) or ("op", op_tuple).
_JournalEntry = Tuple


class SupervisedRuntime(ParallelRuntime):
    """A crash-recovering :class:`ParallelRuntime` (process + columnar).

    ::

        runtime = SupervisedRuntime(
            factory, num_shards=4, durable_dir="/var/lib/merge",
            max_restarts=3, fault_plan=None,
        ).start()

    Durable state lives under ``durable_dir/shard-<i>/``; a later
    ``SupervisedRuntime`` over the same directory resumes each shard
    from its snapshot (the driver-restart story is the `repro.ha`
    jumpstart seam — see docs/RESILIENCE.md).

    *fault_plan* injects deterministic faults for chaos testing; see
    :class:`~repro.resilience.faults.FaultPlan`.
    """

    def __init__(
        self,
        factory: ShardFactory,
        num_shards: int,
        *,
        durable_dir: str,
        checkpoint_every: int = 8,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: float = 2.0,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
        resume_timeout: float = 30.0,
        fault_plan: Optional[FaultPlan] = None,
        fsync: bool = False,
        queue_capacity: int = 64,
        coalesce_stables: bool = False,
        registry=None,
        ring_capacity: int = 1 << 20,
        telemetry_interval: float = 0.0,
        tracer=None,
        flight_capacity: int = 64,
    ):
        super().__init__(
            factory,
            num_shards,
            backend="process",
            queue_capacity=queue_capacity,
            coalesce_stables=coalesce_stables,
            registry=registry,
            envelope="columnar",
            ring_capacity=ring_capacity,
            telemetry_interval=telemetry_interval,
            tracer=tracer,
        )
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.durable_dir = durable_dir
        self.checkpoint_every = checkpoint_every
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.resume_timeout = resume_timeout
        self.fault_plan = fault_plan
        self.fsync = fsync
        self.flight_capacity = flight_capacity
        #: Completed recoveries, for introspection and chaos reports.
        self.recoveries: List[RecoveryRecord] = []
        n = num_shards
        self._journal: List[List[Tuple[int, _JournalEntry]]] = [
            [] for _ in range(n)
        ]
        self._next_seq = [1] * n
        self._delivered = [0] * n  # output elements handed downstream
        self._last_beat = [0.0] * n
        self._restarts = [0] * n
        self._needs_recovery = [False] * n
        self._recovery_reason = [""] * n
        self._last_ckpt_ack: List[Optional[Tuple]] = [None] * n
        self._delayed: List[Optional[Tuple[int, _JournalEntry]]] = [None] * n
        self._worker_done = [False] * n
        self._ckpt_ident = 0
        self._context = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SupervisedRuntime":
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        self._init_telemetry()
        self._context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        os.makedirs(self.durable_dir, exist_ok=True)
        self._in_rings = [None] * self.num_shards  # type: ignore[list-item]
        self._out_rings = [None] * self.num_shards  # type: ignore[list-item]
        self._processes = [None] * self.num_shards  # type: ignore[list-item]
        for shard in range(self.num_shards):
            self._spawn(shard)
        for shard in range(self.num_shards):
            resumed = self._await_resumed(shard)
            if resumed is None:
                self._abort()
                raise ShardError(
                    shard, "worker failed to announce itself at startup"
                )
            applied, emitted = resumed
            # Resuming over an existing durable_dir (driver restart):
            # pick the sequence numbering and output coordinate back up
            # where the snapshot left them.
            self._next_seq[shard] = applied + 1
            self._delivered[shard] = emitted
        return self

    def _store_dir(self, shard: int) -> str:
        return os.path.join(self.durable_dir, f"shard-{shard}")

    def _spawn(self, shard: int) -> None:
        """Create fresh rings and one worker process for *shard*."""
        in_ring = ShmRing(self.ring_capacity)
        out_ring = ShmRing(self.ring_capacity)
        config = _WorkerConfig(
            shard=shard,
            factory=self.factory,
            store_dir=self._store_dir(shard),
            coalesce_stables=self.coalesce_stables,
            heartbeat_interval=self.heartbeat_interval,
            checkpoint_every=self.checkpoint_every,
            fault_plan=self.fault_plan,
            # A respawned worker must not re-trigger the fault that
            # killed it while replaying: sites at or below the highest
            # delivered sequence are spent.
            fault_floor=self._next_seq[shard] - 1,
            fsync=self.fsync,
            telemetry_interval=self.telemetry_interval,
            flight_capacity=self.flight_capacity,
        )
        process = self._context.Process(
            target=_supervised_shard_loop,
            args=(config, in_ring, out_ring),
            daemon=True,
        )
        process.start()
        in_ring.set_liveness(process.is_alive)
        out_ring.set_liveness(process.is_alive)
        self._in_rings[shard] = in_ring
        self._out_rings[shard] = out_ring
        self._processes[shard] = process
        self._last_beat[shard] = monotonic()
        self._last_ckpt_ack[shard] = None
        self._delayed[shard] = None

    def _await_resumed(self, shard: int) -> Optional[Tuple[int, int]]:
        """Wait for the worker's ``("resumed", applied, emitted)``."""
        deadline = monotonic() + self.resume_timeout
        ring = self._out_rings[shard]
        while monotonic() < deadline:
            try:
                frame = ring.get(timeout=0.05)
            except RingClosedError:
                return None
            if frame is None:
                continue
            kind, payload = frame
            if kind == shm_rings.HB:
                message = pickle.loads(payload)
                if message[0] == "resumed":
                    self._last_beat[shard] = monotonic()
                    return message[1], message[2]
            elif kind == shm_rings.ERR:
                self._recovery_reason[shard] = pickle.loads(payload)
                return None
        return None

    # ------------------------------------------------------------------
    # Health & recovery
    # ------------------------------------------------------------------

    def _shard_unhealthy(self, shard: int) -> bool:
        if self._worker_done[shard]:
            return False
        process = self._processes[shard]
        if process is None or not process.is_alive():
            self._recovery_reason[shard] = self._recovery_reason[shard] or (
                f"worker process died (exitcode {getattr(process, 'exitcode', None)})"
            )
            return True
        if monotonic() - self._last_beat[shard] > self.heartbeat_timeout:
            self._recovery_reason[shard] = (
                f"heartbeat stalled for more than {self.heartbeat_timeout}s"
            )
            return True
        return False

    def _service(self) -> None:
        """Recover every shard flagged unhealthy (called from poll and
        the delivery wait loops)."""
        for shard in range(self.num_shards):
            if self._worker_done[shard]:
                continue
            if self._needs_recovery[shard] or self._shard_unhealthy(shard):
                self._recover(shard)

    def _read_flight(self, shard: int) -> List[dict]:
        """The dead worker's last flight-recorder flush (postmortem).

        Only called once the worker process is confirmed dead — the
        store is single-writer, and the respawned incarnation only opens
        it after this read.
        """
        try:
            store = StateStore(
                self._store_dir(shard), fsync=False, name=f"flight-{shard}"
            )
            try:
                return FlightRecorder.read(store)
            finally:
                store.close()
        except Exception:  # pragma: no cover - no store yet / torn dir
            return []

    def _recover(self, shard: int) -> None:
        """Kill the remnants, respawn from the last durable checkpoint,
        and replay the journal tail.  Raises :class:`ShardError` once
        ``max_restarts`` is exhausted."""
        started = perf_counter()
        reason = self._recovery_reason[shard] or "unhealthy"
        registry = self.registry
        while True:
            if self._restarts[shard] >= self.max_restarts:
                self._abort()
                raise ShardError(
                    shard,
                    f"exceeded max_restarts={self.max_restarts}; "
                    f"last failure: {reason}",
                )
            self._restarts[shard] += 1
            attempt = self._restarts[shard]
            if registry is not None:
                registry.counter(
                    "restarts_total", {"shard": shard}
                ).inc()
            time.sleep(
                min(
                    self.restart_backoff_cap,
                    self.restart_backoff * (2 ** (attempt - 1)),
                )
            )
            # Salvage whatever the dying worker managed to publish (the
            # output dedup makes re-delivery after replay harmless).
            try:
                while self._drain_shm_ring(shard, timeout=0):
                    pass
            except RingClosedError:  # pragma: no cover - ring torn down
                pass
            process = self._processes[shard]
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - stuck in kernel
                    process.kill()
                    process.join(timeout=5)
            self._in_rings[shard].destroy()
            self._out_rings[shard].destroy()
            # The worker is confirmed dead: its StateStore has a single
            # writer again, so the driver can read the victim's last
            # flight-recorder flush for the postmortem record.
            flight = self._read_flight(shard)
            self._needs_recovery[shard] = False
            self._recovery_reason[shard] = ""
            self._spawn(shard)
            resumed = self._await_resumed(shard)
            if resumed is None:
                reason = self._recovery_reason[shard] or (
                    "respawned worker failed to resume"
                )
                continue
            resumed_seq, _ = resumed
            replayed_entries = 0
            replayed_elements = 0
            ok = True
            for seq, entry in self._journal[shard]:
                if seq <= resumed_seq:
                    continue
                if not self._put_entry(shard, seq, entry):
                    reason = self._recovery_reason[shard] or (
                        "worker died during journal replay"
                    )
                    ok = False
                    break
                replayed_entries += 1
                if entry[0] == "batch":
                    replayed_elements += len(entry[2])
            if not ok:
                continue
            break
        seconds = perf_counter() - started
        record = RecoveryRecord(
            shard=shard,
            attempt=self._restarts[shard],
            reason=reason,
            resumed_seq=resumed_seq,
            replayed_entries=replayed_entries,
            replayed_elements=replayed_elements,
            seconds=seconds,
            flight=flight,
        )
        self.recoveries.append(record)
        if registry is not None:
            registry.counter(
                "replayed_elements_total", {"shard": shard}
            ).inc(replayed_elements)
            registry.histogram("recovery_seconds").observe(seconds)

    # ------------------------------------------------------------------
    # Sequenced delivery
    # ------------------------------------------------------------------

    def broadcast_attach(self, stream_id, guarantee_from=None) -> None:
        from repro.temporal.time import MINUS_INFINITY

        self._require_open()
        if guarantee_from is None:
            guarantee_from = MINUS_INFINITY
        for shard in range(self.num_shards):
            self._sequence(shard, ("op", ("attach", stream_id, guarantee_from)))

    def broadcast_detach(self, stream_id) -> None:
        self._require_open()
        for shard in range(self.num_shards):
            self._sequence(shard, ("op", ("detach", stream_id)))

    def submit(self, shard: int, stream_id, elements) -> None:
        self._require_open()
        if not len(elements):
            return
        self.submitted += len(elements)
        batch = (
            elements
            if isinstance(elements, ColumnBatch)
            else ColumnBatch.from_elements(list(elements))
        )
        if self.registry is not None:
            labels = {"shard": shard}
            self.registry.counter(
                "shard_elements_submitted_total", labels
            ).inc(len(batch))
        self._sequence(shard, ("batch", stream_id, batch))

    def _sequence(self, shard: int, entry: _JournalEntry) -> None:
        """Assign the next sequence number, journal, and deliver."""
        seq = self._next_seq[shard]
        self._next_seq[shard] = seq + 1
        self._journal[shard].append((seq, entry))
        if self._needs_recovery[shard] or self._shard_unhealthy(shard):
            # The entry is journaled; recovery's replay delivers it.
            self._recover(shard)
            return
        plan = self.fault_plan
        if plan is not None:
            if plan.drop_frame(shard, seq):
                return
            if plan.delay_frame(shard, seq):
                self._delayed[shard] = (seq, entry)
                return
        ok = self._put_entry(shard, seq, entry)
        if ok and plan is not None and plan.duplicate_frame(shard, seq):
            ok = self._put_entry(shard, seq, entry)
        if ok and self._delayed[shard] is not None:
            late_seq, late_entry = self._delayed[shard]
            self._delayed[shard] = None
            ok = self._put_entry(shard, late_seq, late_entry)
        if not ok:
            self._recover(shard)

    def _put_entry(
        self, shard: int, seq: int, entry: _JournalEntry
    ) -> bool:
        """Encode one journal entry into *shard*'s input ring.

        Returns False (instead of spinning) when the worker needs
        recovery — dead, ring torn, heartbeat stalled with a full ring.
        """
        ring = self._in_rings[shard]
        try:
            if entry[0] == "batch":
                _, stream_id, batch = entry
                if self.telemetry is not None:
                    # The worker derives the same id from (shard, seq),
                    # so submit/output pairing survives crash + replay.
                    self.telemetry.note_submit(make_trace_id(shard, seq))
                size, prebuilt = batch.encoded_size()
                sid_blob = pickle.dumps(stream_id, _PICKLE_PROTOCOL)
                frame_size = 10 + len(sid_blob) + size
                seq_header = seq.to_bytes(8, "little")

                def fill(view: memoryview) -> None:
                    view[0:8] = seq_header
                    view[8:10] = len(sid_blob).to_bytes(2, "little")
                    view[10 : 10 + len(sid_blob)] = sid_blob
                    batch.encode_into(view[10 + len(sid_blob) :], prebuilt)

                while not ring.put_frame(
                    shm_rings.BATCH, frame_size, fill, timeout=0.05
                ):
                    self._drain_shm_outputs()
                    if self._needs_recovery[shard] or self._shard_unhealthy(
                        shard
                    ):
                        return False
            else:
                message = ("op", seq, entry[1])
                while not ring.put_pickle(
                    shm_rings.CTRL, message, timeout=0.05
                ):
                    self._drain_shm_outputs()
                    if self._needs_recovery[shard] or self._shard_unhealthy(
                        shard
                    ):
                        return False
        except RingClosedError:
            return False
        return True

    def _put_control(self, shard: int, message) -> bool:
        """Send an un-sequenced control frame (checkpoint request or the
        shutdown sentinel)."""
        ring = self._in_rings[shard]
        try:
            while not ring.put_pickle(shm_rings.CTRL, message, timeout=0.05):
                self._drain_shm_outputs()
                if self._needs_recovery[shard] or self._shard_unhealthy(shard):
                    return False
        except RingClosedError:
            return False
        return True

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _drain_shm_ring(self, shard: int, timeout: float) -> bool:
        if self._out_rings[shard] is None:  # pragma: no cover - torn down
            return False
        try:
            frame = self._out_rings[shard].get(timeout=timeout)
        except RingClosedError:
            return False
        if frame is None:
            return False
        self._last_beat[shard] = monotonic()
        kind, payload = frame
        if kind == shm_rings.OUT:
            emitted_before = int.from_bytes(payload[:8], "little")
            batch = ColumnBatch.decode(memoryview(payload)[8:])
            if self.telemetry is not None and batch.trace_id:
                self.telemetry.note_output(batch.trace_id)
            count = len(batch)
            skip = self._delivered[shard] - emitted_before
            if skip < count:
                self._pending.append(
                    (shard, batch if skip <= 0 else batch.slice(skip, count))
                )
            self._delivered[shard] = max(
                self._delivered[shard], emitted_before + count
            )
        elif kind == shm_rings.HB:
            message = pickle.loads(payload)
            if message[0] == "gap":
                self._needs_recovery[shard] = True
                self._recovery_reason[shard] = (
                    f"sequence gap: worker expected {message[1]}, "
                    f"got {message[2]}"
                )
        elif kind == shm_rings.TELEM:
            if self.telemetry is not None:
                self.telemetry.merge(pickle.loads(payload))
                if self.on_telemetry is not None:
                    self.on_telemetry(shard)
        elif kind == shm_rings.CKPT:
            message = pickle.loads(payload)
            self._note_checkpoint(shard, message)
        elif kind == shm_rings.DONE:
            self._final_stats[shard] = pickle.loads(payload)
        elif kind == shm_rings.ERR:
            self._needs_recovery[shard] = True
            self._recovery_reason[shard] = pickle.loads(payload)
        return True

    def _note_checkpoint(self, shard: int, message: Tuple) -> None:
        """A durable checkpoint landed: trim the journal behind it."""
        _, applied_seq, _emitted, store_bytes = message
        self._last_ckpt_ack[shard] = message
        journal = self._journal[shard]
        cut = 0
        while cut < len(journal) and journal[cut][0] <= applied_seq:
            cut += 1
        if cut:
            del journal[:cut]
        if self.registry is not None:
            self.registry.gauge(
                "state_store_bytes", {"store": f"shard-{shard}"}
            ).set(store_bytes)

    def poll(self):
        self._require_started()
        if not self._closed:
            self._service()
        return super().poll()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def _flush_shard(self, shard: int) -> None:
        """Checkpoint handshake guaranteeing the worker has applied (and
        made durable) every journaled frame — this is what turns a
        trailing dropped/delayed frame into a recovery instead of silent
        loss."""
        while True:
            if self._needs_recovery[shard] or self._shard_unhealthy(shard):
                self._recover(shard)
                continue
            target = self._next_seq[shard] - 1
            self._ckpt_ident += 1
            ident = f"flush-{self._ckpt_ident}"
            if not self._put_control(shard, ("ckpt", ident)):
                self._recover(shard)
                continue
            deadline = monotonic() + max(self.heartbeat_timeout, 10.0)
            ack: Optional[Tuple] = None
            while monotonic() < deadline:
                self._drain_shm_ring(shard, timeout=0.05)
                if self._needs_recovery[shard] or self._shard_unhealthy(shard):
                    break
                last = self._last_ckpt_ack[shard]
                if last is not None and last[0] == ident:
                    ack = last
                    break
            if ack is None:
                self._recover(shard)
                continue
            if ack[1] == target:
                return
            # The worker never saw the journal's tail (a dropped or
            # still-delayed final frame): force a replay.
            self._needs_recovery[shard] = True
            self._recovery_reason[shard] = (
                f"flush found worker at seq {ack[1]}, journal at {target}"
            )
            self._recover(shard)

    def close(self) -> List[Any]:
        self._require_started()
        if self._closed:
            return self._stats
        self._closed = True
        stats: List[Any] = [None] * self.num_shards
        for shard in range(self.num_shards):
            while shard not in self._final_stats:
                self._flush_shard(shard)
                if not self._put_control(shard, None):
                    self._recover(shard)
                    continue
                deadline = monotonic() + max(self.heartbeat_timeout, 10.0)
                while (
                    shard not in self._final_stats
                    and monotonic() < deadline
                ):
                    self._drain_shm_ring(shard, timeout=0.05)
                    if self._needs_recovery[shard]:
                        break
                if shard not in self._final_stats:
                    # Died between flush and DONE; recover and retry the
                    # shutdown handshake from the checkpoint.
                    self._recover(shard)
            stats[shard] = self._final_stats[shard]
            self._worker_done[shard] = True
        self._join_or_escalate(stats)
        for ring in (*self._in_rings, *self._out_rings):
            if ring is not None:
                ring.destroy()
        self._in_rings = []
        self._out_rings = []
        self._stats = stats
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def restarts(self) -> List[int]:
        """Restart count per shard."""
        return list(self._restarts)

    @property
    def replayed_elements(self) -> int:
        return sum(r.replayed_elements for r in self.recoveries)

    def journal_depth(self, shard: int) -> int:
        """Untrimmed journal entries for *shard* (drops to ~0 after each
        checkpoint ack)."""
        return len(self._journal[shard])
