"""Deterministic, seeded fault injection for supervised merge runs.

A :class:`FaultPlan` names, per shard, the input-journal sequence numbers
at which something goes wrong.  The plan is plain frozen data — picklable
(workers carry their slice across the fork) and seeded, so a chaos run is
exactly reproducible from ``(seed, workload)``:

* **kills** — the worker calls ``os._exit`` right after applying the
  batch (a crash at a batch boundary: state since the last checkpoint is
  lost, the supervisor must restore + replay);
* **stalls** — the worker stops reading input and sending heartbeats (a
  hang: detected by heartbeat timeout, not process death);
* **drops** — the driver never delivers the frame (the worker detects the
  sequence gap on the next frame and asks to be recovered);
* **duplicates** — the driver delivers the frame twice (the worker's
  sequence gate must absorb it);
* **delays** — the driver delivers the frame *after* its successor (a
  reorder; the early successor trips the same gap detection).

Worker-side faults (kills/stalls) take a *floor*: a respawned worker
ignores fault sites at or below the highest sequence the driver had
already delivered when it respawned, so a deterministic replay does not
re-trigger the crash that caused it.  Driver-side faults are applied
only on first delivery, never during recovery replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

__all__ = ["FaultPlan", "KILL_EXIT_CODE"]

#: The exit code a fault-killed worker dies with (recognizable in logs).
KILL_EXIT_CODE = 23

Site = Tuple[int, int]  # (shard, seq)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault sites for one supervised run (all sets of
    ``(shard, seq)`` pairs; seq is the per-shard journal sequence)."""

    kills: FrozenSet[Site] = field(default_factory=frozenset)
    stalls: FrozenSet[Site] = field(default_factory=frozenset)
    drops: FrozenSet[Site] = field(default_factory=frozenset)
    duplicates: FrozenSet[Site] = field(default_factory=frozenset)
    delays: FrozenSet[Site] = field(default_factory=frozenset)

    @classmethod
    def random(
        cls,
        seed: int,
        num_shards: int,
        horizon: int,
        *,
        kills: int = 1,
        stalls: int = 0,
        drops: int = 0,
        duplicates: int = 0,
        delays: int = 0,
    ) -> "FaultPlan":
        """Draw fault sites uniformly over ``shard x [1, horizon]``.

        *horizon* is the expected number of batches each shard will see;
        sites past the actual run length simply never fire.  Sites are
        drawn without replacement so one batch suffers one fault.
        """
        if horizon < 1:
            raise ValueError("horizon must be positive")
        rng = random.Random(seed)
        sites = [
            (shard, seq)
            for shard in range(num_shards)
            for seq in range(1, horizon + 1)
        ]
        rng.shuffle(sites)
        wanted = kills + stalls + drops + duplicates + delays
        if wanted > len(sites):
            raise ValueError(
                f"{wanted} fault sites requested but only {len(sites)} "
                f"(shard, seq) cells exist"
            )
        picked = iter(sites)
        take = lambda n: frozenset(next(picked) for _ in range(n))  # noqa: E731
        return cls(
            kills=take(kills),
            stalls=take(stalls),
            drops=take(drops),
            duplicates=take(duplicates),
            delays=take(delays),
        )

    # -- worker side (floor-gated) --------------------------------------

    def kill_after(self, shard: int, seq: int, floor: int = 0) -> bool:
        return seq > floor and (shard, seq) in self.kills

    def stall_after(self, shard: int, seq: int, floor: int = 0) -> bool:
        return seq > floor and (shard, seq) in self.stalls

    # -- driver side (first delivery only) ------------------------------

    def drop_frame(self, shard: int, seq: int) -> bool:
        return (shard, seq) in self.drops

    def duplicate_frame(self, shard: int, seq: int) -> bool:
        return (shard, seq) in self.duplicates

    def delay_frame(self, shard: int, seq: int) -> bool:
        return (shard, seq) in self.delays

    @property
    def is_empty(self) -> bool:
        return not (
            self.kills or self.stalls or self.drops
            or self.duplicates or self.delays
        )

    def describe(self) -> dict:
        """JSON-ready summary (embedded in chaos reports)."""
        return {
            "kills": sorted(self.kills),
            "stalls": sorted(self.stalls),
            "drops": sorted(self.drops),
            "duplicates": sorted(self.duplicates),
            "delays": sorted(self.delays),
        }
