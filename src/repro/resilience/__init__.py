"""Crash recovery for merge plans (``repro.resilience``).

The paper's premise is that stream consumers survive the failure of any
physical source; this package makes the *merge process itself* crash
recoverable:

* :class:`~repro.resilience.store.StateStore` — a dependency-free
  log-structured key/value store (append-only CRC'd segments, in-memory
  keydir, torn-tail truncation, crash-safe compaction);
* :func:`~repro.resilience.snapshot.save_snapshot` /
  :func:`~repro.resilience.snapshot.load_snapshot` — durable LMerge
  state snapshots (per-input frontiers, stats, In2T/In3T contents);
* :class:`~repro.resilience.durable.DurableCheckpointLog` — the
  ``repro.ha`` jumpstart checkpoints, persisted;
* :class:`~repro.resilience.supervisor.SupervisedRuntime` — heartbeated,
  journaled shard workers with bounded restart-and-replay recovery;
* :class:`~repro.resilience.faults.FaultPlan` and
  :mod:`~repro.resilience.chaos` — seeded fault injection and the
  equivalence-checked chaos matrix that proves the above.

See docs/RESILIENCE.md for the full design.
"""

from repro.resilience.durable import DurableCheckpointLog
from repro.resilience.faults import KILL_EXIT_CODE, FaultPlan
from repro.resilience.snapshot import (
    SNAPSHOT_KEY,
    load_snapshot,
    save_snapshot,
)
from repro.resilience.store import (
    CorruptSegmentError,
    StateStore,
    StateStoreError,
)
from repro.resilience.supervisor import RecoveryRecord, SupervisedRuntime

__all__ = [
    "CorruptSegmentError",
    "DurableCheckpointLog",
    "FaultPlan",
    "KILL_EXIT_CODE",
    "RecoveryRecord",
    "SNAPSHOT_KEY",
    "StateStore",
    "StateStoreError",
    "SupervisedRuntime",
    "load_snapshot",
    "save_snapshot",
]
