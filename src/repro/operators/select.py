"""Stateless selection and projection."""

from __future__ import annotations

from typing import Callable, List

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert
from repro.temporal.event import Payload
from repro.temporal.time import Timestamp


class Filter(Operator):
    """Payload-predicate selection.

    Passes every element whose payload satisfies the predicate; adjusts
    for filtered-out events are filtered too (they can never name an event
    downstream has seen), and punctuation always passes.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "preserves every guarantee (only removes elements)"

    kind = "filter"

    def __init__(self, predicate: Callable[[Payload], bool], name: str = "filter"):
        super().__init__(name)
        self.predicate = predicate

    def on_insert(self, element: Insert, port: int) -> None:
        if self.predicate(element.payload):
            self.emit(element)

    def on_adjust(self, element: Adjust, port: int) -> None:
        if self.predicate(element.payload):
            self.emit(element)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        from repro.temporal.elements import Stable

        self.emit(Stable(vc))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        # Selection preserves every guarantee: it only removes elements.
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]


class MapPayload(Operator):
    """Payload projection/transformation.

    *injective* declares whether distinct payloads stay distinct — the
    key property ``(Vs, payload)`` survives only then (Section IV-G).
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "injective: preserves all; non-injective: forfeits the (Vs, payload) key"

    kind = "map"

    def __init__(
        self,
        fn: Callable[[Payload], Payload],
        injective: bool = False,
        name: str = "map",
    ):
        super().__init__(name)
        self.fn = fn
        self.injective = injective

    def on_insert(self, element: Insert, port: int) -> None:
        self.emit(Insert(self.fn(element.payload), element.vs, element.ve))

    def on_adjust(self, element: Adjust, port: int) -> None:
        self.emit(
            Adjust(self.fn(element.payload), element.vs, element.v_old, element.ve)
        )

    def on_stable(self, vc: Timestamp, port: int) -> None:
        from repro.temporal.elements import Stable

        self.emit(Stable(vc))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        if not input_properties:
            return StreamProperties.unknown()
        properties = input_properties[0]
        if self.injective:
            return properties
        # A non-injective projection can collide payloads: the key (and,
        # under a multiset TDB, uniqueness of duplicates) is lost.
        return properties.weaken(key_vs_payload=False)
