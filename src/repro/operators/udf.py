"""User-defined selection functions with value-dependent cost.

The Figure 10 workload: two semantically identical plans whose UDFs are
expensive on *different* payload-value bands — ``UDF0`` slow on small X,
``UDF1`` slow on large X — so the optimal plan flips whenever the data
distribution shifts.  :class:`ValueBandCost` is the cost model consumed by
:class:`~repro.engine.simulation.SimulatedPlan` (simulated seconds per
element); :class:`UdfFilter` is the in-plan operator, which also burns
real CPU when ``spin`` is enabled so wall-clock benches can exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.engine.operator import Operator
from repro.lmerge.feedback import FeedbackSignal
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Element, Insert, Stable
from repro.temporal.event import Payload
from repro.temporal.time import Timestamp


@dataclass(frozen=True)
class ValueBandCost:
    """Per-element cost (simulated seconds), split at a value threshold.

    ``value_of(payload)`` extracts X; elements with ``X < threshold`` cost
    ``low_band_cost``, others ``high_band_cost``.  UDF0 of the paper is
    ``ValueBandCost(threshold, expensive, cheap)`` (slow on small X) and
    UDF1 the reverse.
    """

    threshold: float
    below_cost: float
    above_cost: float
    value_of: Callable[[Payload], float] = lambda payload: payload[0]

    def cost(self, element: Element) -> float:
        if isinstance(element, Stable):
            return 0.0
        x = self.value_of(element.payload)
        return self.below_cost if x < self.threshold else self.above_cost


class UdfFilter(Operator):
    """Selection by an arbitrary (expensive) user predicate.

    Cooperates with feedback (Section V-D): once the horizon passes an
    element's relevance the element is dropped without evaluating the
    predicate — it can no longer influence the merged output, which will
    discard it anyway as already-frozen.  ``cost_model``
    makes the expense visible to the simulator; ``spin`` > 0 burns that
    many real microseconds per evaluated element for wall-clock benches.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "preserves every guarantee (selection; feedback drops are key-safe)"

    kind = "udf"

    def __init__(
        self,
        predicate: Callable[[Payload], bool],
        cost_model: Optional[ValueBandCost] = None,
        spin: float = 0.0,
        name: str = "udf",
    ):
        super().__init__(name)
        self.predicate = predicate
        self.cost_model = cost_model
        self.spin = spin
        self._horizon: Timestamp = float("-inf")
        self.evaluated = 0
        self.skipped = 0

    # -- cost ---------------------------------------------------------------

    def cost(self, element: Element) -> float:
        """Simulated seconds this element would cost (0 when skippable)."""
        if self._skippable(element) or self.cost_model is None:
            return 0.0
        return self.cost_model.cost(element)

    def _skippable(self, element: Element) -> bool:
        if isinstance(element, Insert):
            return element.ve < self._horizon
        if isinstance(element, Adjust):
            return max(element.v_old, element.ve) < self._horizon
        return False

    def _evaluate(self, payload: Payload) -> bool:
        self.evaluated += 1
        if self.spin > 0.0:
            import time

            deadline = time.perf_counter() + self.spin * 1e-6
            while time.perf_counter() < deadline:
                pass
        return self.predicate(payload)

    # -- element handlers -----------------------------------------------------

    def on_insert(self, element: Insert, port: int) -> None:
        if self._skippable(element):
            self.skipped += 1
            return
        if self._evaluate(element.payload):
            self.emit(element)

    def on_adjust(self, element: Adjust, port: int) -> None:
        if self._skippable(element):
            self.skipped += 1
            return
        if self._evaluate(element.payload):
            self.emit(element)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        self.emit(Stable(vc))

    def on_feedback(self, signal: FeedbackSignal) -> None:
        if signal.horizon > self._horizon:
            self._horizon = signal.horizon
        self.propagate_feedback(signal)

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        # A selection preserves guarantees — but with feedback enabled the
        # operator may *drop* elements other replicas keep, which is
        # exactly the missing-element regime of Section V-C; the merge's
        # algorithm choice is unaffected (the key property survives).
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]
