"""Streaming operators for the mini-DSMS.

These are the query-plan building blocks the paper composes around LMerge:

* :class:`StreamSource` — replayable source with stipulated properties;
* :class:`Filter` / :class:`MapPayload` — stateless select/project;
* :class:`Union` — the multi-input merge-by-arrival that *creates* disorder;
* :class:`TemporalJoin` — symmetric interval join (revises its output when
  inputs are revised);
* :class:`WindowedCount` / :class:`GroupedCount` / :class:`TopK` — the
  aggregates of Section IV-G whose outputs exhibit the R0/R1/R2/R3
  properties (each in ``CONSERVATIVE`` or ``AGGRESSIVE`` mode);
* :class:`Cleanse` — the buffering reorder operator of Section VI-D used
  by the C+LMR1 enforcement strategy;
* :class:`AlterLifetime` — lifetime modification (the paper's adjust()
  factory when chained after an aggregate);
* :class:`UdfFilter` — a selection UDF with a value-dependent cost model
  (the Figure 10 plan-switching workload);
* :class:`HashPartition` / :class:`ShardUnion` — CTI-aligned exchange
  operators for partition-parallel plans (stables broadcast on the way
  out, min-frontier punctuation on the way back).
"""

from repro.operators.source import StreamSource
from repro.operators.select import Filter, MapPayload
from repro.operators.union import Union
from repro.operators.join import TemporalJoin
from repro.operators.aggregate import (
    AggregateMode,
    GroupedCount,
    TopK,
    WindowedCount,
)
from repro.operators.cleanse import Cleanse
from repro.operators.alter_lifetime import AlterLifetime
from repro.operators.udf import UdfFilter, ValueBandCost
from repro.operators.sample import Sample
from repro.operators.exchange import (
    HashPartition,
    ShardPort,
    ShardUnion,
    partition_batch,
)

__all__ = [
    "StreamSource",
    "Filter",
    "MapPayload",
    "Union",
    "TemporalJoin",
    "AggregateMode",
    "WindowedCount",
    "GroupedCount",
    "TopK",
    "Cleanse",
    "AlterLifetime",
    "UdfFilter",
    "ValueBandCost",
    "Sample",
    "HashPartition",
    "ShardPort",
    "ShardUnion",
    "partition_batch",
]
