"""Lifetime modification.

StreamInsight's AlterLifetime: rewrites event validity intervals, e.g.
clipping every event to a fixed duration.  Chained after an aggregate it
is the paper's recipe for generating adjust()-bearing workloads ("a simple
example of such a sub-query is aggregate (count) followed by a lifetime
modification", Section VI-B).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import Timestamp


class AlterLifetime(Operator):
    """Set every event's lifetime to ``[Vs, Vs + duration)``.

    A custom ``duration_fn(payload, vs) -> duration`` may vary the
    duration per event.  Incoming end-time adjusts are absorbed (the
    output lifetime does not depend on the input's Ve); cancels propagate.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "preserves every guarantee (Vs and payload untouched)"

    kind = "alter-lifetime"

    def __init__(
        self,
        duration: Optional[int] = None,
        duration_fn: Optional[Callable[..., int]] = None,
        name: str = "alter-lifetime",
    ):
        super().__init__(name)
        if (duration is None) == (duration_fn is None):
            raise ValueError("provide exactly one of duration / duration_fn")
        if duration is not None and duration < 1:
            raise ValueError("duration must be positive")
        self._duration = duration
        self._duration_fn = duration_fn

    def _ve_for(self, payload, vs: Timestamp) -> Timestamp:
        if self._duration is not None:
            return vs + self._duration
        return vs + self._duration_fn(payload, vs)

    def on_insert(self, element: Insert, port: int) -> None:
        self.emit(Insert(element.payload, element.vs, self._ve_for(element.payload, element.vs)))

    def on_adjust(self, element: Adjust, port: int) -> None:
        if element.is_cancel:
            out_ve = self._ve_for(element.payload, element.vs)
            self.emit(Adjust(element.payload, element.vs, out_ve, element.vs))
        # Non-cancel end-time changes are absorbed: our output end is a
        # function of Vs and payload only.

    def on_stable(self, vc: Timestamp, port: int) -> None:
        self.emit(Stable(vc))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        # Vs values and payloads are untouched: every guarantee survives.
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]
