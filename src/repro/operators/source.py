"""Stream sources."""

from __future__ import annotations

from typing import List, Optional

from repro.engine.operator import Operator
from repro.lmerge.feedback import FeedbackSignal
from repro.streams.properties import StreamProperties, measure_properties
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Adjust, Insert


class StreamSource(Operator):
    """Replays a :class:`~repro.streams.stream.PhysicalStream` downstream.

    *properties* are the guarantees the source stipulates (Section IV-G
    route 1); when omitted they are measured from the stream itself, which
    is sound for replay but unavailable to a real compile-time optimizer —
    pass explicit properties to model that case.

    Responds to feedback by skipping not-yet-played elements that only
    matter before the horizon (the upstream end of Section V-D
    fast-forwarding).
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "stipulates the source's declared (or measured) properties"

    kind = "source"

    def __init__(
        self,
        stream: PhysicalStream,
        properties: Optional[StreamProperties] = None,
        name: str = "source",
    ):
        super().__init__(name)
        self.stream = stream
        self._properties = (
            properties if properties is not None else measure_properties(stream)
        )
        self._cursor = 0
        self._horizon = float("-inf")
        self.skipped = 0

    def play(self, limit: Optional[int] = None) -> int:
        """Emit up to *limit* elements (all remaining when None).

        Returns the number of elements emitted (skipped ones count toward
        *limit* but are not emitted).
        """
        emitted = 0
        budget = len(self.stream) if limit is None else limit
        while self._cursor < len(self.stream) and budget > 0:
            element = self.stream[self._cursor]
            self._cursor += 1
            budget -= 1
            if self._skippable(element):
                self.skipped += 1
                continue
            self.emit(element)
            emitted += 1
        return emitted

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.stream)

    def _skippable(self, element) -> bool:
        if isinstance(element, Insert):
            return element.ve < self._horizon
        if isinstance(element, Adjust):
            return max(element.v_old, element.ve) < self._horizon
        return False

    def on_feedback(self, signal: FeedbackSignal) -> None:
        if signal.horizon > self._horizon:
            self._horizon = signal.horizon
        # Sources have no upstream; the signal stops here.

    def derive_properties(self, input_properties: List[StreamProperties]):
        return self._properties
