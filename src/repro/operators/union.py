"""Multi-input Union.

The paper's Section I observation: gathering data from multiple sources
into one stream with a Union produces disorder *even when every input is
in order*, because elements interleave by arrival.  Data elements are
forwarded as they arrive; punctuation is the minimum over the inputs'
stable points (the union can only promise what all inputs promise).
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.time import MINUS_INFINITY, Timestamp


class Union(Operator):
    """Arrival-order union of *num_inputs* streams."""

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "meet of inputs, then forfeits order, determinism, and the key"

    kind = "union"

    def __init__(self, num_inputs: int, name: str = "union"):
        super().__init__(name)
        if num_inputs < 1:
            raise ValueError("union needs at least one input")
        self.num_inputs = num_inputs
        self._stables: Dict[int, Timestamp] = {
            port: MINUS_INFINITY for port in range(num_inputs)
        }
        self._emitted_stable: Timestamp = MINUS_INFINITY

    def on_insert(self, element: Insert, port: int) -> None:
        self.emit(element)

    def on_adjust(self, element: Adjust, port: int) -> None:
        self.emit(element)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        if port not in self._stables:
            raise ValueError(f"unexpected port {port} (configured {self.num_inputs})")
        if vc > self._stables[port]:
            self._stables[port] = vc
        frontier = min(self._stables.values())
        if frontier > self._emitted_stable:
            self._emitted_stable = frontier
            self.emit(Stable(frontier))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        merged = input_properties[0]
        for properties in input_properties[1:]:
            merged = merged.meet(properties)
        # Arrival interleaving destroys ordering; payload keys may collide
        # across inputs, so the key property is lost too.
        return merged.weaken(
            ordered=False,
            strictly_increasing=False,
            deterministic_same_vs_order=False,
            key_vs_payload=False,
        )

    def memory_bytes(self) -> int:
        return 8 * len(self._stables)
