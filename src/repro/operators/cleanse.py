"""The Cleanse (reorder) operator of Section VI-D.

Accepts a disordered, revision-bearing stream; buffers every event until a
stable() fully freezes it; then releases frozen events in timestamp order
as plain inserts.  The output is ordered and insert-only with a
deterministic same-Vs order — i.e. Cleanse *enforces* the R1 restriction,
enabling the cheap LMR1 downstream.

The buffer is an ordered index (red-black tree keyed on ``(Vs, payload)``)
because releases must come out in timestamp order; this is also what makes
the enforcement strategy's cost profile realistic — every element pays a
tree operation in its Cleanse *and* is then re-processed by the merge.

The price, measured in Figure 7: an event is withheld until the stable
point passes its *end* time (and no smaller-Vs event is still pending), so
memory and latency grow with event lifetimes and the amount of potential
disorder.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.structures.rbtree import RedBlackTree
from repro.structures.sizing import (
    TIMESTAMP_BYTES,
    TREE_NODE_OVERHEAD,
    PayloadKey,
    payload_bytes,
)
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Payload
from repro.temporal.time import Timestamp


class Cleanse(Operator):
    """Buffering reorder: disordered/revised in, ordered insert-only out."""

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "enforces ordered / insert-only / deterministic; key passes through"

    kind = "cleanse"

    def __init__(self, name: str = "cleanse"):
        super().__init__(name)
        #: Ordered buffer: (Vs, payload) -> current Ve.
        self._buffer = RedBlackTree()
        self._buffered_bytes = 0
        self._emitted_stable: Timestamp = float("-inf")
        self.released = 0
        self.peak_buffered = 0

    @staticmethod
    def _key(vs: Timestamp, payload: Payload) -> tuple:
        return (vs, PayloadKey(payload))

    def on_insert(self, element: Insert, port: int) -> None:
        created = self._buffer.insert(
            self._key(element.vs, element.payload), element.ve
        )
        if created:
            self._buffered_bytes += payload_bytes(element.payload)
        if len(self._buffer) > self.peak_buffered:
            self.peak_buffered = len(self._buffer)

    def on_adjust(self, element: Adjust, port: int) -> None:
        key = self._key(element.vs, element.payload)
        if key not in self._buffer:
            return
        if element.is_cancel:
            self._buffer.delete(key)
            self._buffered_bytes -= payload_bytes(element.payload)
        else:
            self._buffer.insert(key, element.ve)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        # Walk the buffer in (Vs, payload) order, releasing the frozen
        # prefix; the first unfrozen event blocks everything behind it
        # (its own release would otherwise come out of order later).
        releasable: List[Tuple[tuple, Timestamp]] = []
        for key, ve in self._buffer.items():
            if ve >= vc:
                break
            releasable.append((key, ve))
        for (vs, payload_key), ve in releasable:
            self.emit(Insert(payload_key.payload, vs, ve))
            self._buffer.delete((vs, payload_key))
            self._buffered_bytes -= payload_bytes(payload_key.payload)
            self.released += 1
        # The output may promise stability only up to the earliest element
        # still buffered (it will be emitted with its original Vs later).
        if self._buffer:
            (first_vs, _), _ = self._buffer.min_item()
            out_stable = min(vc, first_vs)
        else:
            out_stable = vc
        if out_stable > self._emitted_stable:
            self._emitted_stable = out_stable
            self.emit(Stable(out_stable))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        # Enforced, not inherited: this is Section IV-G route 2 (a
        # property-enforcing operator annotates its output at compile time).
        properties = input_properties[0] if input_properties else None
        keyed = properties.key_vs_payload if properties else False
        return StreamProperties(
            ordered=True,
            insert_only=True,
            deterministic_same_vs_order=True,
            key_vs_payload=keyed,
        )

    def memory_bytes(self) -> int:
        per_entry = TREE_NODE_OVERHEAD + 2 * TIMESTAMP_BYTES
        return self._buffered_bytes + len(self._buffer) * per_entry

    @property
    def buffered(self) -> int:
        return len(self._buffer)
