"""Symmetric temporal (interval) join.

Joins two streams on lifetime overlap: events ``l`` and ``r`` with
intersecting validity intervals produce an output event whose payload is
``combine(l.payload, r.payload)`` and whose lifetime is the intersection.
This is the canonical stateful binary operator of the interval algebra
(Example 5's model), and — crucially for LMerge — it *revises its output*:
adjusting an input event's end time shrinks, grows, or cancels previously
emitted matches, so join outputs are natural R3/R4 workloads.

State per side is the set of live events; purged once both inputs' stable
points pass their end times.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.structures.sizing import HASH_ENTRY_OVERHEAD, payload_bytes
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp

Key = Tuple[Timestamp, Payload]


class TemporalJoin(Operator):
    """Two-input interval join with revision propagation."""

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "forfeits order and insert-onliness; pair key survives keyed inputs"

    kind = "join"
    LEFT = 0
    RIGHT = 1

    def __init__(
        self,
        combine: Optional[Callable[[Payload, Payload], Payload]] = None,
        predicate: Optional[Callable[[Payload, Payload], bool]] = None,
        name: str = "join",
    ):
        super().__init__(name)
        self.combine = combine or (lambda left, right: (left, right))
        self.predicate = predicate or (lambda left, right: True)
        # Per side: (Vs, payload) -> current Ve.
        self._state: Tuple[Dict[Key, Timestamp], Dict[Key, Timestamp]] = ({}, {})
        self._stables: List[Timestamp] = [MINUS_INFINITY, MINUS_INFINITY]
        self._emitted_stable: Timestamp = MINUS_INFINITY
        # Output bookkeeping: (left key, right key) -> current output Ve
        # (output Vs is derivable: max of the two input Vs values).
        self._matches: Dict[Tuple[Key, Key], Timestamp] = {}

    # ------------------------------------------------------------------

    def on_insert(self, element: Insert, port: int) -> None:
        side = self._state[port]
        key = (element.vs, element.payload)
        side[key] = element.ve
        other = self._state[1 - port]
        for other_key, other_ve in other.items():
            self._try_match(key, element.ve, other_key, other_ve, port)

    def _try_match(
        self,
        key: Key,
        ve: Timestamp,
        other_key: Key,
        other_ve: Timestamp,
        port: int,
    ) -> None:
        out_vs = max(key[0], other_key[0])
        out_ve = min(ve, other_ve)
        if out_ve <= out_vs:
            return  # empty intersection
        left_key, right_key = (key, other_key) if port == self.LEFT else (other_key, key)
        if not self.predicate(left_key[1], right_key[1]):
            return
        pair = (left_key, right_key)
        if pair in self._matches:
            return
        self._matches[pair] = out_ve
        payload = self.combine(left_key[1], right_key[1])
        self.emit(Insert(payload, out_vs, out_ve))

    # ------------------------------------------------------------------

    def on_adjust(self, element: Adjust, port: int) -> None:
        side = self._state[port]
        key = (element.vs, element.payload)
        if key not in side:
            return
        if element.is_cancel:
            del side[key]
        else:
            side[key] = element.ve
        # Revise every match this event participates in.
        for pair in list(self._matches):
            my_key = pair[port]
            if my_key != key:
                continue
            self._revise_match(pair, element, port)
        if not element.is_cancel:
            # A grown lifetime can create matches that did not overlap before.
            other = self._state[1 - port]
            for other_key, other_ve in other.items():
                self._try_match(key, element.ve, other_key, other_ve, port)

    def _revise_match(self, pair: Tuple[Key, Key], element: Adjust, port: int) -> None:
        left_key, right_key = pair
        out_vs = max(left_key[0], right_key[0])
        out_old = self._matches[pair]
        if element.is_cancel:
            new_ve = out_vs  # cancelling an input cancels the match
        else:
            other_key = pair[1 - port]
            other_ve = self._state[1 - port][other_key]
            new_ve = min(element.ve, other_ve)
            if new_ve <= out_vs:
                new_ve = out_vs
        if new_ve == out_old:
            return
        payload = self.combine(left_key[1], right_key[1])
        self.emit(Adjust(payload, out_vs, out_old, new_ve))
        if new_ve == out_vs:
            del self._matches[pair]
        else:
            self._matches[pair] = new_ve

    # ------------------------------------------------------------------

    def on_stable(self, vc: Timestamp, port: int) -> None:
        if vc > self._stables[port]:
            self._stables[port] = vc
        frontier = min(self._stables)
        if frontier > self._emitted_stable:
            self._emitted_stable = frontier
            self._purge(frontier)
            self.emit(Stable(frontier))

    def _purge(self, frontier: Timestamp) -> None:
        """Drop fully frozen events and matches (no future effect)."""
        for side in self._state:
            dead = [key for key, ve in side.items() if ve < frontier]
            for key in dead:
                del side[key]
        dead_matches = [
            pair for pair, ve in self._matches.items() if ve < frontier
        ]
        for pair in dead_matches:
            del self._matches[pair]

    # ------------------------------------------------------------------

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        left, right = input_properties
        # Matches are emitted by arrival and revised: order and
        # insert-onliness are gone.  The pair key survives when both sides
        # are keyed (distinct pairs produce distinct combined payloads
        # assuming the default tuple combiner).
        keyed = left.key_vs_payload and right.key_vs_payload
        return StreamProperties(key_vs_payload=keyed)

    def memory_bytes(self) -> int:
        total = 0
        for side in self._state:
            for (_, payload), _ve in side.items():
                total += HASH_ENTRY_OVERHEAD + payload_bytes(payload) + 16
        total += len(self._matches) * (HASH_ENTRY_OVERHEAD + 8)
        return total
