"""CTI-aligned exchange operators for partition-parallel plans.

LMerge is embarrassingly partitionable: every merge decision is made per
``(Vs, payload)`` key from that key's own state plus the global stable
frontier.  Hash-partitioning each input by a payload key therefore yields
per-shard merges whose outputs union back losslessly — provided the two
exchange operators here keep the punctuation semantics intact:

* :class:`HashPartition` routes ``insert``/``adjust`` elements to one of N
  shard ports by a payload key function and **broadcasts** every
  ``stable()`` to all ports, so each shard's frontier advances exactly as
  the unsharded merge's would;
* :class:`ShardUnion` re-merges the shard outputs and emits a combined
  ``stable()`` only at the **minimum frontier across shards** — the output
  may not promise ``t`` until every shard has (CTI alignment, the
  correctness crux of the whole scheme).

Both operators are plain push-based :class:`~repro.engine.operator.Operator`
subclasses, usable in any query graph; :mod:`repro.lmerge.shard` composes
them with :class:`~repro.engine.parallel.ParallelRuntime` into the
``shard()`` helper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.columnar import ColumnBatch
from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.temporal.elements import (
    KIND_STABLE,
    Adjust,
    Element,
    Insert,
    Stable,
)
from repro.temporal.event import Payload
from repro.temporal.time import MINUS_INFINITY, Timestamp

#: Maps a payload to the value the partitioner hashes.  Must depend on the
#: payload only (never the lifetime), so revisions of an event always land
#: on the shard holding its state.
KeyFunction = Callable[[Payload], object]


def identity_key(payload: Payload) -> object:
    """The default partition key: the payload itself."""
    return payload


def partition_batch(
    elements: Sequence[Element],
    num_shards: int,
    key_fn: KeyFunction = identity_key,
) -> List[List[Element]]:
    """Split a slice into per-shard slices, preserving per-shard order.

    Data elements land on ``hash(key_fn(payload)) % num_shards``; every
    ``stable()`` is appended to *all* shard slices at its original
    position, so each shard sees the punctuation interleaved with its data
    exactly as the unsharded stream would deliver it.
    """
    if num_shards == 1:
        return [list(elements)]
    shards: List[List[Element]] = [[] for _ in range(num_shards)]
    for element in elements:
        if element.__class__ is Stable:
            for bucket in shards:
                bucket.append(element)
        else:
            shards[hash(key_fn(element.payload)) % num_shards].append(element)
    return shards


def partition_columns(
    batch: ColumnBatch,
    num_shards: int,
    key_fn: KeyFunction = identity_key,
) -> List[ColumnBatch]:
    """Columnar :func:`partition_batch`: per-shard ``ColumnBatch`` slices.

    Routing walks the batch's cached key-hash column (for the identity
    key) or the payload list (custom keys) without materializing any
    element; each shard's rows come out via :meth:`ColumnBatch.take` in
    original order, stables replicated to every shard.  The hash column
    never crosses a process boundary — ``hash`` is salted per
    interpreter — so routing happens entirely in the driver.
    """
    if num_shards == 1:
        return [batch]
    n = len(batch)
    kinds = batch.kinds
    rows: List[List[int]] = [[] for _ in range(num_shards)]
    if key_fn is identity_key:
        hashes = batch.key_hashes()
        for i in range(n):
            if kinds[i] == KIND_STABLE:
                for bucket in rows:
                    bucket.append(i)
            else:
                rows[hashes[i] % num_shards].append(i)
    else:
        payloads = batch.payloads
        for i in range(n):
            if kinds[i] == KIND_STABLE:
                for bucket in rows:
                    bucket.append(i)
            else:
                rows[hash(key_fn(payloads[i])) % num_shards].append(i)
    # A bucket holding every row (increasing indices, full length) is the
    # whole batch; reuse it instead of copying the columns.
    return [
        batch if len(bucket) == n else batch.take(bucket) for bucket in rows
    ]


class ShardPort(Operator):
    """One output port of a :class:`HashPartition` — a pure passthrough
    that downstream shard sub-graphs subscribe to."""

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "pure passthrough: preserves every guarantee"

    kind = "exchange-port"

    def __init__(self, shard: int, name: str = ""):
        super().__init__(name or f"shard[{shard}]")
        self.shard = shard

    def receive(self, element: Element, port: int = 0) -> None:
        self.elements_in += 1
        self.emit(element)

    def receive_batch(self, elements: Sequence[Element], port: int = 0) -> None:
        self.elements_in += len(elements)
        self.emit_batch(elements)

    def receive_columns(self, batch: ColumnBatch, port: int = 0) -> None:
        self.elements_in += len(batch)
        self.emit_columns(batch)

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]


class HashPartition(Operator):
    """Route a stream to N shard ports by payload key; broadcast stables.

    Subscribe each shard's sub-graph to ``self.outputs[i]``.  A partition
    preserves every per-stream property within a shard — a sub-sequence of
    an ordered stream is ordered, same-Vs determinism and keys survive —
    so each port reports the input properties unchanged.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "per-shard sub-sequence: preserves every guarantee"

    kind = "partition"

    def __init__(
        self,
        num_shards: int,
        key_fn: Optional[KeyFunction] = None,
        name: str = "partition",
        registry=None,
    ):
        super().__init__(name)
        if num_shards < 1:
            raise ValueError("partition needs at least one shard")
        self.num_shards = num_shards
        self.key_fn: KeyFunction = key_fn or identity_key
        #: Optional :class:`repro.obs.registry.MetricRegistry`: when set,
        #: batched routing keeps ``partition_routed_total{shard=}`` and
        #: ``partition_stables_broadcast_total`` counters current.
        self.registry = registry
        self.outputs: Tuple[ShardPort, ...] = tuple(
            ShardPort(shard, name=f"{name}.out[{shard}]")
            for shard in range(num_shards)
        )
        for port_op in self.outputs:
            self.subscribe(port_op)

    def shard_of(self, payload: Payload) -> int:
        """The shard index the partitioner routes *payload* to."""
        return hash(self.key_fn(payload)) % self.num_shards

    # The base ``emit`` would fan every element to every port; routing is
    # the whole point, so the handlers address ports directly.

    def on_insert(self, element: Insert, port: int) -> None:
        self.elements_out += 1
        self.outputs[self.shard_of(element.payload)].receive(element)

    def on_adjust(self, element: Adjust, port: int) -> None:
        self.elements_out += 1
        self.outputs[self.shard_of(element.payload)].receive(element)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        element = Stable(vc)
        self.elements_out += self.num_shards
        for port_op in self.outputs:
            port_op.receive(element)

    def receive_batch(self, elements: Sequence[Element], port: int = 0) -> None:
        self.elements_in += len(elements)
        buckets = partition_batch(elements, self.num_shards, self.key_fn)
        registry = self.registry
        for shard, bucket in enumerate(buckets):
            if bucket:
                self.elements_out += len(bucket)
                if registry is not None:
                    registry.counter(
                        "partition_routed_total", {"shard": shard}
                    ).inc(len(bucket))
                self.outputs[shard].receive_batch(bucket)
        if registry is not None:
            stables = sum(
                1 for e in elements if e.__class__ is Stable
            )
            if stables:
                registry.counter("partition_stables_broadcast_total").inc(
                    stables
                )

    def receive_columns(self, batch: ColumnBatch, port: int = 0) -> None:
        """Columnar routing: per-shard slices leave as ``ColumnBatch``
        objects; no element is materialized on the way through."""
        self.elements_in += len(batch)
        buckets = partition_columns(batch, self.num_shards, self.key_fn)
        registry = self.registry
        for shard, bucket in enumerate(buckets):
            if bucket:
                self.elements_out += len(bucket)
                if registry is not None:
                    registry.counter(
                        "partition_routed_total", {"shard": shard}
                    ).inc(len(bucket))
                self.outputs[shard].receive_columns(bucket)
        if registry is not None:
            stables = batch.counts()[2]
            if stables:
                registry.counter("partition_stables_broadcast_total").inc(
                    stables
                )

    def input_room(self) -> Optional[int]:
        # The partitioner holds nothing; its room is the tightest room
        # across the shard ports' subscribers (a stable goes to all).
        room: Optional[int] = None
        for port_op in self.outputs:
            r = port_op.output_room()
            if r is not None and (room is None or r < room):
                room = r
        return room

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]


class ShardUnion(Operator):
    """Re-merge N shard outputs with CTI alignment.

    Data elements are forwarded in arrival order (any interleaving of the
    shard outputs reconstitutes the same TDB — the partition is disjoint).
    Punctuation is *aligned*: a combined ``stable(t)`` is emitted exactly
    when the pointwise minimum of the shard frontiers advances to ``t``,
    because the merged output can only promise what every shard promises.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "meet of shards, then forfeits order and determinism; key survives"

    kind = "shard-union"

    def __init__(
        self, num_shards: int, name: str = "shard-union", registry=None
    ):
        super().__init__(name)
        if num_shards < 1:
            raise ValueError("shard union needs at least one input")
        self.num_shards = num_shards
        #: Optional :class:`repro.obs.registry.MetricRegistry`: when set,
        #: every punctuation updates ``union_frontier{shard=}`` and
        #: ``union_emitted_stable`` gauges (the CTI-alignment signals).
        self.registry = registry
        self._frontiers: Dict[int, Timestamp] = {
            port: MINUS_INFINITY for port in range(num_shards)
        }
        self._emitted_stable: Timestamp = MINUS_INFINITY

    def on_insert(self, element: Insert, port: int) -> None:
        self.emit(element)

    def on_adjust(self, element: Adjust, port: int) -> None:
        self.emit(element)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        if port not in self._frontiers:
            raise ValueError(
                f"unexpected shard port {port} (configured {self.num_shards})"
            )
        if vc > self._frontiers[port]:
            self._frontiers[port] = vc
        frontier = min(self._frontiers.values())
        if self.registry is not None:
            self.registry.gauge(
                "union_frontier", {"union": self.name, "shard": port}
            ).set(self._frontiers[port])
        if frontier > self._emitted_stable:
            self._emitted_stable = frontier
            if self.registry is not None:
                self.registry.gauge(
                    "union_emitted_stable", {"union": self.name}
                ).set(frontier)
            self.emit(Stable(frontier))

    def receive_batch(self, elements: Sequence[Element], port: int = 0) -> None:
        """Batched delivery from one shard: data runs are forwarded in one
        slice; each stable still updates the frontier individually, so the
        emitted CTIs stay exactly the pointwise minimum."""
        self.elements_in += len(elements)
        i = 0
        n = len(elements)
        while i < n:
            if elements[i].__class__ is Stable:
                self.on_stable(elements[i].vc, port)
                i += 1
                continue
            j = i + 1
            while j < n and elements[j].__class__ is not Stable:
                j += 1
            self.emit_batch(elements[i:j])
            i = j

    def receive_columns(self, batch: ColumnBatch, port: int = 0) -> None:
        """Columnar delivery from one shard: data runs leave as sliced
        ``ColumnBatch`` views; stables update the frontier per row from
        the Vs column, so CTI alignment is byte-for-byte the batched
        path's."""
        self.elements_in += len(batch)
        vs = batch.vs
        for kind, start, stop in batch.runs():
            if kind == KIND_STABLE:
                for i in range(start, stop):
                    self.on_stable(vs[i], port)
            else:
                self.emit_columns(batch.slice(start, stop))

    def frontier(self, port: Optional[int] = None) -> Timestamp:
        """One shard's frontier, or (with no argument) the aligned
        minimum across all shards."""
        if port is not None:
            return self._frontiers[port]
        return min(self._frontiers.values())

    @property
    def frontiers(self) -> Tuple[Timestamp, ...]:
        """Per-shard frontiers, indexed by port."""
        return tuple(self._frontiers[port] for port in range(self.num_shards))

    @property
    def emitted_stable(self) -> Timestamp:
        """The largest combined ``stable()`` pushed downstream."""
        return self._emitted_stable

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        if not input_properties:
            return StreamProperties.unknown()
        merged = input_properties[0]
        for properties in input_properties[1:]:
            merged = merged.meet(properties)
        # Interleaving shard outputs destroys global ordering, as with the
        # arrival-order Union; per-shard keys remain keys of the whole
        # (the partition is disjoint).
        return merged.weaken(
            ordered=False,
            strictly_increasing=False,
            deterministic_same_vs_order=False,
        )

    def memory_bytes(self) -> int:
        return 8 * len(self._frontiers)
