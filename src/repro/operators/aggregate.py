"""Windowed aggregates — the property factories of Section IV-G.

All aggregates here use tumbling windows of width ``window``: an event
belongs to the window containing its Vs, the output event's lifetime is
the window, and the output payload carries the aggregate value.  Two
operating modes mirror the paper's data-center example:

* ``CONSERVATIVE`` waits until a window can no longer change (the input
  stable point passes its end) and emits one final event per window/group;
* ``AGGRESSIVE`` emits an updated aggregate as soon as it sees each input
  event and *revises* (cancels and re-inserts) when the value changes,
  trading chattiness for latency.

Their output properties drive LMerge algorithm selection exactly as the
paper's examples list:

=============================  ==========  =====================
Operator                       Mode        Output restriction
=============================  ==========  =====================
WindowedCount                  conserv.    R0 (strictly increasing)
TopK                           conserv.    R1 (rank order at same Vs)
GroupedCount                   conserv.    R2 (same-Vs order varies)
GroupedCount / WindowedCount   aggressive  R3 (adjusts, keyed)
=============================  ==========  =====================

Output punctuation: after input ``stable(t)``, events may still start
anywhere in the window containing *t*, so the output stable point is the
start of that window (``floor(t / window) * window``).
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, Tuple

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Payload
from repro.temporal.time import INFINITY, MINUS_INFINITY, Timestamp


class AggregateMode(enum.Enum):
    """Emission discipline of a windowed aggregate.

    ``CONSERVATIVE`` emits a window only once punctuation proves it final;
    ``AGGRESSIVE`` emits every running value and revises on each change;
    ``SPECULATIVE`` bets on arrival order — a window's value is emitted as
    final as soon as an event from a *later* window arrives, and revised
    only when a disordered straggler lands in it.  On an in-order stream
    SPECULATIVE emits no revisions at all; under d% disorder its revision
    count is proportional to d (the Figure 4 workload).
    """

    CONSERVATIVE = "conservative"
    AGGRESSIVE = "aggressive"
    SPECULATIVE = "speculative"


class _WindowedOperator(Operator):
    """Shared tumbling-window machinery."""

    def __init__(self, window: int, name: str):
        super().__init__(name)
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._emitted_stable: Timestamp = MINUS_INFINITY

    def window_start(self, vs: Timestamp) -> Timestamp:
        return int(math.floor(vs / self.window)) * self.window

    def window_of(self, vs: Timestamp) -> Tuple[Timestamp, Timestamp]:
        start = self.window_start(vs)
        return start, start + self.window

    def _output_stable_point(self, t: Timestamp) -> Timestamp:
        """The largest stable point the output can honour after input
        stable(t): the start of the window containing *t*."""
        if t == INFINITY:
            return INFINITY
        return self.window_start(t)

    def _emit_stable(self, t: Timestamp) -> None:
        point = self._output_stable_point(t)
        if point > self._emitted_stable:
            self._emitted_stable = point
            self.emit(Stable(point))


class WindowedCount(_WindowedOperator):
    """Count of events starting in each tumbling window.

    Conservative mode emits exactly one ``insert(count, ws, we)`` per
    non-empty window, in window order — the strictly-increasing R0 shape.
    Aggressive mode emits the running count and revises it (a cancel of
    the stale count plus an insert of the new one) on every change.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "conservative: strongest (R0 shape); aggressive/speculative: key only"

    kind = "aggregate"

    def __init__(
        self,
        window: int,
        mode: AggregateMode = AggregateMode.CONSERVATIVE,
        name: str = "count",
    ):
        super().__init__(window, name)
        self.mode = mode
        #: window start -> current count (open windows only).
        self._counts: Dict[Timestamp, int] = {}
        #: SPECULATIVE: window start -> count currently on the output.
        self._emitted: Dict[Timestamp, int] = {}
        self._max_window: Timestamp = MINUS_INFINITY

    # -- input handlers ---------------------------------------------------

    def on_insert(self, element: Insert, port: int) -> None:
        start, end = self.window_of(element.vs)
        old = self._counts.get(start, 0)
        self._counts[start] = old + 1
        if self.mode is AggregateMode.AGGRESSIVE:
            self._revise(start, end, old, old + 1)
        elif self.mode is AggregateMode.SPECULATIVE:
            self._speculate(start)

    def _speculate(self, start: Timestamp) -> None:
        """Speculative emission: windows behind the frontier are presumed
        complete; stragglers into them cost a revision."""
        if start > self._max_window:
            for behind in sorted(self._counts):
                if behind < start and behind not in self._emitted:
                    self._emit_window(behind)
            self._max_window = start
        elif start < self._max_window or start in self._emitted:
            self._sync_emitted(start)

    def _emit_window(self, start: Timestamp) -> None:
        count = self._counts[start]
        self._emitted[start] = count
        self.emit(Insert(count, start, start + self.window))

    def _sync_emitted(self, start: Timestamp) -> None:
        new = self._counts.get(start, 0)
        old = self._emitted.get(start, 0)
        if start not in self._emitted and new > 0:
            self._emit_window(start)
            return
        if new == old:
            return
        self._revise(start, start + self.window, old, new)
        if new > 0:
            self._emitted[start] = new
        else:
            self._emitted.pop(start, None)

    def on_adjust(self, element: Adjust, port: int) -> None:
        if not element.is_cancel:
            return  # end-time changes do not move an event's window
        start, end = self.window_of(element.vs)
        old = self._counts.get(start, 0)
        if old == 0:
            return
        self._counts[start] = old - 1
        if self._counts[start] == 0:
            del self._counts[start]
        if self.mode is AggregateMode.AGGRESSIVE:
            self._revise(start, end, old, old - 1)
        elif self.mode is AggregateMode.SPECULATIVE and start in self._emitted:
            self._sync_emitted(start)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        closing = sorted(w for w in self._counts if w + self.window <= vc)
        for start in closing:
            if self.mode is AggregateMode.CONSERVATIVE:
                self.emit(Insert(self._counts[start], start, start + self.window))
            elif (
                self.mode is AggregateMode.SPECULATIVE
                and start not in self._emitted
            ):
                self._emit_window(start)
            del self._counts[start]
            self._emitted.pop(start, None)
        self._emit_stable(vc)

    # -- helpers -----------------------------------------------------------

    def _revise(self, start: Timestamp, end: Timestamp, old: int, new: int) -> None:
        if old > 0:
            # Cancel the stale count event (Ve down to Vs removes it).
            self.emit(Adjust(old, start, end, start))
        if new > 0:
            self.emit(Insert(new, start, end))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        if self.mode is AggregateMode.CONSERVATIVE:
            return StreamProperties.strongest()
        # Aggressive/speculative: revisions revisit old window starts
        # (disorder) and emit adjusts; (Vs, count) stays a key because the
        # count for a window never repeats a live value.
        return StreamProperties(key_vs_payload=True)

    def memory_bytes(self) -> int:
        return (len(self._counts) + len(self._emitted)) * 24


class GroupedCount(_WindowedOperator):
    """Per-group count in each tumbling window (the "count per machine"
    of the data-center example).

    Conservative output: all groups of a closing window share the window's
    Vs; their relative order follows arrival order of the groups, which
    differs across replicas — the R2 shape.  Aggressive output adds
    revisions — the R3 shape.
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "conservative: ordered+insert-only+key (R2 shape); else key only"

    kind = "aggregate"

    def __init__(
        self,
        window: int,
        key_fn: Callable[[Payload], Payload],
        mode: AggregateMode = AggregateMode.CONSERVATIVE,
        name: str = "grouped-count",
    ):
        super().__init__(window, name)
        self.mode = mode
        self.key_fn = key_fn
        #: window start -> {group -> count}, insertion-ordered by arrival.
        self._groups: Dict[Timestamp, Dict[Payload, int]] = {}
        #: SPECULATIVE: window start -> {group -> count on the output}.
        self._emitted: Dict[Timestamp, Dict[Payload, int]] = {}
        self._max_window: Timestamp = MINUS_INFINITY

    def on_insert(self, element: Insert, port: int) -> None:
        start, end = self.window_of(element.vs)
        groups = self._groups.setdefault(start, {})
        group = self.key_fn(element.payload)
        old = groups.get(group, 0)
        groups[group] = old + 1
        if self.mode is AggregateMode.AGGRESSIVE:
            self._revise(group, start, end, old, old + 1)
        elif self.mode is AggregateMode.SPECULATIVE:
            self._speculate(start, group)

    def _speculate(self, start: Timestamp, group: Payload) -> None:
        if start > self._max_window:
            for behind in sorted(self._groups):
                if behind < start and behind not in self._emitted:
                    self._emit_window(behind)
            self._max_window = start
        elif start < self._max_window or start in self._emitted:
            self._sync_group(start, group)

    def _emit_window(self, start: Timestamp) -> None:
        end = start + self.window
        snapshot = dict(self._groups.get(start, {}))
        self._emitted[start] = snapshot
        for group, count in snapshot.items():
            self.emit(Insert((group, count), start, end))

    def _sync_group(self, start: Timestamp, group: Payload) -> None:
        emitted = self._emitted.setdefault(start, {})
        new = self._groups.get(start, {}).get(group, 0)
        old = emitted.get(group, 0)
        if new == old:
            return
        self._revise(group, start, start + self.window, old, new)
        if new > 0:
            emitted[group] = new
        else:
            emitted.pop(group, None)

    def on_adjust(self, element: Adjust, port: int) -> None:
        if not element.is_cancel:
            return
        start, end = self.window_of(element.vs)
        groups = self._groups.get(start)
        if not groups:
            return
        group = self.key_fn(element.payload)
        old = groups.get(group, 0)
        if old == 0:
            return
        groups[group] = old - 1
        if groups[group] == 0:
            del groups[group]
        if self.mode is AggregateMode.AGGRESSIVE:
            self._revise(group, start, end, old, old - 1)
        elif self.mode is AggregateMode.SPECULATIVE and start in self._emitted:
            self._sync_group(start, group)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        closing = sorted(w for w in self._groups if w + self.window <= vc)
        for start in closing:
            if self.mode is AggregateMode.CONSERVATIVE:
                end = start + self.window
                for group, count in self._groups[start].items():
                    self.emit(Insert((group, count), start, end))
            elif (
                self.mode is AggregateMode.SPECULATIVE
                and start not in self._emitted
            ):
                self._emit_window(start)
            del self._groups[start]
            self._emitted.pop(start, None)
        self._emit_stable(vc)

    def _revise(
        self,
        group: Payload,
        start: Timestamp,
        end: Timestamp,
        old: int,
        new: int,
    ) -> None:
        if old > 0:
            self.emit(Adjust((group, old), start, end, start))
        if new > 0:
            self.emit(Insert((group, new), start, end))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        if self.mode is AggregateMode.CONSERVATIVE:
            # Ordered, insert-only, keyed — but same-Vs order is arrival
            # order of groups, which is replica-dependent: exactly R2.
            return StreamProperties(
                ordered=True, insert_only=True, key_vs_payload=True
            )
        return StreamProperties(key_vs_payload=True)

    def memory_bytes(self) -> int:
        retained = sum(len(groups) * 48 for groups in self._groups.values())
        retained += sum(len(groups) * 48 for groups in self._emitted.values())
        return retained


class TopK(_WindowedOperator):
    """Top-k payloads by score per tumbling window, emitted in rank order.

    Conservative only: the k results of a closed window share the window's
    Vs and are emitted in deterministic (rank) order on every replica —
    the R1 shape (duplicate timestamps, deterministic same-Vs order).
    """

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "ordered, insert-only, deterministic rank order, keyed (R1 shape)"

    kind = "aggregate"

    def __init__(
        self,
        window: int,
        k: int,
        score_fn: Callable[[Payload], float],
        name: str = "topk",
    ):
        super().__init__(window, name)
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.score_fn = score_fn
        self._windows: Dict[Timestamp, List[Payload]] = {}

    def on_insert(self, element: Insert, port: int) -> None:
        start = self.window_start(element.vs)
        self._windows.setdefault(start, []).append(element.payload)

    def on_adjust(self, element: Adjust, port: int) -> None:
        if not element.is_cancel:
            return
        start = self.window_start(element.vs)
        payloads = self._windows.get(start)
        if payloads and element.payload in payloads:
            payloads.remove(element.payload)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        closing = sorted(w for w in self._windows if w + self.window <= vc)
        for start in closing:
            end = start + self.window
            ranked = sorted(
                self._windows[start],
                key=lambda payload: (-self.score_fn(payload), repr(payload)),
            )
            for rank, payload in enumerate(ranked[: self.k], start=1):
                self.emit(Insert((rank, payload), start, end))
            del self._windows[start]
        self._emit_stable(vc)

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        return StreamProperties(
            ordered=True,
            insert_only=True,
            deterministic_same_vs_order=True,
            key_vs_payload=True,
        )

    def memory_bytes(self) -> int:
        from repro.structures.sizing import payload_bytes

        return sum(
            sum(payload_bytes(p) + 16 for p in payloads)
            for payloads in self._windows.values()
        )
