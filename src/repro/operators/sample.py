"""Deterministic sampling — a data-reducing operator (Section I).

The paper's motivation for out-of-order processing cites "data-reducing
operators, such as aggregation and sampling": memory needs are minimized
when elements flow to them unordered.  :class:`Sample` keeps a
deterministic pseudo-random fraction of events.

Determinism matters for LMerge: replicas must make the *same* keep/drop
decision for the same event, or their outputs stop being logically
consistent.  The decision is therefore a hash of ``(Vs, payload)`` and a
shared seed — never a per-replica RNG — and adjusts follow their event's
decision.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.engine.operator import Operator
from repro.streams.properties import StreamProperties
from repro.temporal.elements import Adjust, Insert, Stable
from repro.temporal.event import Payload
from repro.temporal.time import Timestamp

_BUCKETS = 2**32


class Sample(Operator):
    """Keep a deterministic *fraction* of events (and their revisions)."""

    #: Transfer function summary (surfaced by repro.analysis docs/reports).
    property_transfer = "preserves every guarantee (only removes elements)"

    kind = "sample"

    def __init__(self, fraction: float, seed: int = 0, name: str = "sample"):
        super().__init__(name)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.seed = seed
        self._threshold = int(fraction * _BUCKETS)
        self.kept = 0
        self.dropped = 0

    def keeps(self, vs: Timestamp, payload: Payload) -> bool:
        """The (replica-independent) keep/drop decision for an event."""
        digest = hashlib.blake2b(
            repr((self.seed, vs, payload)).encode(), digest_size=4
        ).digest()
        return int.from_bytes(digest, "big") < self._threshold

    def on_insert(self, element: Insert, port: int) -> None:
        if self.keeps(element.vs, element.payload):
            self.kept += 1
            self.emit(element)
        else:
            self.dropped += 1

    def on_adjust(self, element: Adjust, port: int) -> None:
        # Revisions follow their event's fate.
        if self.keeps(element.vs, element.payload):
            self.emit(element)

    def on_stable(self, vc: Timestamp, port: int) -> None:
        self.emit(Stable(vc))

    def derive_properties(
        self, input_properties: List[StreamProperties]
    ) -> StreamProperties:
        # Dropping elements preserves every guarantee.
        if not input_properties:
            return StreamProperties.unknown()
        return input_properties[0]
