"""Figure 6 — Memory and throughput as StableFreq varies.

Paper shape: raising StableFreq from 0.001% to 1% *decreases* memory for
every variant (more frequent cleanup of frozen state) while *decreasing*
throughput for the general algorithms LMR3+/LMR4 (each stable() triggers
compatibility checks over the half-frozen region); the simple schemes'
throughput is essentially unaffected.
"""

import statistics

import pytest

from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.streams.divergence import diverge
from repro.streams.generator import GeneratorConfig, StreamGenerator

from conftest import fmt_bytes, run_merge, series_benchmark

STABLE_FREQS = [0.00001, 0.0001, 0.001, 0.01]
N_INPUTS = 3


def build_inputs(stable_freq, count=5000, ordered=False):
    config = GeneratorConfig(
        count=count,
        seed=29,
        disorder=0.0 if ordered else 0.2,
        min_gap=1 if ordered else 0,
        stable_freq=stable_freq,
        payload_blob_bytes=100,
        # Lifetimes span several punctuation intervals at the highest
        # frequency, so half-frozen regions are rescanned by later stables.
        event_duration=5000,
    )
    base = StreamGenerator(config).generate()
    if ordered:
        return [base] * N_INPUTS
    return [diverge(base, seed=i) for i in range(N_INPUTS)]


def measure(variant_cls, inputs, repeats=3):
    import gc

    # Memory probing walks the whole index (O(state)), so peak memory is
    # taken from a separate untimed pass.
    probe = variant_cls()
    peak = run_merge(probe, inputs, memory_every=200)["peak_memory"]
    scan_nodes = getattr(probe, "stable_scan_nodes", 0)
    rates = []
    for _ in range(repeats):
        gc.collect()
        merge = variant_cls()
        rates.append(run_merge(merge, inputs)["throughput"])
    return statistics.median(rates), peak, scan_nodes


@series_benchmark
def test_fig6_memory_and_throughput_series(report):
    report("Figure 6: memory (peak) and throughput vs StableFreq")
    report(
        f"{'freq':>9}{'mem R3+':>12}{'mem R4':>12}"
        f"{'thpt R0':>12}{'thpt R3+':>12}{'thpt R4':>12}"
    )
    memory_r3, memory_r4 = [], []
    scans_r3, scans_r4 = [], []
    throughput = {"R0": [], "R3+": [], "R4": []}
    for freq in STABLE_FREQS:
        general_inputs = build_inputs(freq)
        ordered_inputs = build_inputs(freq, ordered=True)
        rate_r0, _, _ = measure(LMergeR0, ordered_inputs)
        rate_r3, peak_r3, scan_r3 = measure(LMergeR3, general_inputs)
        rate_r4, peak_r4, scan_r4 = measure(LMergeR4, general_inputs)
        memory_r3.append(peak_r3)
        memory_r4.append(peak_r4)
        scans_r3.append(scan_r3)
        scans_r4.append(scan_r4)
        throughput["R0"].append(rate_r0)
        throughput["R3+"].append(rate_r3)
        throughput["R4"].append(rate_r4)
        report(
            f"{freq:>9.3%}{fmt_bytes(peak_r3):>12}{fmt_bytes(peak_r4):>12}"
            f"{rate_r0:>12,.0f}{rate_r3:>12,.0f}{rate_r4:>12,.0f}"
        )
    # Paper shape 1: more frequent punctuation -> less retained state.
    assert memory_r3[-1] < memory_r3[0] / 2
    assert memory_r4[-1] < memory_r4[0] / 2
    # Paper shape 2: the general algorithms pay for frequent stables.
    # The deterministic mechanism — nodes visited by per-stable
    # reconciliation scans — grows with punctuation frequency (the
    # wall-clock decline it causes in StreamInsight is muted here because
    # Python per-element overhead dominates; the series above records it).
    assert scans_r3[-1] > 2 * scans_r3[0]
    assert scans_r4[-1] > 2 * scans_r4[0]
    report(f"  per-stable scan work (nodes), R3+: {scans_r3}")
    report(f"  per-stable scan work (nodes), R4:  {scans_r4}")
    # Paper shape 3: the simple scheme is essentially unaffected
    # (generous tolerance — wall-clock noise).
    assert throughput["R0"][-1] > 0.5 * throughput["R0"][0]


@pytest.mark.parametrize("freq", [0.0001, 0.01])
def test_fig6_benchmark(benchmark, freq):
    inputs = build_inputs(freq, count=2500)

    def run():
        merge = LMergeR3()
        return run_merge(merge, inputs)["elements"]

    benchmark(run)
