"""Figure 4 — Output size (adjust chattiness) with increasing disorder.

The disordered base stream feeds a revision-generating sub-query (an
aggressive aggregate, exactly the paper's recipe); three divergent
replicas of that fragment feed LMerge.  Paper shape: the number of
adjusts at the fragment output grows significantly with disorder, while
LMerge's lazy output policy emits *fewer* adjusts than it receives
(it suppresses intermediate revisions absent from the final TDB).
"""

import pytest

from repro.lmerge.r3 import LMergeR3

from conftest import aggregate_fragment_output, disordered_workload, run_merge, series_benchmark

DISORDER_LEVELS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
N_INPUTS = 3


def fragment_inputs(disorder, count=4000):
    base = disordered_workload(
        count=count, seed=17, disorder=disorder, blob=20
    )
    return [
        aggregate_fragment_output(base, replica_seed=i, reorder=False)
        for i in range(N_INPUTS)
    ]


@series_benchmark
def test_fig4_output_size_series(report):
    report("Figure 4: adjust() elements vs disorder "
           f"({N_INPUTS} aggregate-fragment inputs)")
    report(f"{'disorder':>9}{'in-adjusts':>12}{'out-adjusts':>12}{'out/in':>8}")
    received, emitted = [], []
    for disorder in DISORDER_LEVELS:
        inputs = fragment_inputs(disorder)
        merge = LMergeR3()
        run_merge(merge, inputs)
        received.append(merge.stats.adjusts_in)
        emitted.append(merge.stats.adjusts_out)
        ratio = emitted[-1] / received[-1] if received[-1] else 0.0
        report(
            f"{disorder:>9.0%}{received[-1]:>12,}{emitted[-1]:>12,}{ratio:>8.2f}"
        )
    # Paper shape 1: disorder drives the number of adjusts up sharply.
    assert received[-1] > 3 * max(1, received[0])
    # Paper shape 2: the output policy controls chattiness — LMerge never
    # amplifies, and at high disorder it suppresses redundant revisions.
    for r, e in zip(received, emitted):
        assert e <= max(r, 1)


@series_benchmark
def test_fig4_merge_output_equivalent_to_single_plan(report):
    """Correctness companion: chattiness control never loses revisions."""
    inputs = fragment_inputs(0.4, count=2000)
    merge = LMergeR3()
    run_merge(merge, inputs)
    assert merge.output.tdb() == inputs[0].tdb()
    report("Figure 4 check: merged TDB identical to single-fragment TDB")


@pytest.mark.parametrize("disorder", [0.0, 0.5])
def test_fig4_benchmark(benchmark, disorder):
    inputs = fragment_inputs(disorder, count=2000)

    def run():
        merge = LMergeR3()
        return run_merge(merge, inputs)["elements"]

    benchmark(run)
