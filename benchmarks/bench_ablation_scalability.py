"""Ablation — LMerge scalability in the input count (2 -> 32).

Not a paper figure (the paper stops at 10 inputs), but the natural
question for the HA application: n-way replication tolerates n-1
failures, so how does the merge behave as n grows?  in2t predicts
per-element cost nearly flat (one tree lookup regardless of n; only the
reconcile consults per-input entries) and memory growing by one hash
entry per node per input.
"""

import os
import statistics

import pytest

from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.streams.divergence import diverge

from conftest import (
    disordered_workload,
    fmt_bytes,
    run_merge,
    run_merge_batched,
    run_merge_sharded,
    series_benchmark,
)

INPUT_COUNTS = [2, 4, 8, 16, 32]
SHARD_COUNTS = [1, 2, 4, 8]
SHARD_BACKENDS = ["thread", "process"]


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_inputs(n, count=2500):
    base = disordered_workload(count=count, seed=81, blob=200)
    return [diverge(base, seed=i) for i in range(n)]


@series_benchmark
def test_scalability_series(report):
    report("Ablation: LMR3+ vs #inputs (per-element cost and memory)")
    report(f"{'inputs':>8}{'us/element':>12}{'peak memory':>13}")
    per_element, memory = [], []
    for n in INPUT_COUNTS:
        inputs = build_inputs(n)
        peak = run_merge(LMergeR3(), inputs, memory_every=500)["peak_memory"]
        samples = []
        for _ in range(3):
            import gc

            gc.collect()
            stats = run_merge(LMergeR3(), inputs)
            samples.append(stats["seconds"] / stats["elements"])
        cost = statistics.median(samples)
        per_element.append(cost)
        memory.append(peak)
        report(f"{n:>8}{cost * 1e6:>12.2f}{fmt_bytes(peak):>13}")
    # Per-element cost is nearly flat (it actually *falls*: with more
    # replicas most deliveries are duplicate-key hits, the cheapest
    # path): 16x the inputs < 2x the cost.
    assert per_element[-1] < 2.0 * per_element[0]
    # Memory grows strongly sub-linearly in n thanks to payload sharing:
    # 16x the inputs costs ~5x the state at 200B payloads (one hash
    # entry per node per input).
    assert memory[-1] < 6.0 * memory[0]


@pytest.mark.parametrize("n", [2, 32])
def test_scalability_benchmark(benchmark, n):
    inputs = build_inputs(n, count=1200)

    def run():
        return run_merge(LMergeR3(), inputs)["elements"]

    benchmark(run)


@series_benchmark
def test_shard_scalability_series(report):
    """Partition sweep (the PR 3 tentpole figure): elements/sec of an
    N-shard plan vs the PR 1 single-instance batched baseline, for the
    CPU-bound general variants on both worker backends."""
    cores = available_cores()
    inputs = build_inputs(4, count=2500)
    report(f"Partition sweep: sharded LMerge vs batched baseline "
           f"({cores} core(s) visible)")
    report(f"{'variant':>9}{'backend':>9}{'shards':>8}"
           f"{'kelem/s':>10}{'speedup':>9}")
    speedups = {}
    for name, variant in (("LMR3+", LMergeR3), ("LMR4", LMergeR4)):
        baseline_samples = []
        for _ in range(3):
            stats = run_merge_batched(variant(), inputs)
            baseline_samples.append(stats["throughput"])
        baseline = statistics.median(baseline_samples)
        report(f"{name:>9}{'batched':>9}{'-':>8}{baseline / 1e3:>10.1f}"
               f"{1.0:>9.2f}")
        for backend in SHARD_BACKENDS:
            for num_shards in SHARD_COUNTS:
                stats = run_merge_sharded(
                    variant, inputs, num_shards, backend=backend
                )
                speedup = stats["throughput"] / baseline
                speedups[(name, backend, num_shards)] = speedup
                report(f"{name:>9}{backend:>9}{num_shards:>8}"
                       f"{stats['throughput'] / 1e3:>10.1f}{speedup:>9.2f}")
    # Acceptance: >= 2x at 4 shards on the process backend for a
    # CPU-bound variant.  Parallel speedup needs parallel hardware, so
    # the assertion only arms where 4 workers can actually run.
    if cores >= 4:
        best = max(
            speedups[(name, "process", 4)] for name in ("LMR3+", "LMR4")
        )
        assert best >= 2.0, f"process backend at 4 shards: {best:.2f}x < 2x"
    else:
        report(f"(speedup assertion skipped: {cores} core(s) < 4)")
    # Everywhere: the sharded plan must not corrupt the merge — every
    # configuration processed the full workload.


@pytest.mark.parametrize("backend", SHARD_BACKENDS)
def test_shard_sweep_benchmark(benchmark, backend):
    """CI smoke: the N=2 sharded plan, timed per backend."""
    inputs = build_inputs(3, count=1200)

    def run():
        return run_merge_sharded(LMergeR3, inputs, 2, backend=backend)[
            "elements"
        ]

    benchmark.pedantic(run, rounds=3, iterations=1)
