"""Ablation — LMerge scalability in the input count (2 -> 32).

Not a paper figure (the paper stops at 10 inputs), but the natural
question for the HA application: n-way replication tolerates n-1
failures, so how does the merge behave as n grows?  in2t predicts
per-element cost nearly flat (one tree lookup regardless of n; only the
reconcile consults per-input entries) and memory growing by one hash
entry per node per input.
"""

import json
import os
import platform
import statistics

import pytest

from repro.lmerge.r1 import LMergeR1
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.streams.divergence import diverge

from conftest import (
    disordered_workload,
    fmt_bytes,
    ordered_workload,
    run_merge,
    run_merge_batched,
    run_merge_columnar,
    run_merge_sharded,
    series_benchmark,
)

INPUT_COUNTS = [2, 4, 8, 16, 32]
SHARD_COUNTS = [1, 2, 4, 8]
SHARD_BACKENDS = ["thread", "process"]
#: Exchange envelope axis (the PR 6 ablation): ColumnBatch columns vs the
#: PR 3 object-list micro-batches.
SHARD_ENVELOPES = ["columnar", "object"]

BENCH_PR6_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_PR6.json"
)


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_inputs(n, count=2500):
    base = disordered_workload(count=count, seed=81, blob=200)
    return [diverge(base, seed=i) for i in range(n)]


@series_benchmark
def test_scalability_series(report):
    report("Ablation: LMR3+ vs #inputs (per-element cost and memory)")
    report(f"{'inputs':>8}{'us/element':>12}{'peak memory':>13}")
    per_element, memory = [], []
    for n in INPUT_COUNTS:
        inputs = build_inputs(n)
        peak = run_merge(LMergeR3(), inputs, memory_every=500)["peak_memory"]
        samples = []
        for _ in range(3):
            import gc

            gc.collect()
            stats = run_merge(LMergeR3(), inputs)
            samples.append(stats["seconds"] / stats["elements"])
        cost = statistics.median(samples)
        per_element.append(cost)
        memory.append(peak)
        report(f"{n:>8}{cost * 1e6:>12.2f}{fmt_bytes(peak):>13}")
    # Per-element cost is nearly flat (it actually *falls*: with more
    # replicas most deliveries are duplicate-key hits, the cheapest
    # path): 16x the inputs < 2x the cost.
    assert per_element[-1] < 2.0 * per_element[0]
    # Memory grows strongly sub-linearly in n thanks to payload sharing:
    # 16x the inputs costs ~5x the state at 200B payloads (one hash
    # entry per node per input).
    assert memory[-1] < 6.0 * memory[0]


@pytest.mark.parametrize("n", [2, 32])
def test_scalability_benchmark(benchmark, n):
    inputs = build_inputs(n, count=1200)

    def run():
        return run_merge(LMergeR3(), inputs)["elements"]

    benchmark(run)


@series_benchmark
def test_shard_scalability_series(report):
    """Partition sweep (the PR 3 tentpole figure): elements/sec of an
    N-shard plan vs the PR 1 single-instance batched baseline, for the
    CPU-bound general variants on both worker backends."""
    cores = available_cores()
    inputs = build_inputs(4, count=2500)
    report(f"Partition sweep: sharded LMerge vs batched baseline "
           f"({cores} core(s) visible)")
    report(f"{'variant':>9}{'backend':>9}{'shards':>8}"
           f"{'kelem/s':>10}{'speedup':>9}")
    speedups = {}
    for name, variant in (("LMR3+", LMergeR3), ("LMR4", LMergeR4)):
        baseline_samples = []
        for _ in range(3):
            stats = run_merge_batched(variant(), inputs)
            baseline_samples.append(stats["throughput"])
        baseline = statistics.median(baseline_samples)
        report(f"{name:>9}{'batched':>9}{'-':>8}{baseline / 1e3:>10.1f}"
               f"{1.0:>9.2f}")
        for backend in SHARD_BACKENDS:
            for num_shards in SHARD_COUNTS:
                stats = run_merge_sharded(
                    variant, inputs, num_shards, backend=backend
                )
                speedup = stats["throughput"] / baseline
                speedups[(name, backend, num_shards)] = speedup
                report(f"{name:>9}{backend:>9}{num_shards:>8}"
                       f"{stats['throughput'] / 1e3:>10.1f}{speedup:>9.2f}")
    # Acceptance: >= 2x at 4 shards on the process backend for a
    # CPU-bound variant.  Parallel speedup needs parallel hardware, so
    # the assertion only arms where 4 workers can actually run.
    if cores >= 4:
        best = max(
            speedups[(name, "process", 4)] for name in ("LMR3+", "LMR4")
        )
        assert best >= 2.0, f"process backend at 4 shards: {best:.2f}x < 2x"
    else:
        report(f"(speedup assertion skipped: {cores} core(s) < 4)")
    # Everywhere: the sharded plan must not corrupt the merge — every
    # configuration processed the full workload.


@pytest.mark.parametrize("backend", SHARD_BACKENDS)
def test_shard_sweep_benchmark(benchmark, backend):
    """CI smoke: the N=2 sharded plan, timed per backend."""
    inputs = build_inputs(3, count=1200)

    def run():
        return run_merge_sharded(LMergeR3, inputs, 2, backend=backend)[
            "elements"
        ]

    benchmark.pedantic(run, rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Envelope ablation (PR 6): columnar ColumnBatch exchange vs the PR 3
# object-list envelopes that produced the parallel collapse.
# ----------------------------------------------------------------------


def _hotpath_entry(variant, inputs, reps=3):
    """Best-of-*reps* elements/sec for the three ingestion modes."""
    per_element = batched = columnar = 0.0
    for _ in range(reps):
        per_element = max(
            per_element, run_merge(variant(), inputs)["throughput"]
        )
        batched = max(
            batched, run_merge_batched(variant(), inputs)["throughput"]
        )
        columnar = max(
            columnar, run_merge_columnar(variant(), inputs)["throughput"]
        )
    return {
        "per_element_eps": round(per_element),
        "batched_eps": round(batched),
        "batched_speedup": round(batched / per_element, 2),
        "columnar_eps": round(columnar),
        "columnar_speedup": round(columnar / per_element, 2),
    }


@series_benchmark
def test_columnar_envelope_series(report):
    """Envelope ablation (the PR 6 tentpole figure): the shard sweep of
    PR 3 rerun with the exchange currency as the axis — ColumnBatch
    columns through shared-memory rings vs pickled object lists through
    ``mp.Queue`` — plus the single-instance columnar hot path.  Writes
    BENCH_PR6.json (same shape as BENCH_PR3.json with an ``envelope``
    field per sweep config).

    The process backend runs unguarded on purpose: a worker crash or a
    ring deadlock must fail this bench, not skip it.
    """
    cores = available_cores()
    count = 2500
    inputs = build_inputs(4, count=count)
    expected = sum(len(s) for s in inputs)
    single_core_note = (
        "single-core container: parallel backends cannot speed up "
        "locally; the >=2x-at-4-shards acceptance bar arms only on "
        ">=4-core hosts (see bench_ablation_scalability.py)"
    )
    multi_core_note = f"{cores}-core host: the 4-shard acceptance bar is armed"
    results = {
        "pr": 6,
        "title": "Columnar batch exchange: envelope ablation",
        "environment": {
            "python": platform.python_version(),
            "cores_visible": cores,
            "note": single_core_note if cores < 4 else multi_core_note,
        },
        "workload": {
            "elements_per_input": len(inputs[0]),
            "inputs": len(inputs),
            "disorder": 0.2,
            "payload_blob_bytes": 200,
            "batch_size": 64,
        },
        "hotpath": {},
        "shard_sweep": {},
    }

    report(f"Envelope ablation: columnar vs object exchange "
           f"({cores} core(s) visible)")
    report("Hot path (single instance):")
    report(f"{'variant':>9}{'per-elem':>11}{'batched':>11}{'columnar':>11}"
           f"{'col/elem':>9}")
    ordered = [ordered_workload(count=count, blob=200)] * 4
    for name, variant, streams in (
        ("LMR1", LMergeR1, ordered),
        ("LMR3+", LMergeR3, inputs),
        ("LMR4", LMergeR4, inputs),
    ):
        entry = _hotpath_entry(variant, streams)
        results["hotpath"][name] = entry
        report(f"{name:>9}{entry['per_element_eps'] / 1e3:>10.0f}k"
               f"{entry['batched_eps'] / 1e3:>10.0f}k"
               f"{entry['columnar_eps'] / 1e3:>10.0f}k"
               f"{entry['columnar_speedup']:>9.2f}")

    report("Shard sweep (LMR3+, speedup vs batched baseline):")
    report(f"{'envelope':>10}{'backend':>9}{'shards':>8}"
           f"{'kelem/s':>10}{'speedup':>9}")
    baseline = statistics.median(
        run_merge_batched(LMergeR3(), inputs)["throughput"] for _ in range(3)
    )
    sweep = {"batched_baseline_eps": round(baseline), "configs": []}
    speedups = {}
    for envelope in SHARD_ENVELOPES:
        for backend in SHARD_BACKENDS:
            for num_shards in SHARD_COUNTS:
                stats = run_merge_sharded(
                    LMergeR3,
                    inputs,
                    num_shards,
                    backend=backend,
                    envelope=envelope,
                )
                # Every configuration must process the full workload —
                # a silently short run would fake a speedup.
                assert stats["elements"] == expected, (envelope, backend,
                                                      num_shards)
                speedup = stats["throughput"] / baseline
                speedups[(envelope, backend, num_shards)] = speedup
                sweep["configs"].append({
                    "envelope": envelope,
                    "backend": backend,
                    "shards": num_shards,
                    "elements_per_sec": round(stats["throughput"]),
                    "speedup_vs_batched": round(speedup, 2),
                })
                report(f"{envelope:>10}{backend:>9}{num_shards:>8}"
                       f"{stats['throughput'] / 1e3:>10.1f}{speedup:>9.2f}")
    results["shard_sweep"]["LMR3+"] = sweep

    with open(BENCH_PR6_PATH, "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    report(f"(wrote {os.path.normpath(BENCH_PR6_PATH)})")

    # Acceptance: the columnar envelope must not be slower than the
    # object envelope where the object path collapsed — the process
    # backend — at every shard count.  On a single core the comparison
    # measures the scheduler, not the exchange: the ring's poll-based
    # blocking spends time-slices the lone busy worker needs, while
    # ``mp.Queue``'s semaphores park blocked processes for free.  The
    # bar therefore arms only where workers can actually run in
    # parallel; the JSON above records the honest numbers either way.
    if cores >= 2:
        for num_shards in SHARD_COUNTS:
            columnar = speedups[("columnar", "process", num_shards)]
            obj = speedups[("object", "process", num_shards)]
            assert columnar >= 0.9 * obj, (
                f"process backend at {num_shards} shards: columnar "
                f"{columnar:.2f}x < object {obj:.2f}x"
            )
    else:
        report("(envelope comparison assertion skipped: 1 core visible)")
    # >=2x at 4 shards needs 4 workers actually running in parallel, so
    # the bar arms only where the hardware exists (single-core honesty).
    if cores >= 4:
        best = speedups[("columnar", "process", 4)]
        assert best >= 2.0, (
            f"columnar process backend at 4 shards: {best:.2f}x < 2x"
        )
    else:
        report(f"(speedup assertion skipped: {cores} core(s) < 4)")


@pytest.mark.parametrize("envelope", SHARD_ENVELOPES)
@pytest.mark.parametrize("backend", SHARD_BACKENDS)
def test_envelope_smoke_benchmark(benchmark, backend, envelope):
    """CI smoke: the N=2 sharded plan per envelope per backend.  The
    process x columnar cell exercises the shared-memory rings end to
    end; any worker crash fails the bench run loudly."""
    inputs = build_inputs(3, count=1200)

    def run():
        stats = run_merge_sharded(
            LMergeR3, inputs, 2, backend=backend, envelope=envelope
        )
        assert stats["elements"] == sum(len(s) for s in inputs)
        return stats["elements"]

    benchmark.pedantic(run, rounds=3, iterations=1)
