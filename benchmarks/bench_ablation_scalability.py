"""Ablation — LMerge scalability in the input count (2 -> 32).

Not a paper figure (the paper stops at 10 inputs), but the natural
question for the HA application: n-way replication tolerates n-1
failures, so how does the merge behave as n grows?  in2t predicts
per-element cost nearly flat (one tree lookup regardless of n; only the
reconcile consults per-input entries) and memory growing by one hash
entry per node per input.
"""

import statistics

import pytest

from repro.lmerge.r3 import LMergeR3
from repro.streams.divergence import diverge

from conftest import disordered_workload, fmt_bytes, run_merge, series_benchmark

INPUT_COUNTS = [2, 4, 8, 16, 32]


def build_inputs(n, count=2500):
    base = disordered_workload(count=count, seed=81, blob=200)
    return [diverge(base, seed=i) for i in range(n)]


@series_benchmark
def test_scalability_series(report):
    report("Ablation: LMR3+ vs #inputs (per-element cost and memory)")
    report(f"{'inputs':>8}{'us/element':>12}{'peak memory':>13}")
    per_element, memory = [], []
    for n in INPUT_COUNTS:
        inputs = build_inputs(n)
        peak = run_merge(LMergeR3(), inputs, memory_every=500)["peak_memory"]
        samples = []
        for _ in range(3):
            import gc

            gc.collect()
            stats = run_merge(LMergeR3(), inputs)
            samples.append(stats["seconds"] / stats["elements"])
        cost = statistics.median(samples)
        per_element.append(cost)
        memory.append(peak)
        report(f"{n:>8}{cost * 1e6:>12.2f}{fmt_bytes(peak):>13}")
    # Per-element cost is nearly flat (it actually *falls*: with more
    # replicas most deliveries are duplicate-key hits, the cheapest
    # path): 16x the inputs < 2x the cost.
    assert per_element[-1] < 2.0 * per_element[0]
    # Memory grows strongly sub-linearly in n thanks to payload sharing:
    # 16x the inputs costs ~5x the state at 200B payloads (one hash
    # entry per node per input).
    assert memory[-1] < 6.0 * memory[0]


@pytest.mark.parametrize("n", [2, 32])
def test_scalability_benchmark(benchmark, n):
    inputs = build_inputs(n, count=1200)

    def run():
        return run_merge(LMergeR3(), inputs)["elements"]

    benchmark(run)
