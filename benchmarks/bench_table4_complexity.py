"""Table IV — Runtime and space complexity of the LMerge algorithms.

Verifies the table's *scaling shapes* empirically:

* R0/R1/R2 space is O(1)/O(s)/O(g*p) — independent of the number of live
  events w;
* R3/R4 space is O(w(p+s)) — linear in the live-event count;
* R0 insert cost is O(1) while R3 insert cost is O(lg w): doubling w
  repeatedly must grow R3's per-insert time sub-linearly (logarithmically)
  and leave R0's flat.
"""

import statistics
import time

import pytest

from repro.lmerge.r0 import LMergeR0
from repro.lmerge.r3 import LMergeR3
from repro.lmerge.r4 import LMergeR4
from repro.streams.generator import GeneratorConfig, StreamGenerator
from repro.temporal.elements import Insert

from conftest import fmt_bytes, run_merge, series_benchmark

LIVE_COUNTS = [1000, 2000, 4000, 8000]


def workload_with_live_events(w, blob=50):
    """A stream whose first w inserts all stay alive (no punctuation)."""
    config = GeneratorConfig(
        count=w,
        seed=59,
        disorder=0.0,
        min_gap=1,
        stable_freq=0.0,
        payload_blob_bytes=blob,
        event_duration=10 * w,
        final_stable=False,
    )
    return StreamGenerator(config).generate()


def per_insert_time(merge, stream, probe_count=2000):
    """Load *stream* into *merge*, then time additional probe inserts."""
    merge.attach(0)
    for element in stream:
        merge.process(element, 0)
    base_vs = max(e.vs for e in stream.data_elements()) + 1
    probes = [
        Insert((i, "probe"), base_vs + i, base_vs + i + 10**6)
        for i in range(probe_count)
    ]
    start = time.perf_counter()
    for probe in probes:
        merge.process(probe, 0)
    return (time.perf_counter() - start) / probe_count


@series_benchmark
def test_table4_space_scaling(report):
    report("Table IV (space): merge state vs live events w")
    report(f"{'w':>8}{'LMR0':>10}{'LMR3+':>12}{'LMR4':>12}")
    r0_mem, r3_mem, r4_mem = [], [], []
    for w in LIVE_COUNTS:
        stream = workload_with_live_events(w)
        row = f"{w:>8}"
        for cls, series in ((LMergeR0, r0_mem), (LMergeR3, r3_mem), (LMergeR4, r4_mem)):
            merge = cls()
            run_merge(merge, [stream])
            series.append(merge.memory_bytes())
            row += f"{fmt_bytes(series[-1]):>12}"
        report(row)
    # O(1) for R0; O(w*) for the general algorithms (8x live events ->
    # ~8x state, within 25%).
    assert r0_mem[0] == r0_mem[-1]
    for series in (r3_mem, r4_mem):
        growth = series[-1] / series[0]
        assert 6.0 < growth < 10.0


@series_benchmark
def test_table4_insert_time_scaling(report):
    report("Table IV (time): per-insert cost vs live events w")
    report(f"{'w':>8}{'LMR0 (us)':>12}{'LMR3+ (us)':>12}")
    r0_times, r3_times = [], []
    for w in LIVE_COUNTS:
        stream = workload_with_live_events(w, blob=8)
        r0 = statistics.median(
            per_insert_time(LMergeR0(), stream) for _ in range(3)
        )
        r3 = statistics.median(
            per_insert_time(LMergeR3(), stream) for _ in range(3)
        )
        r0_times.append(r0)
        r3_times.append(r3)
        report(f"{w:>8}{r0 * 1e6:>12.2f}{r3 * 1e6:>12.2f}")
    # R0 is O(1): cost at 8x the live events stays within noise (2x).
    assert r0_times[-1] < 2 * r0_times[0] + 1e-6
    # R3 is O(lg w): cost grows, but far slower than linearly — an 8x
    # state increase may cost at most ~2.5x per insert (lg8 = 3 levels).
    assert r3_times[-1] < 2.5 * r3_times[0]


@series_benchmark
def test_table4_r1_space_scales_with_inputs_only(report):
    from repro.lmerge.r1 import LMergeR1

    stream = workload_with_live_events(2000)
    small = LMergeR1()
    run_merge(small, [stream] * 2)
    large = LMergeR1()
    run_merge(large, [stream] * 10)
    report(
        f"Table IV: LMR1 state at 2 inputs {small.memory_bytes()}B, "
        f"10 inputs {large.memory_bytes()}B (O(s))"
    )
    assert large.memory_bytes() > small.memory_bytes()
    assert large.memory_bytes() < 1000  # still tiny: counters only


@pytest.mark.parametrize("w", [1000, 8000])
def test_table4_benchmark(benchmark, w):
    stream = workload_with_live_events(w, blob=8)

    def run():
        merge = LMergeR3()
        return run_merge(merge, [stream])["elements"]

    benchmark(run)
