"""Figure 10 — Dynamic plan switching with fast-forward feedback.

Two semantically identical plans run the same UDF selection; UDF0 is
expensive for small payload values of X, UDF1 for large ones.  The input
alternates batches of low and high X (random batch sizes), so the optimal
plan flips 9 times during the run.  Four configurations:

* UDF0 alone, UDF1 alone — each pays its expensive bands in full;
* LMerge over both *without* feedback — it tracks the faster plan at
  every instant, but both plans still do all the work, so completion time
  is roughly the faster plan's (paper: ~163 s vs 176/163);
* LMerge *with* feedback (LM+Feedback) — the leading plan's punctuation
  fast-forwards the lagging plan past work the output no longer needs;
  the paper reports ~34 s, nearly 5x faster.

Times here are *simulated seconds* (the cost model is the paper's shape:
cheap band ~zero, expensive band dominant), so the ratios are
deterministic.
"""

import random

import pytest

from repro.engine.simulation import SimulatedPlan, Simulation, timed_schedule
from repro.lmerge.feedback import FeedbackSignal
from repro.lmerge.r3 import LMergeR3
from repro.operators.udf import ValueBandCost
from repro.streams.stream import PhysicalStream
from repro.temporal.elements import Insert, Stable
from repro.temporal.time import INFINITY

from conftest import series_benchmark

#: Value threshold separating the low and high X bands.
THRESHOLD = 200
#: Simulated seconds per element in a UDF's expensive / cheap band.
EXPENSIVE = 0.0016
CHEAP = 0.0001
#: Elements arrive effectively instantly (pre-buffered input).
ARRIVAL_RATE = 1e9

UDF0_COST = ValueBandCost(THRESHOLD, below_cost=EXPENSIVE, above_cost=CHEAP)
UDF1_COST = ValueBandCost(THRESHOLD, below_cost=CHEAP, above_cost=EXPENSIVE)


def batched_workload(total=20000, batches=10, seed=53):
    """Alternating low/high-X batches with random sizes (paper: 10K-30K
    element batches over 200K elements; scaled 1:10 here)."""
    rng = random.Random(seed)
    sizes = [rng.randint(total // batches // 2, total // batches * 2)
             for _ in range(batches)]
    scale = total / sum(sizes)
    sizes = [max(1, int(size * scale)) for size in sizes]
    elements = []
    vs = 0
    seq = 0
    for batch_index, size in enumerate(sizes):
        low_band = batch_index % 2 == 0
        for _ in range(size):
            value = rng.randint(0, THRESHOLD - 1) if low_band else rng.randint(
                THRESHOLD, 400
            )
            elements.append(Insert((value, seq), vs, vs + 50))
            vs += 1
            seq += 1
        elements.append(Stable(vs))
    elements.append(Stable(INFINITY))
    return PhysicalStream(elements), len(sizes) - 1


def run_single_plan(stream, cost_model):
    sim = Simulation()
    plan = SimulatedPlan(
        sim, lambda element: None, service_cost=cost_model.cost
    )
    for send_time, element in timed_schedule(list(stream), ARRIVAL_RATE):
        sim.schedule_at(send_time, _Submit(plan, element))
    sim.run()
    return plan.completion_time


class _Submit:
    __slots__ = ("plan", "element")

    def __init__(self, plan, element):
        self.plan = plan
        self.element = element

    def __call__(self):
        self.plan.submit(self.element)


def run_merged(stream, feedback):
    sim = Simulation()
    merge = LMergeR3()
    merge.attach(0)
    merge.attach(1)
    plans = []
    for stream_id, cost_model in ((0, UDF0_COST), (1, UDF1_COST)):
        plan = SimulatedPlan(
            sim,
            lambda element, sid=stream_id: merge.process(element, sid),
            service_cost=cost_model.cost,
            name=f"UDF{stream_id}",
        )
        plans.append(plan)
    if feedback:
        merge.add_feedback_listener(
            lambda stream_id, horizon: plans[stream_id].on_feedback(
                FeedbackSignal(horizon)
            )
        )
    for send_time, element in timed_schedule(list(stream), ARRIVAL_RATE):
        for plan in plans:
            sim.schedule_at(send_time, _Submit(plan, element))
    sim.run()
    # The query is complete when the merge has issued stable(inf), which
    # happens as soon as the *faster* plan finishes.
    completion = (
        min(plan.completion_time for plan in plans)
        if merge.max_stable == INFINITY
        else max(plan.completion_time for plan in plans)
    )
    return completion, merge, plans


@series_benchmark
def test_fig10_plan_switching(report):
    stream, switches = batched_workload()
    udf0_time = run_single_plan(stream, UDF0_COST)
    udf1_time = run_single_plan(stream, UDF1_COST)
    lmerge_time, merge_plain, _ = run_merged(stream, feedback=False)
    feedback_time, merge_fb, plans_fb = run_merged(stream, feedback=True)
    report("Figure 10: completion time (simulated seconds)")
    report(f"  optimal-plan switches in workload: {switches}")
    report(f"  UDF0 alone:        {udf0_time:8.2f}")
    report(f"  UDF1 alone:        {udf1_time:8.2f}")
    report(f"  LMerge (LMR3+):    {lmerge_time:8.2f}")
    report(f"  LM+Feedback:       {feedback_time:8.2f}"
           f"   ({udf1_time / feedback_time:.1f}x vs best single plan)")
    report(f"  lagging-plan elements fast-forwarded: "
           f"{sum(plan.skipped for plan in plans_fb)}")
    # Paper shape 1: plain LMerge roughly matches the faster single plan
    # (both plans still do all the work).
    assert lmerge_time <= min(udf0_time, udf1_time) * 1.05
    assert lmerge_time >= min(udf0_time, udf1_time) * 0.5
    # Paper shape 2: feedback fast-forwarding is several times faster
    # (paper: ~5x).
    assert feedback_time < lmerge_time / 3
    # Correctness: both merged outputs carry the full logical stream.
    assert merge_plain.output.tdb() == stream.tdb()
    assert merge_fb.output.tdb() == stream.tdb()


@series_benchmark
def test_fig10_feedback_skips_expensive_band(report):
    stream, _ = batched_workload(total=8000)
    _, _, plans = run_merged(stream, feedback=True)
    skipped = sum(plan.skipped for plan in plans)
    report(f"Figure 10: {skipped} elements skipped across both plans")
    assert skipped > len(stream) // 4


@pytest.mark.parametrize("feedback", [False, True], ids=["plain", "feedback"])
def test_fig10_benchmark(benchmark, feedback):
    stream, _ = batched_workload(total=6000)

    def run():
        completion, _, _ = run_merged(stream, feedback=feedback)
        return completion

    benchmark(run)
